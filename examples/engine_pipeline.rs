//! Sharded ingest pipeline — the paper's §V-F deployment shape (one
//! estimator per flow, e.g. per-source scan detection) scaled across
//! cores with `smb::engine`.
//!
//! The engine hashes each item once on the caller's thread, partitions
//! whole flows across shard workers, and ships fixed-size batches over
//! bounded queues. Per-flow estimates are bit-identical regardless of
//! shard count, so the shard knob is purely an ops decision.
//!
//! ```text
//! cargo run --release --example engine_pipeline
//! ```

use smb::engine::{EngineConfig, ShardedFlowEngine};
use smb::factory::{Algo, AlgoSpec};
use smb::stream::TraceConfig;

fn main() {
    // One spec describes every per-flow estimator: algorithm, memory
    // budget, design cardinality, hash seed.
    let spec = AlgoSpec::new(Algo::Smb, 2048).with_n_max(1e5).with_seed(7);

    let trace = TraceConfig::tiny(7).build();

    // Run the same trace at two shard counts to show invariance.
    let mut tables = Vec::new();
    for shards in [1, 4] {
        let config = EngineConfig::new(spec).with_shards(shards).with_batch(256);
        let mut engine = ShardedFlowEngine::new(config).expect("valid spec");
        for packet in trace.packets() {
            engine.ingest(packet.flow as u64, &packet.item_bytes());
        }
        engine.flush();

        let top = engine.snapshot_top_k(5);
        println!("-- {shards} shard(s) --");
        for (flow, est) in &top {
            let exact = trace.ground_truth(*flow as u32);
            println!("  flow {flow:>6}  est {est:>8.0}  (exact {exact})");
        }
        let stats = engine.stats();
        println!(
            "  {} items over {} flows, imbalance {:.2}\n",
            stats.total_recorded(),
            stats.total_flows(),
            stats.shard_imbalance()
        );
        tables.push(top);
    }

    assert_eq!(tables[0], tables[1], "estimates must not depend on shard count");
    println!("1-shard and 4-shard top-5 estimates are bit-identical.");
}
