//! Sharded ingest pipeline — the paper's §V-F deployment shape (one
//! estimator per flow, e.g. per-source scan detection) scaled across
//! cores with `smb::engine`.
//!
//! The engine hashes each item once on the caller's thread, partitions
//! whole flows across shard workers, and ships fixed-size batches over
//! bounded queues. Per-flow estimates are bit-identical regardless of
//! shard count, so the shard knob is purely an ops decision.
//!
//! ```text
//! cargo run --release --example engine_pipeline
//! ```

use smb::engine::{EngineConfig, EngineQuery, ShardedFlowEngine};
use smb::factory::{Algo, AlgoSpec};
use smb::stream::TraceConfig;

fn main() {
    // One spec describes every per-flow estimator: algorithm, memory
    // budget, design cardinality, hash seed.
    let spec = AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(7);

    let trace = TraceConfig::tiny(7).build();

    // Run the same trace at two shard counts to show invariance.
    let mut tables = Vec::new();
    for shards in [1, 4] {
        let config = EngineConfig::new(spec).with_shards(shards).with_batch(256);
        let mut engine = ShardedFlowEngine::new(config).expect("valid spec");
        for packet in trace.packets() {
            engine.ingest(packet.flow as u64, &packet.item_bytes());
        }
        engine.flush();

        // One multi-facet query sweeps every shard once: top-k, flow
        // count, resident bytes, and the tier census together.
        let answers = engine.run_query(
            &EngineQuery::new().with_top_k(5).with_flow_count().with_memory_bytes(),
        );
        let top = answers.top_k.expect("top_k was requested");
        println!("-- {shards} shard(s) --");
        for (flow, est) in &top {
            let exact = trace.ground_truth(*flow as u32);
            println!("  flow {flow:>6}  est {est:>8.0}  (exact {exact})");
        }
        let stats = engine.stats();
        println!(
            "  {} items over {} flows ({} resident bytes), imbalance {:.2}",
            stats.total_recorded(),
            answers.flow_count.unwrap_or(0),
            answers.memory_bytes.unwrap_or(0),
            stats.shard_imbalance()
        );
        let tiers = answers.tier_stats;
        println!(
            "  tiers: {} small / {} array / {} full\n",
            tiers.small, tiers.array, tiers.full
        );
        tables.push(top);
    }

    assert_eq!(tables[0], tables[1], "estimates must not depend on shard count");
    println!("1-shard and 4-shard top-5 estimates are bit-identical.");
}
