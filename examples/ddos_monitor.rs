//! DDoS detection — the paper's second motivating application: all
//! packets to a destination form a stream, source addresses are the
//! items, and a surge in distinct sources signals a distributed attack.
//!
//! This example also demonstrates *why* interval-based adaptation (the
//! Adaptive Bitmap of §II-C) fails exactly when it matters: a sudden
//! surge arrives with the sampling probability tuned for the previous,
//! quiet interval. SMB, adapting continuously, rides through.
//!
//! ```text
//! cargo run --release --example ddos_monitor
//! ```

use smb::baselines::AdaptiveBitmap;
use smb::core::{CardinalityEstimator, Smb};
use smb::hash::HashScheme;

const MEMORY_BITS: usize = 5000;

/// Distinct sources contacting the service per interval: three quiet
/// intervals, then the attack.
const INTERVALS: [u64; 5] = [2_000, 2_500, 1_800, 600_000, 650_000];
const ALARM: f64 = 100_000.0;

fn main() {
    let scheme = HashScheme::with_seed(1);
    let mut adaptive = AdaptiveBitmap::new(MEMORY_BITS, scheme).expect("valid params");

    println!("interval |   true n |      SMB (fresh/interval) |  AdaptiveBitmap |  alarm");
    println!("---------+----------+---------------------------+-----------------+-------");
    let mut base: u64 = 0;
    for (idx, &n) in INTERVALS.iter().enumerate() {
        // Fresh SMB per interval (continuous adaptation needs no prior
        // knowledge); AdaptiveBitmap carries its tuned p across
        // intervals, which is its design and its weakness.
        let mut smb = Smb::builder()
            .memory_bits(MEMORY_BITS)
            .expected_max_cardinality(1_000_000)
            .hash_scheme(scheme)
            .build()
            .expect("valid params");

        for i in 0..n {
            let item = (base + i).to_le_bytes();
            // Each source sends a handful of packets.
            for _ in 0..3 {
                smb.record(&item);
                adaptive.record(&item);
            }
        }
        base += n;

        let smb_est = smb.estimate();
        let ab_est = adaptive.estimate();
        let alarm = if smb_est >= ALARM { "SMB!" } else { "" };
        println!(
            "{:>8} | {:>8} | {:>25.0} | {:>15.0} | {:>6}",
            idx, n, smb_est, ab_est, alarm
        );

        if idx == 3 {
            // The surge interval: the adaptive bitmap was tuned for
            // ~2k distinct sources and saturates.
            let smb_err = (smb_est - n as f64).abs() / n as f64;
            println!(
                "         |          | SMB err {:.1}% — adaptive bitmap mis-tuned (p = {:.4})",
                smb_err * 100.0,
                adaptive.current_probability()
            );
            assert!(smb_err < 0.25, "SMB must track the surge");
            assert!(smb_est >= ALARM, "SMB must raise the alarm");
        }

        adaptive.advance_interval();
    }

    println!("\nSMB detects the surge in the interval it happens; the interval-adaptive");
    println!("bitmap needs the *next* interval (after re-tuning) to see it.");
}
