//! Tour of every estimator in the workspace on one stream, at equal
//! memory — a one-screen reproduction of the paper's accuracy story,
//! plus per-algorithm query cost.
//!
//! ```text
//! cargo run --release --example estimator_tour [cardinality] [memory_bits]
//! ```

use std::time::Instant;

use smb::baselines::{
    AdaptiveBitmap, Bjkst, Fm, Hll, HllPlusPlus, HllTailCut, Kmv, LogLog, MinCount, Mrb,
    SuperLogLog,
};
use smb::core::{Bitmap, CardinalityEstimator, Smb};
use smb::hash::HashScheme;
use smb::theory::optimal_threshold;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5000);
    let scheme = HashScheme::with_seed(2024);

    let t = optimal_threshold(m, (n as f64).max(1e6)).t;
    let mut estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(Smb::with_scheme(m, t, scheme).unwrap()),
        Box::new(Mrb::for_expected_cardinality(m, 1e6, scheme).unwrap()),
        Box::new(Fm::with_memory_bits_scheme(m, scheme).unwrap()),
        Box::new(Hll::with_memory_bits(m, scheme).unwrap()),
        Box::new(HllPlusPlus::with_memory_bits(m, scheme).unwrap()),
        Box::new(HllTailCut::with_memory_bits(m, scheme).unwrap()),
        Box::new(LogLog::with_memory_bits(m, scheme).unwrap()),
        Box::new(SuperLogLog::with_memory_bits(m, scheme).unwrap()),
        Box::new(Kmv::with_memory_bits(m, scheme).unwrap()),
        Box::new(Bjkst::with_memory_bits(m, scheme).unwrap()),
        Box::new(MinCount::with_memory_bits(m, scheme).unwrap()),
        Box::new(Bitmap::with_scheme(m, scheme).unwrap()),
        Box::new(AdaptiveBitmap::new(m.max(200), scheme).unwrap()),
    ];

    println!("stream: {n} distinct items; memory budget: {m} bits each\n");
    for est in &mut estimators {
        for i in 0..n {
            est.record(&i.to_le_bytes());
        }
    }

    println!(
        "{:<15} {:>12} {:>9} {:>10} {:>14} {:>10}",
        "algorithm", "estimate", "err%", "mem(bits)", "query ns", "saturated"
    );
    for est in &estimators {
        let e = est.estimate();
        let err = (e - n as f64).abs() / n as f64 * 100.0;
        let start = Instant::now();
        let reps = 10_000;
        for _ in 0..reps {
            std::hint::black_box(est.estimate());
        }
        let ns = start.elapsed().as_nanos() as f64 / reps as f64;
        println!(
            "{:<15} {:>12.0} {:>8.2}% {:>10} {:>14.0} {:>10}",
            est.name(),
            e,
            err,
            est.memory_bits(),
            ns,
            if est.is_saturated() { "yes" } else { "" }
        );
    }
    println!("\nNote the two shapes the paper predicts: the bitmap saturates (its range");
    println!("caps at m·ln m), and the register family pays O(m) per query while SMB");
    println!("reads two integers.");
}
