//! Network scan detection — the paper's first motivating application.
//!
//! Packets from each source address form a stream whose items are the
//! destination addresses it contacts. A source contacting too many
//! distinct destinations is a scanner. The detector queries the
//! source's cardinality estimate on *every packet* — the online regime
//! that needs SMB's O(1) queries.
//!
//! ```text
//! cargo run --release --example scan_detection
//! ```

use smb::core::Smb;
use smb::hash::HashScheme;
use smb::sketch::ThresholdDetector;
use smb::stream::{SyntheticCaida, TraceConfig};

const SCAN_THRESHOLD: f64 = 3000.0;

fn main() {
    // A synthetic trace standing in for the CAIDA capture: heavy-tailed
    // per-source fan-out, most sources benign, a few scanner-like.
    let trace = SyntheticCaida::new(TraceConfig {
        flows: 20_000,
        max_cardinality: 40_000,
        alpha: 1.1,
        duplication: 2.0,
        seed: 7,
    });
    println!(
        "trace: {} sources, {} packets, max fan-out {}",
        trace.ground_truths().len(),
        trace.total_packets(),
        trace.max_cardinality()
    );

    // 2048-bit SMB per source; alarm at 3000 distinct destinations.
    let mut detector = ThresholdDetector::new(SCAN_THRESHOLD, |flow| {
        Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).expect("valid params")
    });

    let start = std::time::Instant::now();
    for packet in trace.packets() {
        if let Some(alarm) = detector.process(packet.flow as u64, &packet.item_bytes()) {
            println!(
                "ALARM @ packet {:>9}: source {:>6} fan-out ≈ {:>6.0} (true {})",
                alarm.packet_index,
                alarm.flow,
                alarm.estimate,
                trace.ground_truth(alarm.flow as u32)
            );
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let mdps = detector.packets_processed() as f64 / secs / 1e6;
    println!(
        "\nprocessed {} packets in {:.2}s — {:.1}M record+query ops/s",
        detector.packets_processed(),
        secs,
        mdps
    );

    // Evaluate detection quality against ground truth.
    let truths = trace.ground_truths();
    let actual_scanners: Vec<u32> = (0..truths.len() as u32)
        .filter(|&f| truths[f as usize] as f64 >= SCAN_THRESHOLD)
        .collect();
    let flagged: std::collections::HashSet<u64> =
        detector.alarms().iter().map(|a| a.flow).collect();
    let caught = actual_scanners
        .iter()
        .filter(|&&f| flagged.contains(&(f as u64)))
        .count();
    println!(
        "scanners (true fan-out ≥ {SCAN_THRESHOLD}): {} — caught {} ({} alarms total)",
        actual_scanners.len(),
        caught,
        flagged.len()
    );
    assert!(
        caught * 10 >= actual_scanners.len() * 9,
        "should catch ≥90% of scanners"
    );
}
