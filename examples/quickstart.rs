//! Quickstart: estimate the cardinality of one stream with SMB.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smb::core::{CardinalityEstimator, Smb};

fn main() {
    // 5000 bits (625 bytes) of memory, sized for streams up to ~1M
    // distinct items.
    let mut smb = Smb::builder()
        .memory_bits(5000)
        .expected_max_cardinality(1_000_000)
        .build()
        .expect("valid configuration");

    println!(
        "SMB: m = {} bits, T = {}, up to {} morphing rounds\n",
        smb.memory_bits(),
        smb.threshold(),
        smb.max_rounds()
    );

    // Feed a stream with many duplicates: 300k distinct items, each
    // appearing 3 times.
    let n_distinct = 300_000u64;
    for rep in 0..3 {
        for i in 0..n_distinct {
            smb.record(&i.to_le_bytes());
            let _ = rep;
        }
    }

    let estimate = smb.estimate();
    let err = (estimate - n_distinct as f64).abs() / n_distinct as f64;
    println!("true cardinality     : {n_distinct}");
    println!("estimated cardinality: {estimate:.0}");
    println!("relative error       : {:.2}%", err * 100.0);
    println!(
        "state: round r = {} (sampling p = {:.5}), fresh ones v = {}",
        smb.round(),
        smb.sampling_probability(),
        smb.fresh_ones()
    );
    println!("\nQueries read just (r, v) — O(1), fit for per-packet use.");

    assert!(err < 0.2, "estimate should be within 20%");
}
