//! Proxy-cache sizing — the abstract's third application: "cache
//! optimization in proxy servers". The working-set size of a request
//! stream (distinct objects requested per window) tells you how big a
//! cache must be for a target hit rate; counting it exactly would need
//! as much memory as the cache itself, counting it with a windowed
//! estimator needs kilobytes.
//!
//! This example tracks the working set over a jumping window of 6
//! sub-windows with HLL++ (mergeable, so window queries are exact
//! unions) and compares against exact ground truth per window.
//!
//! ```text
//! cargo run --release --example cache_sizing
//! ```

use std::collections::HashSet;
use std::collections::VecDeque;

use smb::baselines::HllPlusPlus;
use smb::hash::HashScheme;
use smb::sketch::JumpingWindow;
use smb::stream::dist::Zipf;

const SUB_WINDOWS: usize = 6;
const REQUESTS_PER_SUB: usize = 200_000;

fn main() {
    use smb_devtools::Xoshiro256pp;
    let scheme = HashScheme::with_seed(17);
    let mut window: JumpingWindow<HllPlusPlus> =
        JumpingWindow::new(SUB_WINDOWS, move || {
            HllPlusPlus::with_scheme(4096, scheme).expect("valid params")
        });

    // Ground truth: a queue of per-sub-window exact sets.
    let mut truth: VecDeque<HashSet<u64>> = VecDeque::new();
    truth.push_back(HashSet::new());

    // Request stream: Zipfian object popularity over a catalog that
    // drifts over time (new objects enter, old ones cool off) — the
    // usual CDN shape.
    let catalog = Zipf::new(3_000_000, 0.9);
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let mut drift = 0u64;

    println!(
        "{:>10} {:>14} {:>14} {:>8}   suggested cache (1 obj = 1 slot)",
        "window", "true WSS", "estimated", "err%"
    );
    for epoch in 0..12 {
        for _ in 0..REQUESTS_PER_SUB {
            let obj = catalog.sample(&mut rng) + drift;
            let key = obj.to_le_bytes();
            window.record(&key);
            truth.back_mut().expect("non-empty").insert(obj);
        }

        // Query: distinct objects over the last SUB_WINDOWS sub-windows.
        let est = window.estimate().expect("same scheme everywhere");
        let exact: f64 = {
            let mut union = HashSet::new();
            for s in &truth {
                union.extend(s.iter().copied());
            }
            union.len() as f64
        };
        let err = (est - exact).abs() / exact * 100.0;
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>7.2}%   {:.0} slots",
            epoch,
            exact,
            est,
            err,
            est * 1.1 // 10% headroom over the working set
        );
        assert!(err < 10.0, "windowed estimate drifted: {err}%");

        // Advance time: rotate the window, drift the catalog.
        window.rotate();
        truth.push_back(HashSet::new());
        if truth.len() > SUB_WINDOWS {
            truth.pop_front();
        }
        drift += 50_000;
    }
    println!(
        "\n{} sub-windows × 4096 registers × 5 bits = {} KiB of sketch memory,",
        SUB_WINDOWS,
        window.memory_bits() / 8192
    );
    println!("versus megabytes for exact per-window sets.");
}
