//! Search-keyword popularity tracking — the paper's search-engine
//! example: all queries for the same keyword form a stream, the client
//! IP is the data item, and the stream's cardinality is the keyword's
//! popularity (distinct users searching it).
//!
//! Compares SMB against HLL++ and MRB per keyword, at identical memory,
//! against exact ground truth.
//!
//! ```text
//! cargo run --release --example keyword_popularity
//! ```

use smb::baselines::{HllPlusPlus, Mrb};
use smb::core::{CardinalityEstimator, Smb};
use smb::hash::{HashScheme, SplitMix64};
use smb::stream::dist::Zipf;
use smb::stream::ExactCounter;

const KEYWORDS: [&str; 8] = [
    "weather", "news", "rust", "cardinality", "bitmap", "streaming", "sketch", "icde",
];
const MEMORY_BITS: usize = 5000;
const QUERIES: u64 = 2_000_000;
const USERS: u64 = 500_000;

fn main() {
    let scheme = HashScheme::with_seed(42);

    // Per-keyword estimators at identical memory.
    let mut smbs: Vec<Smb> = KEYWORDS
        .iter()
        .map(|_| Smb::builder().memory_bits(MEMORY_BITS).hash_scheme(scheme).build().unwrap())
        .collect();
    let mut hpps: Vec<HllPlusPlus> = KEYWORDS
        .iter()
        .map(|_| HllPlusPlus::with_memory_bits(MEMORY_BITS, scheme).unwrap())
        .collect();
    let mut mrbs: Vec<Mrb> = KEYWORDS
        .iter()
        .map(|_| Mrb::for_expected_cardinality(MEMORY_BITS, 1e6, scheme).unwrap())
        .collect();
    let mut exact: Vec<ExactCounter> = KEYWORDS
        .iter()
        .map(|_| ExactCounter::with_scheme(scheme))
        .collect();

    // Query stream: keyword popularity is Zipfian (keyword 1 most
    // searched), and each query comes from a random user. More popular
    // keywords accumulate more distinct users.
    let kw_dist = Zipf::new(KEYWORDS.len() as u64, 1.0);
    let mut rng = smb_devtools::Xoshiro256pp::seed_from_u64(9);
    use smb_devtools::Rng;
    let mut user_mix = SplitMix64::new(3);
    for _ in 0..QUERIES {
        let kw = (kw_dist.sample(&mut rng) - 1) as usize;
        // Users are Zipf-ish too: heavy users search everything.
        let user = if rng.gen_f64() < 0.3 {
            user_mix.next_below(1000) // hot users
        } else {
            user_mix.next_below(USERS)
        };
        let item = user.to_le_bytes();
        smbs[kw].record(&item);
        hpps[kw].record(&item);
        mrbs[kw].record(&item);
        exact[kw].record(&item);
    }

    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "keyword", "true", "SMB", "err%", "HLL++", "err%", "MRB", "err%"
    );
    let mut err_sums = [0.0f64; 3];
    for (i, kw) in KEYWORDS.iter().enumerate() {
        let truth = exact[i].count() as f64;
        let ests = [smbs[i].estimate(), hpps[i].estimate(), mrbs[i].estimate()];
        let errs: Vec<f64> = ests.iter().map(|e| (e - truth).abs() / truth * 100.0).collect();
        for (s, e) in err_sums.iter_mut().zip(&errs) {
            *s += e;
        }
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>7.2}% {:>10.0} {:>7.2}% {:>10.0} {:>7.2}%",
            kw, truth, ests[0], errs[0], ests[1], errs[1], ests[2], errs[2]
        );
    }
    println!(
        "\nmean relative error: SMB {:.2}%  HLL++ {:.2}%  MRB {:.2}%",
        err_sums[0] / KEYWORDS.len() as f64,
        err_sums[1] / KEYWORDS.len() as f64,
        err_sums[2] / KEYWORDS.len() as f64
    );
}
