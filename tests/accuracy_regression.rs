//! Deterministic accuracy regression: SMB, MRB and HLL++ on fixed-seed
//! streams at three cardinality scales. Every run sees byte-identical
//! streams, so estimate drift can only come from an algorithm change —
//! this pins the accuracy behaviour the paper's evaluation reports.
//!
//! Tolerances are deliberately looser than the paper's *average*
//! relative errors (single fixed-seed runs sit a few standard
//! deviations wide of the mean) but tight enough that a broken
//! recording path, hash regression or mis-derived parameter fails
//! immediately.

use smb::baselines::{HllPlusPlus, Mrb};
use smb::core::{CardinalityEstimator, Smb};
use smb::hash::HashScheme;
use smb::stream::items::StreamSpec;

/// Memory budget per estimator, in bits — the paper's headline setting.
const MEMORY_BITS: usize = 10_000;

/// Expected maximum cardinality used to derive SMB's threshold and
/// MRB's component count.
const N_MAX: f64 = 1e6;

/// Stream seed. Changing this value invalidates the tolerances below.
const STREAM_SEED: u64 = 0xACC_u64;

/// Hash seed for all estimators.
const HASH_SEED: u64 = 7;

/// Worst acceptable relative error per (estimator, cardinality) cell.
///
/// Paper context (§V, m = 10000 bits): SMB's average relative error
/// stays within ~1–3% across 1e3..1e6; MRB matches it while within
/// range; HLL++ with t = m/5 = 2000 registers has standard error
/// 1.04/√2000 ≈ 2.3%. The bounds below allow ~3σ of single-run spread.
const SMB_TOL: [f64; 3] = [0.05, 0.05, 0.08];
const MRB_TOL: [f64; 3] = [0.05, 0.05, 0.08];
const HLLPP_TOL: [f64; 3] = [0.05, 0.07, 0.07];

/// The three cardinality scales under test.
const SCALES: [u64; 3] = [1_000, 100_000, 1_000_000];

fn relative_error(estimate: f64, truth: u64) -> f64 {
    (estimate - truth as f64).abs() / truth as f64
}

#[test]
fn fixed_seed_accuracy_is_within_paper_consistent_bounds() {
    let scheme = HashScheme::with_seed(HASH_SEED);
    for (idx, &n) in SCALES.iter().enumerate() {
        let t = smb::theory::optimal_threshold(MEMORY_BITS, N_MAX).t;
        let mut smb_est = Smb::with_scheme(MEMORY_BITS, t, scheme).unwrap();
        let mut mrb_est = Mrb::for_expected_cardinality(MEMORY_BITS, N_MAX, scheme).unwrap();
        let mut hpp_est = HllPlusPlus::with_memory_bits(MEMORY_BITS, scheme).unwrap();

        for item in StreamSpec::distinct(n, STREAM_SEED).stream() {
            smb_est.record(&item);
            mrb_est.record(&item);
            hpp_est.record(&item);
        }

        for (est, tol) in [
            (&smb_est as &dyn CardinalityEstimator, SMB_TOL[idx]),
            (&mrb_est, MRB_TOL[idx]),
            (&hpp_est, HLLPP_TOL[idx]),
        ] {
            let rel = relative_error(est.estimate(), n);
            assert!(
                rel <= tol,
                "{} at n={n}: relative error {rel:.4} exceeds tolerance {tol} \
                 (estimate {:.0})",
                est.name(),
                est.estimate()
            );
        }
    }
}

#[test]
fn fixed_seed_estimates_are_reproducible() {
    // The exact estimates, not just their errors, must be stable run to
    // run — the streams and hashes are all seeded.
    let scheme = HashScheme::with_seed(HASH_SEED);
    let run = || {
        let t = smb::theory::optimal_threshold(MEMORY_BITS, N_MAX).t;
        let mut est = Smb::with_scheme(MEMORY_BITS, t, scheme).unwrap();
        for item in StreamSpec::distinct(50_000, STREAM_SEED).stream() {
            est.record(&item);
        }
        est.estimate()
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_bits(), b.to_bits(), "estimate must be bit-identical");
}
