//! Property-based tests over every estimator in the workspace.
//!
//! The central invariant is the one the paper proves for SMB
//! (Theorem 2) and that every cardinality estimator must satisfy
//! structurally: *duplicate-insensitivity* — recording a multiset
//! leaves exactly the state of recording its support set, in order.
//!
//! Runs on the in-tree `smb_devtools::prop` harness. A failing case
//! prints its seed; re-run with `SMB_PROP_SEED=<seed> cargo test` to
//! reproduce it deterministically.

use smb_devtools::prop::gens;
use smb_devtools::{forall, prop_assert, prop_assert_eq};

use smb::baselines::{Fm, Hll, HllPlusPlus, HllTailCut, Kmv, LogLog, MinCount, Mrb, SuperLogLog};
use smb::core::{Bitmap, CardinalityEstimator, Smb};
use smb::hash::HashScheme;

/// Build one of each estimator under test, at small sizes so property
/// cases stay fast.
fn estimators(seed: u64) -> Vec<Box<dyn CardinalityEstimator>> {
    let scheme = HashScheme::with_seed(seed);
    vec![
        Box::new(Smb::with_scheme(512, 64, scheme).unwrap()),
        Box::new(Bitmap::with_scheme(512, scheme).unwrap()),
        Box::new(Mrb::with_scheme(512, 4, scheme).unwrap()),
        Box::new(Fm::with_scheme(16, scheme).unwrap()),
        Box::new(Hll::with_scheme(64, scheme).unwrap()),
        Box::new(HllPlusPlus::with_scheme(64, scheme).unwrap()),
        Box::new(HllPlusPlus::sparse(256, scheme).unwrap()),
        Box::new(HllTailCut::with_scheme(64, scheme).unwrap()),
        Box::new(LogLog::with_scheme(64, scheme).unwrap()),
        Box::new(SuperLogLog::with_scheme(64, scheme).unwrap()),
        Box::new(Kmv::with_scheme(32, scheme).unwrap()),
        Box::new(MinCount::with_scheme(32, scheme).unwrap()),
    ]
}

/// Recording any stream with duplicates produces the same estimate
/// as recording each distinct item once, in first-appearance order.
#[test]
fn duplicate_insensitivity() {
    forall!(cases = 64, (items in gens::vecs(gens::u32s(0..500), 1..300),
                         seed in gens::u64s(0..32)) => {
        // Deduplicate preserving first-appearance order.
        let mut seen = std::collections::HashSet::new();
        let dedup: Vec<u32> = items.iter().copied().filter(|i| seen.insert(*i)).collect();

        let mut with_dups = estimators(seed);
        let mut without = estimators(seed);
        for est in &mut with_dups {
            for &i in &items {
                est.record(&i.to_le_bytes());
            }
        }
        for est in &mut without {
            for &i in &dedup {
                est.record(&i.to_le_bytes());
            }
        }
        for (a, b) in with_dups.iter().zip(&without) {
            prop_assert_eq!(a.estimate(), b.estimate(), "{} differs", a.name());
        }
    });
}

/// Estimates never decrease as more (distinct) items arrive.
#[test]
fn estimates_monotone_in_distinct_items() {
    forall!(cases = 48, (n in gens::u32s(1..2000), seed in gens::u64s(0..16)) => {
        let mut ests = estimators(seed);
        let mut last: Vec<f64> = ests.iter().map(|e| e.estimate()).collect();
        for i in 0..n {
            for est in ests.iter_mut() {
                est.record(&i.to_le_bytes());
            }
            if i % 97 == 0 {
                for (est, l) in ests.iter().zip(last.iter_mut()) {
                    let now = est.estimate();
                    // KMV/MinCount estimators may wiggle slightly at the
                    // exact/estimated boundary; allow a tiny slack.
                    prop_assert!(
                        now >= *l - (*l * 0.25 + 2.0),
                        "{} decreased: {} -> {now}", est.name(), *l
                    );
                    *l = now;
                }
            }
        }
    });
}

/// clear() restores the empty state for every estimator.
#[test]
fn clear_restores_empty() {
    forall!(cases = 32, (items in gens::vecs(gens::u32s(0..100), 1..100),
                         seed in gens::u64s(0..16)) => {
        let mut ests = estimators(seed);
        for est in &mut ests {
            for &i in &items {
                est.record(&i.to_le_bytes());
            }
            est.clear();
            prop_assert!(est.estimate().abs() < 1e-9, "{} not empty after clear", est.name());
            // And it still works afterwards.
            est.record(b"post-clear");
            prop_assert!(est.estimate() > 0.0, "{} dead after clear", est.name());
        }
    });
}

/// SMB's structural invariants hold along any stream prefix.
#[test]
fn smb_structural_invariants() {
    forall!(cases = 48, (items in gens::vecs(gens::any_u32(), 1..2000),
                         t_idx in gens::usizes(0..3)) => {
        let t = [32usize, 64, 128][t_idx];
        let mut smb = Smb::with_scheme(1024, t, HashScheme::with_seed(5)).unwrap();
        for (k, i) in items.iter().enumerate() {
            smb.record(&i.to_le_bytes());
            if k % 53 == 0 {
                // ones = r·T + v
                prop_assert_eq!(smb.ones(), smb.as_bits().count_ones());
                // v < T unless in the final round
                if smb.round() + 1 < smb.max_rounds() {
                    prop_assert!(smb.fresh_ones() < smb.threshold());
                }
                prop_assert!(smb.round() < smb.max_rounds());
                prop_assert!(smb.estimate().is_finite());
                prop_assert!(smb.estimate() >= 0.0);
            }
        }
    });
}

/// Merging two estimators equals recording the union stream, for
/// every mergeable type.
#[test]
fn merge_equals_union() {
    forall!(cases = 48, (xs in gens::vecs(gens::u32s(0..1000), 1..200),
                         ys in gens::vecs(gens::u32s(0..1000), 1..200),
                         seed in gens::u64s(0..16)) => {
        use smb::core::MergeableEstimator;
        let scheme = HashScheme::with_seed(seed);

        macro_rules! check {
            ($make:expr) => {{
                let mut a = $make;
                let mut b = $make;
                let mut u = $make;
                for &x in &xs { a.record(&x.to_le_bytes()); u.record(&x.to_le_bytes()); }
                for &y in &ys { b.record(&y.to_le_bytes()); u.record(&y.to_le_bytes()); }
                a.merge_from(&b).unwrap();
                prop_assert!((a.estimate() - u.estimate()).abs() < 1e-9,
                    "{}: merge {} vs union {}", a.name(), a.estimate(), u.estimate());
            }};
        }
        check!(Bitmap::with_scheme(256, scheme).unwrap());
        check!(Fm::with_scheme(16, scheme).unwrap());
        check!(Hll::with_scheme(32, scheme).unwrap());
        check!(HllPlusPlus::with_scheme(32, scheme).unwrap());
        check!(LogLog::with_scheme(32, scheme).unwrap());
        check!(SuperLogLog::with_scheme(32, scheme).unwrap());
        check!(Kmv::with_scheme(16, scheme).unwrap());
    });
}

/// Estimators built from the same scheme see identical item hashes:
/// record() and record_hash(scheme.item_hash(..)) are equivalent.
#[test]
fn record_and_record_hash_agree() {
    forall!(cases = 64, (items in gens::vecs(gens::any_u64(), 1..100),
                         seed in gens::u64s(0..16)) => {
        let scheme = HashScheme::with_seed(seed);
        let mut by_item = Smb::with_scheme(512, 64, scheme).unwrap();
        let mut by_hash = Smb::with_scheme(512, 64, scheme).unwrap();
        for &i in &items {
            by_item.record(&i.to_le_bytes());
            by_hash.record_hash(scheme.item_hash(&i.to_le_bytes()));
        }
        prop_assert_eq!(by_item.estimate(), by_hash.estimate());
        prop_assert_eq!(by_item.snapshot(), by_hash.snapshot());
    });
}
