//! Serialization round-trips (requires `--features serde`): an
//! estimator checkpointed mid-stream and restored must continue exactly
//! where it left off.
#![cfg(feature = "serde")]

use smb::baselines::{Fm, Hll, HllPlusPlus, HllTailCut, Kmv, LogLog, MinCount, Mrb, SuperLogLog};
use smb::core::{Bitmap, CardinalityEstimator, SampledBitmap, Smb};
use smb::hash::HashScheme;

fn roundtrip<E>(mut est: E)
where
    E: CardinalityEstimator + serde::Serialize + serde::de::DeserializeOwned,
{
    // Record half a stream, checkpoint, restore, record the other
    // half into both; states must stay identical.
    for i in 0..5000u32 {
        est.record(&i.to_le_bytes());
    }
    let json = serde_json::to_string(&est).expect("serialize");
    let mut restored: E = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(est.estimate(), restored.estimate(), "restored state differs");
    for i in 5000..10_000u32 {
        est.record(&i.to_le_bytes());
        restored.record(&i.to_le_bytes());
    }
    assert_eq!(
        est.estimate(),
        restored.estimate(),
        "divergence after resume ({})",
        est.name()
    );
}

#[test]
fn all_estimators_roundtrip() {
    let scheme = HashScheme::with_seed(77);
    roundtrip(Smb::with_scheme(2048, 256, scheme).unwrap());
    roundtrip(Bitmap::with_scheme(2048, scheme).unwrap());
    roundtrip(SampledBitmap::new(2048, 0.5, scheme).unwrap());
    roundtrip(Mrb::with_scheme(2048, 8, scheme).unwrap());
    roundtrip(Fm::with_scheme(64, scheme).unwrap());
    roundtrip(Hll::with_scheme(256, scheme).unwrap());
    roundtrip(HllPlusPlus::with_scheme(256, scheme).unwrap());
    roundtrip(HllPlusPlus::sparse(1024, scheme).unwrap());
    roundtrip(HllTailCut::with_scheme(256, scheme).unwrap());
    roundtrip(LogLog::with_scheme(256, scheme).unwrap());
    roundtrip(SuperLogLog::with_scheme(256, scheme).unwrap());
    roundtrip(Kmv::with_scheme(64, scheme).unwrap());
    roundtrip(MinCount::with_scheme(64, scheme).unwrap());
}

#[test]
fn snapshot_is_serializable() {
    let mut smb = Smb::new(1024, 128).unwrap();
    for i in 0..3000u32 {
        smb.record(&i.to_le_bytes());
    }
    let snap = smb.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: smb::core::SmbSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);
    assert_eq!(smb.estimate_at(back.r, back.v), smb.estimate());
}
