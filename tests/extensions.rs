//! Integration tests for the extension layer (DESIGN.md §7): windowed
//! estimation, virtual-register sharing, and the CLI-facing plumbing,
//! exercised end-to-end through the facade crate.

use smb::baselines::{Bjkst, HllPlusPlus};
use smb::core::Smb;
use smb::hash::HashScheme;
use smb::sketch::{JumpingWindow, SummingWindow, VirtualRegisterSketch};
use smb::stream::TraceConfig;

/// A windowed monitor over a live trace: the window estimate tracks
/// the union of recent sub-windows, not all history.
#[test]
fn jumping_window_over_trace_traffic() {
    let scheme = HashScheme::with_seed(71);
    let mut window: JumpingWindow<HllPlusPlus> =
        JumpingWindow::new(4, move || HllPlusPlus::with_scheme(2048, scheme).unwrap());

    let trace = TraceConfig::tiny(31).build();
    let packets: Vec<_> = trace.packets().collect();
    let quarter = packets.len() / 4;

    // Fill four sub-windows with four quarters of the trace.
    let mut per_quarter_distinct = Vec::new();
    for q in 0..4 {
        let slice = &packets[q * quarter..(q + 1) * quarter];
        let distinct: std::collections::HashSet<[u8; 8]> =
            slice.iter().map(|p| p.item_bytes()).collect();
        per_quarter_distinct.push(distinct);
        for p in slice {
            window.record(&p.item_bytes());
        }
        if q < 3 {
            window.rotate();
        }
    }
    let union_truth: std::collections::HashSet<&[u8; 8]> =
        per_quarter_distinct.iter().flatten().collect();
    let est = window.estimate().unwrap();
    let rel = (est - union_truth.len() as f64).abs() / union_truth.len() as f64;
    assert!(rel < 0.1, "window est {est} vs truth {} ({rel})", union_truth.len());
}

/// SMB inside a summing window: disjoint epochs add; expiry works.
#[test]
fn summing_window_with_smb_epochs() {
    let scheme = HashScheme::with_seed(72);
    let mut window = SummingWindow::new(3, move || Smb::with_scheme(4096, 256, scheme).unwrap());
    for epoch in 0..3u32 {
        for i in 0..8_000u32 {
            window.record(&(epoch * 8_000 + i).to_le_bytes());
        }
        if epoch < 2 {
            window.rotate();
        }
    }
    let full = window.estimate();
    assert!((full - 24_000.0).abs() / 24_000.0 < 0.15, "{full}");
    window.rotate(); // epoch 0 leaves
    let reduced = window.estimate();
    assert!(
        (reduced - 16_000.0).abs() / 16_000.0 < 0.2,
        "{reduced} after expiry"
    );
}

/// Virtual-register sharing finds the elephants of a heavy-tailed
/// trace while spending orders of magnitude less memory than one
/// estimator per flow.
#[test]
fn virtual_sketch_finds_trace_elephants() {
    let trace = smb::stream::SyntheticCaida::new(TraceConfig {
        flows: 5000,
        max_cardinality: 20_000,
        alpha: 1.1,
        duplication: 1.5,
        seed: 77,
    });
    let mut sketch =
        VirtualRegisterSketch::new(1 << 16, 256, HashScheme::with_seed(7)).unwrap();
    for p in trace.packets() {
        sketch.record(p.flow as u64, &p.item.to_le_bytes());
    }

    // The true top flow must rank within the sketch's top 10.
    let truths = trace.ground_truths();
    let true_top = (0..truths.len() as u32)
        .max_by_key(|&f| truths[f as usize])
        .expect("non-empty trace");
    let mut ranked: Vec<(u32, f64)> = (0..truths.len() as u32)
        .map(|f| (f, sketch.estimate(f as u64)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
    let rank_of_top = ranked
        .iter()
        .position(|&(f, _)| f == true_top)
        .expect("flow present");
    assert!(
        rank_of_top < 10,
        "true elephant (card {}) ranked {rank_of_top}",
        truths[true_top as usize]
    );
    // Memory check: 64k registers × 5 bits ≈ 40 KiB for 5000 flows —
    // ~20× less than per-flow 2048-bit estimators.
    assert!(sketch.memory_bits() < 5000 * 2048 / 20);
}

/// BJKST rounds out the estimator family: it must interoperate with
/// the flow table like everything else (plug-in claim).
#[test]
fn bjkst_as_flow_table_plugin() {
    let mut table = smb::sketch::FlowTable::new(|flow| {
        Bjkst::with_scheme(128, HashScheme::with_seed(flow)).unwrap()
    });
    for i in 0..20_000u32 {
        table.record(1, &i.to_le_bytes());
    }
    for i in 0..100u32 {
        table.record(2, &i.to_le_bytes());
    }
    let big = table.estimate(1).expect("flow 1 recorded");
    let small = table.estimate(2).expect("flow 2 recorded");
    assert!((big - 20_000.0).abs() / 20_000.0 < 0.25, "{big}");
    assert_eq!(small, 100.0, "below its 128-slot capacity BJKST is exact");
}

/// Windowed estimators expose sane memory accounting.
#[test]
fn window_memory_accounting() {
    let scheme = HashScheme::with_seed(73);
    let w: JumpingWindow<HllPlusPlus> =
        JumpingWindow::new(5, move || HllPlusPlus::with_scheme(1000, scheme).unwrap());
    assert_eq!(w.sub_windows(), 5);
    assert_eq!(w.memory_bits(), 5 * 5000);
}
