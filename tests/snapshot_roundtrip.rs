//! Snapshot round-trips (requires `--features snapshot`): an estimator
//! checkpointed mid-stream via the in-tree JSON snapshot format and
//! restored must continue exactly where it left off.
#![cfg(feature = "snapshot")]

use smb::baselines::{
    AdaptiveBitmap, Bjkst, Fm, Hll, HllPlusPlus, HllTailCut, Kmv, LogLog, MinCount, Mrb,
    SuperLogLog,
};
use smb::core::{Bitmap, CardinalityEstimator, SampledBitmap, Smb};
use smb::hash::HashScheme;
use smb_devtools::Snapshot;

fn roundtrip<E>(mut est: E)
where
    E: CardinalityEstimator + Snapshot,
{
    // Record half a stream, checkpoint, restore, record the other
    // half into both; states must stay identical.
    for i in 0..5000u32 {
        est.record(&i.to_le_bytes());
    }
    let json = est.to_json_string();
    let mut restored = E::from_json_str(&json)
        .unwrap_or_else(|e| panic!("restore failed for {}: {e}", est.name()));
    assert_eq!(est.estimate(), restored.estimate(), "restored state differs");
    for i in 5000..10_000u32 {
        est.record(&i.to_le_bytes());
        restored.record(&i.to_le_bytes());
    }
    assert_eq!(
        est.estimate(),
        restored.estimate(),
        "divergence after resume ({})",
        est.name()
    );
}

#[test]
fn all_estimators_roundtrip() {
    let scheme = HashScheme::with_seed(77);
    roundtrip(Smb::with_scheme(2048, 256, scheme).unwrap());
    roundtrip(Bitmap::with_scheme(2048, scheme).unwrap());
    roundtrip(SampledBitmap::new(2048, 0.5, scheme).unwrap());
    roundtrip(Mrb::with_scheme(2048, 8, scheme).unwrap());
    roundtrip(Fm::with_scheme(64, scheme).unwrap());
    roundtrip(Hll::with_scheme(256, scheme).unwrap());
    roundtrip(HllPlusPlus::with_scheme(256, scheme).unwrap());
    roundtrip(HllPlusPlus::sparse(1024, scheme).unwrap());
    roundtrip(HllTailCut::with_scheme(256, scheme).unwrap());
    roundtrip(LogLog::with_scheme(256, scheme).unwrap());
    roundtrip(SuperLogLog::with_scheme(256, scheme).unwrap());
    roundtrip(Kmv::with_scheme(64, scheme).unwrap());
    roundtrip(MinCount::with_scheme(64, scheme).unwrap());
    roundtrip(Bjkst::with_scheme(64, scheme).unwrap());
    // AdaptiveBitmap gives 10% of m to a coarse MRB sized for n_max =
    // 1e9; m must be large enough that slice / k stays ≥ 8 bits.
    roundtrip(AdaptiveBitmap::new(16_384, scheme).unwrap());
}

#[test]
fn snapshot_text_is_stable() {
    // Serialising the same state twice yields byte-identical JSON —
    // HashMap/HashSet iteration nondeterminism must not leak into the
    // wire format.
    let scheme = HashScheme::with_seed(3);
    let mut sparse = HllPlusPlus::sparse(1024, scheme).unwrap();
    let mut bjkst = Bjkst::with_scheme(64, scheme).unwrap();
    for i in 0..200u32 {
        sparse.record(&i.to_le_bytes());
        bjkst.record(&i.to_le_bytes());
    }
    assert_eq!(sparse.to_json_string(), sparse.to_json_string());
    let reparsed = HllPlusPlus::from_json_str(&sparse.to_json_string()).unwrap();
    assert_eq!(sparse.to_json_string(), reparsed.to_json_string());
    let reparsed = Bjkst::from_json_str(&bjkst.to_json_string()).unwrap();
    assert_eq!(bjkst.to_json_string(), reparsed.to_json_string());
}

#[test]
fn corrupted_snapshots_are_rejected() {
    let mut smb = Smb::with_scheme(1024, 128, HashScheme::with_seed(1)).unwrap();
    for i in 0..3000u32 {
        smb.record(&i.to_le_bytes());
    }
    let json = smb.to_json_string();
    // Flipping the fresh-bit counter breaks the ones invariant
    // (popcount == r·T + v), which restore must verify.
    let doc = smb_devtools::Json::parse(&json).unwrap();
    let v = doc.field("v").unwrap().as_u64().unwrap();
    let tampered = json.replacen(&format!("\"v\":{v}"), &format!("\"v\":{}", v + 1), 1);
    assert_ne!(json, tampered, "tamper point not found");
    assert!(Smb::from_json_str(&tampered).is_err());
    // Truncated documents fail cleanly too.
    assert!(Smb::from_json_str(&json[..json.len() / 2]).is_err());
}

#[test]
fn smb_snapshot_struct_roundtrip() {
    let mut smb = Smb::new(1024, 128).unwrap();
    for i in 0..3000u32 {
        smb.record(&i.to_le_bytes());
    }
    let snap = smb.snapshot();
    let json = snap.to_json_string();
    let back = smb::core::SmbSnapshot::from_json_str(&json).unwrap();
    assert_eq!(snap, back);
    assert_eq!(smb.estimate_at(back.r, back.v), smb.estimate());
}
