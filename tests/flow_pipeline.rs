//! End-to-end multi-stream pipeline tests: synthetic trace → per-flow
//! structures → estimates vs exact ground truth, exercising the
//! "estimator as a plug-in" claim with three different estimator types.

use smb::baselines::{HllPlusPlus, Mrb};
use smb::core::{CardinalityEstimator, Smb};
use smb::hash::HashScheme;
use smb::sketch::{EstimatorArray, FlowTable};
use smb::stream::{stats, TraceConfig};

/// Record a trace into a flow table built by `factory` and return the
/// mean relative error over flows with cardinality ≥ 200.
fn flow_table_mre<E: CardinalityEstimator>(
    factory: impl Fn(u64) -> E + Send + 'static,
) -> f64 {
    let trace = TraceConfig::tiny(21).build();
    let mut table = FlowTable::new(factory);
    for p in trace.packets() {
        table.record(p.flow as u64, &p.item_bytes());
    }
    let mut errs = Vec::new();
    for (flow, &truth) in trace.ground_truths().iter().enumerate() {
        if truth >= 200 {
            let est = table.estimate(flow as u64).expect("flow recorded");
            errs.push((est - truth as f64).abs() / truth as f64);
        }
    }
    assert!(!errs.is_empty(), "trace should contain flows ≥ 200");
    stats::mean(&errs)
}

#[test]
fn flow_table_with_smb_plugin() {
    let mre = flow_table_mre(|flow| {
        Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).unwrap()
    });
    assert!(mre < 0.15, "SMB plug-in MRE {mre}");
}

#[test]
fn flow_table_with_hllpp_plugin() {
    let mre = flow_table_mre(|flow| {
        HllPlusPlus::with_memory_bits(2048, HashScheme::with_seed(flow)).unwrap()
    });
    assert!(mre < 0.15, "HLL++ plug-in MRE {mre}");
}

#[test]
fn flow_table_with_mrb_plugin() {
    let mre = flow_table_mre(|flow| {
        Mrb::for_expected_cardinality(2048, 1e5, HashScheme::with_seed(flow)).unwrap()
    });
    assert!(mre < 0.35, "MRB plug-in MRE {mre}");
}

/// The shared-cell estimator array also accepts any plug-in; its
/// Count-Min-style minimum must upper-bound per-flow truth (modulo
/// estimator noise) and stay within a small factor for large flows.
#[test]
fn estimator_array_with_smb_plugin() {
    // A larger flow population than `tiny` so the heavy tail reliably
    // produces some ≥300-cardinality flows.
    let trace = smb::stream::SyntheticCaida::new(smb::stream::TraceConfig {
        flows: 3000,
        max_cardinality: 5000,
        alpha: 1.1,
        duplication: 2.0,
        seed: 22,
    });
    let mut array = EstimatorArray::new(256, 2, |i| {
        Smb::with_scheme(2048, 128, HashScheme::with_seed(i as u64)).unwrap()
    });
    for p in trace.packets() {
        array.record(p.flow as u64, &p.item_bytes());
    }
    let mut ratios = Vec::new();
    for (flow, &truth) in trace.ground_truths().iter().enumerate() {
        if truth >= 300 {
            let est = array.estimate(flow as u64);
            assert!(
                est > 0.6 * truth as f64,
                "flow {flow}: estimate {est} below truth {truth}"
            );
            ratios.push(est / truth as f64);
        }
    }
    assert!(!ratios.is_empty());
    // Large flows dominate their cells, so the overestimate factor is
    // modest.
    let mean_ratio = stats::mean(&ratios);
    assert!(mean_ratio < 3.0, "mean overestimate {mean_ratio}");
}

/// Memory accounting flows through: per-flow tables report the sum of
/// their plug-ins.
#[test]
fn pipeline_memory_accounting() {
    let trace = TraceConfig::tiny(23).build();
    let mut table = FlowTable::new(|flow| {
        Smb::with_scheme(1024, 64, HashScheme::with_seed(flow)).unwrap()
    });
    for p in trace.packets() {
        table.record(p.flow as u64, &p.item_bytes());
    }
    assert_eq!(table.len(), trace.ground_truths().len());
    assert_eq!(table.total_memory_bits(), table.len() * 1024);
}

/// The trace's own promise: exact per-flow ground truth by
/// construction, verified through the ExactCounter plug-in.
#[test]
fn exact_plugin_matches_trace_ground_truth() {
    let trace = TraceConfig::tiny(24).build();
    let mut table = FlowTable::new(|_| smb::stream::ExactCounter::new());
    for p in trace.packets() {
        table.record(p.flow as u64, &p.item_bytes());
    }
    for (flow, &truth) in trace.ground_truths().iter().enumerate() {
        let est = table.estimate(flow as u64).expect("flow recorded");
        assert_eq!(est as u32, truth, "flow {flow}");
    }
}
