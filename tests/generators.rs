//! Property tests over the workload generators and the SMB query
//! formula — the parts of the harness every experiment's validity
//! rests on.
//!
//! Runs on the in-tree `smb_devtools::prop` harness. A failing case
//! prints its seed; re-run with `SMB_PROP_SEED=<seed> cargo test` to
//! reproduce it deterministically.

use smb_devtools::prop::gens;
use smb_devtools::{forall, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};

use smb::core::{CardinalityEstimator, Smb};
use smb::hash::HashScheme;
use smb::stream::items::StreamSpec;
use smb::stream::TraceConfig;

/// Streams realise exactly the cardinality and total their spec
/// promises, for arbitrary parameters.
#[test]
fn stream_spec_is_honoured() {
    forall!(cases = 32, (n in gens::u64s(1..2000),
                         dup in gens::f64s(1.0..4.0),
                         seed in gens::any_u64(),
                         len in gens::usizes(1..64)) => {
        let spec = StreamSpec::with_duplication(n, dup, seed).item_len(len);
        let mut distinct = std::collections::HashSet::new();
        let mut total = 0u64;
        for item in spec.stream() {
            prop_assert_eq!(item.len(), len);
            distinct.insert(item);
            total += 1;
        }
        prop_assert_eq!(distinct.len() as u64, n);
        prop_assert_eq!(total, spec.total);
        prop_assert!(total >= n);
    });
}

/// The same spec always generates the same stream; different seeds
/// diverge.
#[test]
fn stream_determinism() {
    forall!(cases = 32, (n in gens::u64s(2..500), seed in gens::any_u64()) => {
        let a: Vec<Vec<u8>> = StreamSpec::distinct(n, seed).stream().collect();
        let b: Vec<Vec<u8>> = StreamSpec::distinct(n, seed).stream().collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<Vec<u8>> = StreamSpec::distinct(n, seed ^ 1).stream().collect();
        prop_assert_ne!(&a, &c);
    });
}

/// Trace plans respect their configuration bounds for arbitrary
/// small configs, and packet emission exactly exhausts the plan.
#[test]
fn trace_plan_bounds() {
    forall!(cases = 32, (flows in gens::usizes(1..200),
                         max_card in gens::u64s(2..500),
                         seed in gens::any_u64()) => {
        let trace = TraceConfig {
            flows,
            max_cardinality: max_card,
            alpha: 1.1,
            duplication: 1.5,
            seed,
        }
        .build();
        prop_assert_eq!(trace.ground_truths().len(), flows);
        for &c in trace.ground_truths() {
            prop_assert!(c >= 1 && (c as u64) <= max_card);
        }
        let emitted = trace.packets().count() as u64;
        prop_assert_eq!(emitted, trace.total_packets());
    });
}

/// `Smb::estimate_at` agrees with an independent evaluation of the
/// paper's Eq. (11) for any reachable (r, v) state.
#[test]
fn smb_query_formula_cross_check() {
    forall!(cases = 32, (m_exp in gens::u32s(7..12),
                         c in gens::usizes(2..16),
                         n in gens::u64s(0..50_000)) => {
        let m = 1usize << m_exp;
        let t = m / c;
        prop_assume!(t >= 1 && t <= m / 2);
        let mut smb = Smb::with_scheme(m, t, HashScheme::with_seed(9)).unwrap();
        for i in 0..n {
            smb.record(&i.to_le_bytes());
        }
        let (r, v) = (smb.round(), smb.fresh_ones());
        // Independent evaluation: S[r] from the recurrence, then Eq. 11.
        let mut s = 0.0f64;
        for i in 0..r {
            let m_i = (m - (i as usize) * t) as f64;
            s += -(2f64.powi(i as i32)) * (m as f64) * (1.0 - t as f64 / m_i).ln();
        }
        let m_r = (m - (r as usize) * t) as f64;
        let v_eff = (v as f64).min(m_r - 1.0);
        let expected = s - 2f64.powi(r as i32) * (m as f64) * (1.0 - v_eff / m_r).ln();
        prop_assert!(
            (smb.estimate() - expected).abs() < 1e-6,
            "estimate {} vs formula {}", smb.estimate(), expected
        );
    });
}

/// Hash schemes produce different streams of hashes for different
/// algorithms and seeds, but identical ones for identical schemes —
/// for arbitrary items.
#[test]
fn hash_scheme_separation() {
    forall!(cases = 64, (item in gens::bytes(0..64), seed in gens::any_u64()) => {
        let a = HashScheme::with_seed(seed);
        let b = HashScheme::with_seed(seed);
        prop_assert_eq!(a.hash64(&item), b.hash64(&item));
        let c = HashScheme::with_seed(seed.wrapping_add(1));
        // Equality would be a 2^-64 coincidence; treat as failure.
        prop_assert_ne!(a.hash64(&item), c.hash64(&item));
    });
}
