//! Cross-estimator accuracy integration tests: the paper's comparative
//! claims, measured end-to-end through the public facade crate on
//! shared workloads.

use smb::baselines::{Fm, HllPlusPlus, HllTailCut, Mrb};
use smb::core::{CardinalityEstimator, Smb};
use smb::hash::HashScheme;
use smb::stream::{stats, StreamSpec};
use smb::theory::optimal_threshold;

const M: usize = 10_000;
const N_MAX: f64 = 1e6;

/// Mean relative error of `make` over `runs` streams of cardinality `n`.
fn mre(make: &dyn Fn(HashScheme) -> Box<dyn CardinalityEstimator>, n: u64, runs: u64) -> f64 {
    let mut errs = Vec::new();
    let mut buf = [0u8; smb::stream::items::MAX_ITEM_LEN];
    for run in 0..runs {
        let mut est = make(HashScheme::with_seed(run * 7 + 1));
        let mut stream = StreamSpec::distinct(n, run ^ 0xBEEF).stream();
        while let Some(len) = stream.next_into(&mut buf) {
            est.record(&buf[..len]);
        }
        errs.push((est.estimate() - n as f64).abs() / n as f64);
    }
    stats::mean(&errs)
}

fn smb_factory(scheme: HashScheme) -> Box<dyn CardinalityEstimator> {
    let t = optimal_threshold(M, N_MAX).t;
    Box::new(Smb::with_scheme(M, t, scheme).unwrap())
}

fn mrb_factory(scheme: HashScheme) -> Box<dyn CardinalityEstimator> {
    Box::new(Mrb::for_expected_cardinality(M, N_MAX, scheme).unwrap())
}

fn hpp_factory(scheme: HashScheme) -> Box<dyn CardinalityEstimator> {
    Box::new(HllPlusPlus::with_memory_bits(M, scheme).unwrap())
}

fn fm_factory(scheme: HashScheme) -> Box<dyn CardinalityEstimator> {
    Box::new(Fm::with_memory_bits_scheme(M, scheme).unwrap())
}

fn tailcut_factory(scheme: HashScheme) -> Box<dyn CardinalityEstimator> {
    Box::new(HllTailCut::with_memory_bits(M, scheme).unwrap())
}

/// The paper's headline: SMB beats MRB. Against *our* MRB — whose
/// base-selection threshold the `ablation_mrb` sweep calibrated to 2/3
/// of the component size — the margin is solid but narrower than the
/// paper's ≈50% (see EXPERIMENTS.md); against an MRB tuned the way the
/// paper's description implies (≈1/3 threshold, just enough ones for
/// significance), the ≈50%-class reduction reproduces.
#[test]
fn smb_vs_mrb_error_reduction() {
    let runs = 24;
    let mut smb_total = 0.0;
    let mut mrb_total = 0.0;
    let mut mrb_paper_total = 0.0;
    let paper_mrb = |scheme: HashScheme| -> Box<dyn CardinalityEstimator> {
        let mut mrb = Mrb::for_expected_cardinality(M, N_MAX, scheme).unwrap();
        mrb.set_select_threshold(((M / mrb.components()) as f64 / 3.0) as u32);
        Box::new(mrb)
    };
    for n in [50_000u64, 200_000, 500_000, 1_000_000] {
        smb_total += mre(&smb_factory, n, runs);
        mrb_total += mre(&mrb_factory, n, runs);
        mrb_paper_total += mre(&paper_mrb, n, runs);
    }
    assert!(
        smb_total < mrb_total,
        "SMB total MRE {smb_total:.4} should beat calibrated MRB's {mrb_total:.4}"
    );
    assert!(
        smb_total < 0.75 * mrb_paper_total,
        "SMB total MRE {smb_total:.4} should be well below paper-style MRB's {mrb_paper_total:.4}"
    );
}

#[test]
fn smb_competitive_with_hllpp() {
    let runs = 24;
    let mut smb_total = 0.0;
    let mut hpp_total = 0.0;
    for n in [50_000u64, 200_000, 500_000, 1_000_000] {
        smb_total += mre(&smb_factory, n, runs);
        hpp_total += mre(&hpp_factory, n, runs);
    }
    // The paper claims SMB is more accurate; at minimum it must be in
    // the same class (within 40% of HLL++'s error across the sweep).
    assert!(
        smb_total < 1.4 * hpp_total,
        "SMB {smb_total:.4} should be competitive with HLL++ {hpp_total:.4}"
    );
}

/// Fig. 8's bias claim: SMB's relative bias within ±0.01 on average;
/// FM positively biased.
#[test]
fn bias_shapes() {
    let n = 400_000u64;
    let runs = 40;
    let mut smb_ests = Vec::new();
    let mut fm_ests = Vec::new();
    let mut buf = [0u8; smb::stream::items::MAX_ITEM_LEN];
    for run in 0..runs {
        let scheme = HashScheme::with_seed(run * 13 + 3);
        let mut s = smb_factory(scheme);
        let mut f = fm_factory(scheme);
        let mut stream = StreamSpec::distinct(n, run ^ 0xF00D).stream();
        while let Some(len) = stream.next_into(&mut buf) {
            s.record(&buf[..len]);
            f.record(&buf[..len]);
        }
        smb_ests.push(s.estimate());
        fm_ests.push(f.estimate());
    }
    let smb_bias = stats::relative_bias(&smb_ests, n as f64);
    let fm_bias = stats::relative_bias(&fm_ests, n as f64);
    assert!(smb_bias.abs() < 0.02, "SMB bias {smb_bias}");
    // The paper measures FM at ≈ +0.03; our PCSA with the published
    // φ = 0.77351 comes out nearly unbiased (their constant was likely
    // the rounded 0.78, which *does* produce ≈ +1% bias plus workload
    // effects). We assert the weaker, implementation-independent claim:
    // FM's bias magnitude stays small but clearly above SMB-grade zero
    // precision is not required of it.
    assert!(fm_bias.abs() < 0.05, "FM bias {fm_bias} out of class");
}

/// Estimation range: at m = 10000 bits a plain bitmap dies near
/// m·ln m ≈ 92k, while SMB, MRB and the register family keep tracking
/// at 1M.
#[test]
fn smb_tracks_beyond_bitmap_range() {
    let n = 1_000_000u64;
    for factory in [&smb_factory as &dyn Fn(_) -> _, &mrb_factory, &hpp_factory, &tailcut_factory]
    {
        let err = mre(factory, n, 8);
        assert!(err < 0.25, "estimator should track n=1M, got MRE {err}");
    }
    let bitmap_err = mre(
        &|scheme| Box::new(smb::core::Bitmap::with_scheme(M, scheme).unwrap()) as Box<_>,
        n,
        4,
    );
    assert!(bitmap_err > 0.8, "plain bitmap must saturate at n=1M, got {bitmap_err}");
}

/// MRB's documented instability (the paper's Fig. 6 discussion): its
/// per-n error fluctuates far more across the sweep than SMB's.
#[test]
fn mrb_error_fluctuates_more_than_smb() {
    let runs = 16;
    let ns: Vec<u64> = (1..=8).map(|i| i * 125_000).collect();
    let smb_errs: Vec<f64> = ns.iter().map(|&n| mre(&smb_factory, n, runs)).collect();
    let mrb_errs: Vec<f64> = ns.iter().map(|&n| mre(&mrb_factory, n, runs)).collect();
    let spread = |xs: &[f64]| {
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    };
    assert!(
        spread(&mrb_errs) > spread(&smb_errs),
        "MRB spread {:?} should exceed SMB spread {:?}",
        mrb_errs,
        smb_errs
    );
}
