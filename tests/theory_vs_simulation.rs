//! Theory-vs-simulation integration tests: the analytic results of
//! `smb-theory` checked against the behaviour of the real `smb-core`
//! implementation.

use smb::core::{CardinalityEstimator, Smb};
use smb::hash::HashScheme;
use smb::theory::bound::{error_bound, SmbBoundInput};
use smb::theory::optimal_t::{max_estimate, optimal_threshold, s_table};

/// Lemma 1: round `i` samples items with probability `2^-i`. Drive an
/// SMB into round r and measure the fraction of fresh distinct items
/// that get recorded.
#[test]
fn lemma1_sampling_probability() {
    let mut smb = Smb::with_scheme(4096, 512, HashScheme::with_seed(3)).unwrap();
    // Push into round 2 (p = 1/4).
    let mut i = 0u64;
    while smb.round() < 2 {
        smb.record(&i.to_le_bytes());
        i += 1;
    }
    assert_eq!(smb.round(), 2);
    // Feed fresh items and watch the physical ones counter. Only
    // sampled items (p = 1/4) can set bits, and a sampled item sets a
    // *fresh* bit only when it lands on one of the remaining zeros, so
    // the collision-adjusted expectation is
    // z₀·(1 − exp(−batch·p/m)) with z₀ the current zero count.
    let m = 4096f64;
    let z0 = m - smb.ones() as f64;
    let ones_before = smb.ones();
    let batch = 2000u64;
    for j in 0..batch {
        smb.record(&(1_000_000_000 + j).to_le_bytes());
        if smb.round() != 2 {
            break; // stop if we morph mid-batch
        }
    }
    let recorded = (smb.ones() - ones_before) as f64;
    let expected = z0 * (1.0 - (-(batch as f64) * 0.25 / m).exp());
    assert!(
        (recorded - expected).abs() < 5.0 * expected.sqrt() + 20.0,
        "recorded {recorded} vs expected ~{expected:.0}"
    );
}

/// The theory crate's S-table and max-estimate formulas must match the
/// core implementation exactly (they are written independently).
#[test]
fn s_table_and_capacity_cross_check() {
    for (m, t) in [(1000usize, 125usize), (5000, 384), (10_000, 833), (8, 2)] {
        let smb = Smb::new(m, t).unwrap();
        let table = s_table(m, t);
        assert_eq!(table.len() as u32, smb.max_rounds());
        for (i, &s) in table.iter().enumerate() {
            assert!((s - smb.s_value(i as u32)).abs() < 1e-9, "(m={m},T={t}) S[{i}]");
        }
        assert!((max_estimate(m, t) - smb.max_estimate()).abs() < 1e-6);
    }
}

/// Theorem 3 empirically: over many independent runs, the fraction of
/// estimates within δ of the truth must be at least β (the bound is a
/// lower bound, so observed coverage ≥ β − sampling noise).
#[test]
fn theorem3_bound_holds_empirically() {
    let m = 10_000usize;
    let n = 200_000u64;
    let t = optimal_threshold(m, n as f64).t;
    let delta = 0.1;
    let beta = error_bound(SmbBoundInput { m, t, n: n as f64, delta }).beta;

    let runs = 60;
    let mut within = 0;
    for run in 0..runs {
        let mut smb = Smb::with_scheme(m, t, HashScheme::with_seed(run * 31 + 7)).unwrap();
        for i in 0..n {
            smb.record(&(i ^ (run << 40)).to_le_bytes());
        }
        if ((smb.estimate() - n as f64) / n as f64).abs() <= delta {
            within += 1;
        }
    }
    let coverage = within as f64 / runs as f64;
    // Allow binomial noise: σ = √(β(1−β)/runs) ≈ 0.05 at worst.
    assert!(
        coverage >= beta - 0.15,
        "coverage {coverage} below bound β = {beta}"
    );
}

/// The maximum-estimate formula is really the saturation point: an SMB
/// fed far past capacity reports (close to) max_estimate and flags
/// saturation.
#[test]
fn capacity_formula_matches_saturation() {
    let mut smb = Smb::new(512, 128).unwrap();
    for i in 0..3_000_000u64 {
        smb.record(&i.to_le_bytes());
    }
    assert!(smb.is_saturated());
    let est = smb.estimate();
    assert!(est <= smb.max_estimate() + 1e-6);
    assert!(
        est > 0.5 * smb.max_estimate(),
        "saturated estimate {est} should approach capacity {}",
        smb.max_estimate()
    );
}

/// Optimal-T selections must themselves be *usable*: building an SMB
/// with the Table II threshold and running a stream of that n keeps the
/// error small.
#[test]
fn optimal_t_configurations_work_end_to_end() {
    for (m, n) in [(10_000usize, 1_000_000u64), (5000, 500_000), (2500, 200_000)] {
        let opt = optimal_threshold(m, n as f64);
        let mut errs = Vec::new();
        for run in 0..6 {
            let mut smb = Smb::with_scheme(m, opt.t, HashScheme::with_seed(run)).unwrap();
            for i in 0..n {
                smb.record(&(i.wrapping_mul(run + 1)).to_le_bytes());
            }
            errs.push((smb.estimate() - n as f64).abs() / n as f64);
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 0.12, "m={m} n={n} c={}: mean err {mean}", opt.c);
    }
}
