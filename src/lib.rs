//! # smb — Self-Morphing Bitmap workspace facade
//!
//! Reproduction of *Online Cardinality Estimation by Self-morphing
//! Bitmaps* (ICDE 2022). This crate re-exports the workspace's public
//! API so downstream users depend on a single crate:
//!
//! * [`core`] — the [`core::Smb`] estimator (the paper's contribution),
//!   the plain [`core::Bitmap`] (linear counting) and the shared
//!   [`core::CardinalityEstimator`] trait;
//! * [`baselines`] — MRB, FM/PCSA, LogLog, SuperLogLog, HLL, HLL++,
//!   HLL-TailCut, KMV/MinCount and the Adaptive Bitmap;
//! * [`theory`] — the Theorem 3 error bound, optimal-`T` search and
//!   analytic overhead model;
//! * [`stream`] — seeded workload generators, including the synthetic
//!   CAIDA-like packet trace;
//! * [`sketch`] — multi-stream frameworks (per-flow tables, estimator
//!   arrays) showing SMB as a plug-in estimator;
//! * [`factory`] — the [`factory::AlgoSpec`] unified
//!   estimator-construction API: one `(algorithm, memory bits, n_max,
//!   seed)` spec builds any estimator in the workspace;
//! * [`engine`] — the [`engine::ShardedFlowEngine`] multi-core
//!   per-flow ingest pipeline (hash once, partition by flow, batched
//!   lock-free shard workers with explicit backpressure);
//! * [`telemetry`] — the in-tree observability layer: lock-free
//!   [`telemetry::Registry`] metrics (counters, gauges, power-of-two
//!   histograms), SMB morph-event tracing via
//!   [`telemetry::MetricsObserver`], and JSON / Prometheus exporters;
//! * [`hash`] — the first-party hashing substrate.
//!
//! ## Quickstart
//!
//! ```
//! use smb::core::{CardinalityEstimator, Smb};
//!
//! // 5000 bits of memory, threshold T chosen for streams up to ~1M.
//! let mut est = Smb::builder().memory_bits(5000).expected_max_cardinality(1_000_000).build().unwrap();
//! for i in 0..10_000u32 {
//!     est.record(&i.to_le_bytes());
//!     est.record(&i.to_le_bytes()); // duplicates are never double-counted
//! }
//! let n_hat = est.estimate();
//! assert!((n_hat - 10_000.0).abs() / 10_000.0 < 0.2);
//! ```

pub use smb_baselines as baselines;
pub use smb_core as core;
pub use smb_engine as engine;
pub use smb_factory as factory;
pub use smb_hash as hash;
pub use smb_sketch as sketch;
pub use smb_stream as stream;
pub use smb_telemetry as telemetry;
pub use smb_theory as theory;
