//! Loopback integration tests: a real `SmbServer` on an ephemeral
//! port, driven by real `SmbClient`s over TCP.
//!
//! The headline property is *bit-identity*: N concurrent clients
//! feeding disjoint flows must leave the engine in exactly the state a
//! single-process ingest of the same records produces — same
//! estimates, same top-k order, same compressed snapshot. Per-flow
//! estimator state depends only on that flow's arrival order, which
//! each client preserves, so cross-client interleaving must not leak
//! into results.

use std::net::TcpStream;
use std::thread;

use smb_engine::{EngineConfig, EngineQuery, ShardedFlowEngine};
use smb_factory::{Algo, AlgoSpec};
use smb_net::proto::{
    ERR_MALFORMED, ERR_UNKNOWN_TYPE, ERR_UNSUPPORTED_VERSION, MSG_ERROR, MSG_HELLO, MSG_HELLO_ACK,
    MSG_PING, MSG_QUERY,
};
use smb_net::{read_frame, write_frame, NetError, SmbClient, SmbServer, PROTOCOL_VERSION};

fn spec() -> AlgoSpec {
    AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(7)
}

fn engine() -> ShardedFlowEngine {
    ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(2).with_batch(64)).unwrap()
}

/// Start a server on an ephemeral port; returns the address and the
/// thread that resolves to the serve summary once a client sends
/// SHUTDOWN.
fn spawn_server(engine: &ShardedFlowEngine) -> (String, thread::JoinHandle<u64>) {
    let server = SmbServer::bind("127.0.0.1:0", engine).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || server.serve().unwrap().sessions);
    (addr, handle)
}

/// The shared workload: 8 flows, sizes staggered so top-k order is
/// unambiguous; items per flow are generated in a fixed order.
fn workload() -> Vec<(u64, Vec<String>)> {
    (0u64..8)
        .map(|f| {
            let key = 0xF100 + f;
            let items = (0..(200 + f * 131)).map(|i| format!("{f}:{i}")).collect();
            (key, items)
        })
        .collect()
}

fn send_all(client: &mut SmbClient, flows: &[(u64, Vec<String>)]) {
    let mut pending: Vec<(u64, &[u8])> = Vec::new();
    for (key, items) in flows {
        for item in items {
            pending.push((*key, item.as_bytes()));
            if pending.len() == 97 {
                assert_eq!(client.record_batch(&pending).unwrap(), 97);
                pending.clear();
            }
        }
    }
    if !pending.is_empty() {
        let n = pending.len() as u64;
        assert_eq!(client.record_batch(&pending).unwrap(), n);
    }
}

#[test]
fn concurrent_clients_match_single_process_exactly() {
    let flows = workload();

    // Reference: single-process ingest of the identical records.
    let mut reference = engine();
    for (key, items) in &flows {
        for item in items {
            reference.ingest(*key, item.as_bytes());
        }
    }
    reference.flush();
    let ref_report = reference.run_query(
        &EngineQuery::new().with_top_k(8).with_flow_count(),
    );
    let ref_snapshot = reference.query_handle().snapshot_cells().unwrap();

    // Networked: 4 clients, each owning a disjoint quarter of the flows.
    let served = engine();
    let (addr, server) = spawn_server(&served);
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let mine: Vec<(u64, Vec<String>)> = flows
                .iter()
                .filter(|(key, _)| (key % 4) == t)
                .cloned()
                .collect();
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = SmbClient::connect(addr.as_str()).unwrap();
                client.ping().unwrap();
                send_all(&mut client, &mine);
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Verify through a fifth client. The server runs a barrier before
    // every query, so each client's acked records are visible.
    let mut client = SmbClient::connect(addr.as_str()).unwrap();
    assert!(client.server_spec().contains("\"algo\""), "HELLO_ACK must carry the spec");

    for (key, _) in &flows {
        let net_est = client.query(*key).unwrap();
        let ref_est = reference
            .run_query(&EngineQuery::new().with_estimate(*key))
            .estimate;
        assert!(net_est.is_some(), "flow {key:#x} unseen over the wire");
        assert_eq!(net_est, ref_est, "estimate drifted for flow {key:#x}");
    }
    assert_eq!(client.query(0xDEAD_BEEF).unwrap(), None);

    let net_top = client.top_k(8).unwrap();
    assert_eq!(Some(net_top), ref_report.top_k, "top-k order drifted");

    let net_snapshot = client.snapshot().unwrap();
    assert_eq!(
        net_snapshot, ref_snapshot,
        "compressed snapshot is not bit-identical to the single-process state"
    );
    assert_eq!(net_snapshot.len(), ref_report.flow_count.unwrap());

    client.shutdown_server().unwrap();
    let sessions = server.join().unwrap();
    assert_eq!(sessions, 5, "4 ingest clients + 1 verifier");
}

#[test]
fn rejects_version_mismatch() {
    let served = engine();
    let (addr, server) = spawn_server(&served);

    let mut stream = TcpStream::connect(addr.as_str()).unwrap();
    write_frame(&mut stream, MSG_HELLO, &(PROTOCOL_VERSION + 1).to_le_bytes()).unwrap();
    let (ty, payload) = read_frame(&mut stream, 1 << 20).unwrap();
    assert_eq!(ty, MSG_ERROR);
    assert_eq!(payload[0], ERR_UNSUPPORTED_VERSION);
    // ERROR is terminal: the server closes the session.
    assert!(matches!(
        read_frame(&mut stream, 1 << 20),
        Err(NetError::Closed)
    ));

    SmbClient::connect(addr.as_str())
        .unwrap()
        .shutdown_server()
        .unwrap();
    server.join().unwrap();
}

#[test]
fn hostile_frames_get_error_and_close() {
    let served = engine();
    let (addr, server) = spawn_server(&served);
    let handshake = || {
        let mut stream = TcpStream::connect(addr.as_str()).unwrap();
        write_frame(&mut stream, MSG_HELLO, &PROTOCOL_VERSION.to_le_bytes()).unwrap();
        let (ty, _) = read_frame(&mut stream, 1 << 20).unwrap();
        assert_eq!(ty, MSG_HELLO_ACK);
        stream
    };

    // A frame type outside the registry.
    let mut stream = handshake();
    write_frame(&mut stream, 0x66, &[]).unwrap();
    let (ty, payload) = read_frame(&mut stream, 1 << 20).unwrap();
    assert_eq!((ty, payload[0]), (MSG_ERROR, ERR_UNKNOWN_TYPE));
    assert!(matches!(read_frame(&mut stream, 1 << 20), Err(NetError::Closed)));

    // A known type with a malformed payload (QUERY with no flow key).
    let mut stream = handshake();
    write_frame(&mut stream, MSG_QUERY, &[]).unwrap();
    let (ty, payload) = read_frame(&mut stream, 1 << 20).unwrap();
    assert_eq!((ty, payload[0]), (MSG_ERROR, ERR_MALFORMED));
    assert!(matches!(read_frame(&mut stream, 1 << 20), Err(NetError::Closed)));

    // Skipping the handshake entirely: first frame must be HELLO.
    let mut stream = TcpStream::connect(addr.as_str()).unwrap();
    write_frame(&mut stream, MSG_PING, &[0u8; 8]).unwrap();
    let (ty, payload) = read_frame(&mut stream, 1 << 20).unwrap();
    assert_eq!((ty, payload[0]), (MSG_ERROR, ERR_UNKNOWN_TYPE));

    SmbClient::connect(addr.as_str())
        .unwrap()
        .shutdown_server()
        .unwrap();
    server.join().unwrap();
}

#[test]
fn subscribe_morphs_replays_recorded_events() {
    // A heavy flow against a small bitmap: 30k distinct items through
    // 2048 bits morphs several times (measured ~6 for this geometry),
    // so asking for 2 events is satisfied purely from the flight
    // recorder's replay — no live-tail wait, no hang.
    let served = ShardedFlowEngine::new(
        EngineConfig::new(AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e6).seed(7))
            .with_shards(1)
            .with_batch(256),
    )
    .unwrap();
    let (addr, server) = spawn_server(&served);

    let mut client = SmbClient::connect(addr.as_str()).unwrap();
    let items: Vec<String> = (0..30_000).map(|i| format!("pkt-{i}")).collect();
    send_all(&mut client, &[(42, items)]);
    // Barrier: any query makes the acked records (and their morph
    // events) visible before we subscribe.
    assert!(client.query(42).unwrap().is_some());

    let mut kinds = Vec::new();
    let delivered = client
        .subscribe_morphs(2, |event| kinds.push(event.kind_str().to_string()))
        .unwrap();
    assert_eq!(delivered, 2);
    assert_eq!(kinds, vec!["morph".to_string(); 2]);

    client.shutdown_server().unwrap();
    server.join().unwrap();
}
