//! Protocol layer: message-type registry and payload grammars.
//!
//! This module is the executable counterpart of `PROTOCOL.md` §3–§4.
//! Every `encode_*` builds exactly the payload bytes the spec shows,
//! and every `decode_*` rejects anything else — trailing bytes,
//! truncated fields, and over-long varints are all
//! [`NetError::Protocol`] errors, never panics. Varints and zigzag
//! deltas are the same primitives used by the checkpoint/snapshot
//! codec ([`smb_sketch::codec`]), so the two specs share one
//! implementation.

use crate::frame::NetError;
use smb_sketch::codec::{read_varint, write_varint, CodecError};

/// Protocol version carried in `HELLO` / `HELLO_ACK` (u16 LE).
pub const PROTOCOL_VERSION: u16 = 1;

// --- Message type registry (PROTOCOL.md §2) -------------------------

/// Client → server: open a session, carrying the client's version.
pub const MSG_HELLO: u8 = 0x01;
/// Server → client: version accepted; payload carries the engine spec.
pub const MSG_HELLO_ACK: u8 = 0x02;
/// Either direction: liveness probe with an opaque 8-byte token.
pub const MSG_PING: u8 = 0x03;
/// Reply to `PING`, echoing the token verbatim.
pub const MSG_PONG: u8 = 0x04;
/// Client → server: a batch of `(flow, item-bytes)` records to ingest.
pub const MSG_RECORD_BATCH: u8 = 0x10;
/// Server → client: batch accepted; echoes the record count.
pub const MSG_RECORD_ACK: u8 = 0x11;
/// Client → server: estimate one flow's cardinality (read-your-writes).
pub const MSG_QUERY: u8 = 0x20;
/// Reply to `QUERY`: found flag plus the estimate.
pub const MSG_QUERY_RESULT: u8 = 0x21;
/// Client → server: the `k` flows with the largest estimates.
pub const MSG_TOP_K: u8 = 0x22;
/// Reply to `TOP_K`: descending `(flow, estimate)` pairs.
pub const MSG_TOP_K_RESULT: u8 = 0x23;
/// Client → server: request the engine's full compressed state.
pub const MSG_SNAPSHOT: u8 = 0x30;
/// Reply to `SNAPSHOT`: a `SMB2` flow block (`PROTOCOL.md` §5).
pub const MSG_SNAPSHOT_RESULT: u8 = 0x31;
/// Client → server: stream morph lifecycle events.
pub const MSG_SUBSCRIBE_MORPHS: u8 = 0x40;
/// Server → client: one flight-recorder event.
pub const MSG_MORPH_EVENT: u8 = 0x41;
/// Server → client: subscription finished; echoes events delivered.
pub const MSG_MORPH_END: u8 = 0x42;
/// Client → server: stop accepting connections and drain sessions.
pub const MSG_SHUTDOWN: u8 = 0x50;
/// Reply to `SHUTDOWN`, sent before the server closes the session.
pub const MSG_SHUTDOWN_ACK: u8 = 0x51;
/// Either direction: terminal error report (code + UTF-8 message).
pub const MSG_ERROR: u8 = 0x7F;

// --- Error codes (PROTOCOL.md §4) -----------------------------------

/// The peer's `HELLO` version is not supported.
pub const ERR_UNSUPPORTED_VERSION: u8 = 1;
/// A payload violated its grammar.
pub const ERR_MALFORMED: u8 = 2;
/// The message type is not in the registry (or not valid here).
pub const ERR_UNKNOWN_TYPE: u8 = 3;
/// The request is valid but the server cannot serve it right now.
pub const ERR_UNAVAILABLE: u8 = 4;
/// The server failed internally while handling the request.
pub const ERR_INTERNAL: u8 = 5;
/// The response would exceed the negotiated frame limit.
pub const ERR_TOO_LARGE: u8 = 6;

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Protocol(format!("malformed payload: {e}"))
    }
}

/// A morph/lifecycle event as carried by `MORPH_EVENT` frames.
///
/// This is the wire projection of the telemetry flight recorder's
/// event record; `kind` uses the codes in `PROTOCOL.md` §3.9
/// (0 morph, 1 cleared, 2 saturated, 3 checkpoint, 4 drop-burst).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MorphEvent {
    /// Event kind code (see [`MorphEvent::kind_str`]).
    pub kind: u8,
    /// SMB round that closed (morph events; otherwise 0).
    pub round: u32,
    /// Fresh bits observed at closure (morph events; otherwise 0).
    pub fresh_bits: u32,
    /// Logical bitmap size at closure (morph events; otherwise 0).
    pub logical_size: u32,
    /// Items since the previous morph / checkpoint epoch / dropped
    /// items, depending on `kind`.
    pub items: u64,
    /// Estimate at the event (morph/saturated; otherwise 0).
    pub estimate: f64,
    /// Nanoseconds since the server's recorder was created.
    pub at_ns: u64,
}

impl MorphEvent {
    /// Human-readable name for [`MorphEvent::kind`].
    pub fn kind_str(&self) -> &'static str {
        match self.kind {
            0 => "morph",
            1 => "cleared",
            2 => "saturated",
            3 => "checkpoint",
            4 => "drop_burst",
            _ => "unknown",
        }
    }
}

/// A `Reader` over a payload that must be fully consumed.
struct Payload<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Payload { bytes, pos: 0 }
    }

    fn varint(&mut self) -> Result<u64, NetError> {
        Ok(read_varint(self.bytes, &mut self.pos)?)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], NetError> {
        let remaining = self.bytes.len() - self.pos;
        if n > remaining {
            return Err(NetError::Protocol(format!(
                "{what}: need {n} bytes, only {remaining} remain"
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, NetError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, NetError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, NetError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64_le(&mut self, what: &str) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64_le(what)?))
    }

    fn finish(self, what: &str) -> Result<(), NetError> {
        if self.pos != self.bytes.len() {
            return Err(NetError::Protocol(format!(
                "{what}: {} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encode a `HELLO` / `HELLO_ACK` version field (u16 LE).
pub fn encode_version(version: u16) -> Vec<u8> {
    version.to_le_bytes().to_vec()
}

/// Decode a `HELLO` payload: exactly one u16 LE version.
pub fn decode_hello(payload: &[u8]) -> Result<u16, NetError> {
    let mut p = Payload::new(payload);
    let version = p.u16_le("HELLO version")?;
    p.finish("HELLO")?;
    Ok(version)
}

/// Encode a `HELLO_ACK` payload: u16 LE version + spec JSON UTF-8.
pub fn encode_hello_ack(version: u16, spec_json: &str) -> Vec<u8> {
    let mut out = version.to_le_bytes().to_vec();
    out.extend_from_slice(spec_json.as_bytes());
    out
}

/// Decode a `HELLO_ACK` payload into `(version, spec JSON text)`.
pub fn decode_hello_ack(payload: &[u8]) -> Result<(u16, String), NetError> {
    if payload.len() < 2 {
        return Err(NetError::Protocol("HELLO_ACK payload shorter than version field".into()));
    }
    let version = u16::from_le_bytes([payload[0], payload[1]]);
    let spec = std::str::from_utf8(&payload[2..])
        .map_err(|_| NetError::Protocol("HELLO_ACK spec is not UTF-8".into()))?;
    Ok((version, spec.to_string()))
}

/// Decode a `PING`/`PONG` payload: exactly 8 opaque token bytes.
pub fn decode_ping(payload: &[u8]) -> Result<[u8; 8], NetError> {
    let mut p = Payload::new(payload);
    let b = p.take(8, "PING token")?;
    let mut token = [0u8; 8];
    token.copy_from_slice(b);
    p.finish("PING")?;
    Ok(token)
}

/// Encode a `RECORD_BATCH` payload from `(flow, item-bytes)` records.
pub fn encode_record_batch(records: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + records.len() * 16);
    write_varint(&mut out, records.len() as u64);
    for (flow, item) in records {
        write_varint(&mut out, *flow);
        write_varint(&mut out, item.len() as u64);
        out.extend_from_slice(item);
    }
    out
}

/// Decode a `RECORD_BATCH` payload into owned `(flow, item)` records.
///
/// The declared record count is validated against the bytes actually
/// present (each record needs at least 2 bytes) before any per-record
/// allocation, so a forged count cannot balloon memory.
pub fn decode_record_batch(payload: &[u8]) -> Result<Vec<(u64, Vec<u8>)>, NetError> {
    let mut p = Payload::new(payload);
    let count = p.varint()?;
    let remaining = payload.len() - 1;
    if count > (remaining / 2 + 1) as u64 {
        return Err(NetError::Protocol(format!(
            "RECORD_BATCH claims {count} records but only {remaining} payload bytes follow"
        )));
    }
    let mut records = Vec::with_capacity(count as usize);
    for i in 0..count {
        let flow = p.varint()?;
        let len = p.varint()?;
        let item = p.take(len as usize, "RECORD_BATCH item bytes")?;
        let _ = i;
        records.push((flow, item.to_vec()));
    }
    p.finish("RECORD_BATCH")?;
    Ok(records)
}

/// Encode a single-varint payload (`RECORD_ACK`, `QUERY`, `TOP_K`,
/// `SUBSCRIBE_MORPHS`, `MORPH_END` all share this shape).
pub fn encode_u64(value: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    write_varint(&mut out, value);
    out
}

/// Decode a single-varint payload; `what` names the message for
/// diagnostics.
pub fn decode_u64(payload: &[u8], what: &str) -> Result<u64, NetError> {
    let mut p = Payload::new(payload);
    let value = p.varint()?;
    p.finish(what)?;
    Ok(value)
}

/// Encode a `QUERY_RESULT` payload: found flag + f64 LE estimate.
pub fn encode_query_result(estimate: Option<f64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    match estimate {
        Some(e) => {
            out.push(1);
            out.extend_from_slice(&e.to_bits().to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
    out
}

/// Decode a `QUERY_RESULT` payload into `Some(estimate)` / `None`.
pub fn decode_query_result(payload: &[u8]) -> Result<Option<f64>, NetError> {
    let mut p = Payload::new(payload);
    let found = p.u8("QUERY_RESULT found flag")?;
    let estimate = p.f64_le("QUERY_RESULT estimate")?;
    p.finish("QUERY_RESULT")?;
    match found {
        0 => Ok(None),
        1 => Ok(Some(estimate)),
        other => Err(NetError::Protocol(format!(
            "QUERY_RESULT found flag must be 0 or 1, got {other}"
        ))),
    }
}

/// Encode a `TOP_K_RESULT` payload from descending `(flow, estimate)`
/// pairs.
pub fn encode_top_k_result(entries: &[(u64, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * 16);
    write_varint(&mut out, entries.len() as u64);
    for (flow, estimate) in entries {
        out.extend_from_slice(&flow.to_le_bytes());
        out.extend_from_slice(&estimate.to_bits().to_le_bytes());
    }
    out
}

/// Decode a `TOP_K_RESULT` payload into `(flow, estimate)` pairs.
pub fn decode_top_k_result(payload: &[u8]) -> Result<Vec<(u64, f64)>, NetError> {
    let mut p = Payload::new(payload);
    let count = p.varint()?;
    let remaining = payload.len().saturating_sub(1);
    if count > (remaining / 16) as u64 + 1 {
        return Err(NetError::Protocol(format!(
            "TOP_K_RESULT claims {count} entries but only {remaining} payload bytes follow"
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let flow = p.u64_le("TOP_K_RESULT flow")?;
        let estimate = p.f64_le("TOP_K_RESULT estimate")?;
        entries.push((flow, estimate));
    }
    p.finish("TOP_K_RESULT")?;
    Ok(entries)
}

/// Encode a `MORPH_EVENT` payload.
pub fn encode_morph_event(ev: &MorphEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    out.push(ev.kind);
    write_varint(&mut out, u64::from(ev.round));
    write_varint(&mut out, u64::from(ev.fresh_bits));
    write_varint(&mut out, u64::from(ev.logical_size));
    write_varint(&mut out, ev.items);
    out.extend_from_slice(&ev.estimate.to_bits().to_le_bytes());
    write_varint(&mut out, ev.at_ns);
    out
}

/// Decode a `MORPH_EVENT` payload.
pub fn decode_morph_event(payload: &[u8]) -> Result<MorphEvent, NetError> {
    let mut p = Payload::new(payload);
    let kind = p.u8("MORPH_EVENT kind")?;
    let round = narrow_u32(p.varint()?, "MORPH_EVENT round")?;
    let fresh_bits = narrow_u32(p.varint()?, "MORPH_EVENT fresh_bits")?;
    let logical_size = narrow_u32(p.varint()?, "MORPH_EVENT logical_size")?;
    let items = p.varint()?;
    let estimate = p.f64_le("MORPH_EVENT estimate")?;
    let at_ns = p.varint()?;
    p.finish("MORPH_EVENT")?;
    Ok(MorphEvent {
        kind,
        round,
        fresh_bits,
        logical_size,
        items,
        estimate,
        at_ns,
    })
}

fn narrow_u32(value: u64, what: &str) -> Result<u32, NetError> {
    u32::try_from(value)
        .map_err(|_| NetError::Protocol(format!("{what} {value} exceeds u32 range")))
}

/// Encode an `ERROR` payload: code byte + UTF-8 message.
pub fn encode_error(code: u8, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(code);
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decode an `ERROR` payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(u8, String), NetError> {
    if payload.is_empty() {
        return Err(NetError::Protocol("ERROR payload missing code byte".into()));
    }
    let message = String::from_utf8_lossy(&payload[1..]).into_owned();
    Ok((payload[0], message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip() {
        assert_eq!(decode_hello(&encode_version(1)).unwrap(), 1);
        assert_eq!(decode_hello(&encode_version(0x1234)).unwrap(), 0x1234);
        assert!(decode_hello(&[1]).is_err());
        assert!(decode_hello(&[1, 0, 0]).is_err());
    }

    #[test]
    fn hello_ack_round_trip() {
        let payload = encode_hello_ack(1, r#"{"algorithm":"xxh64"}"#);
        let (v, spec) = decode_hello_ack(&payload).unwrap();
        assert_eq!(v, 1);
        assert_eq!(spec, r#"{"algorithm":"xxh64"}"#);
        assert!(decode_hello_ack(&[0xFF, 0x00, 0xC0]).is_err()); // bad UTF-8
    }

    #[test]
    fn record_batch_round_trip() {
        let records: Vec<(u64, &[u8])> = vec![
            (7, b"alpha".as_slice()),
            (7, b"beta".as_slice()),
            (u64::MAX, b"".as_slice()),
        ];
        let payload = encode_record_batch(&records);
        let decoded = decode_record_batch(&payload).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], (7, b"alpha".to_vec()));
        assert_eq!(decoded[2], (u64::MAX, Vec::new()));
    }

    #[test]
    fn record_batch_forged_count_rejected() {
        let mut payload = Vec::new();
        write_varint(&mut payload, u64::MAX);
        assert!(decode_record_batch(&payload).is_err());
    }

    #[test]
    fn record_batch_truncated_item_rejected() {
        let mut payload = encode_record_batch(&[(1, b"abcdef".as_slice())]);
        payload.truncate(payload.len() - 3);
        assert!(decode_record_batch(&payload).is_err());
    }

    #[test]
    fn record_batch_trailing_bytes_rejected() {
        let mut payload = encode_record_batch(&[(1, b"x".as_slice())]);
        payload.push(0);
        assert!(decode_record_batch(&payload).is_err());
    }

    #[test]
    fn query_result_round_trip() {
        assert_eq!(decode_query_result(&encode_query_result(None)).unwrap(), None);
        assert_eq!(
            decode_query_result(&encode_query_result(Some(42.5))).unwrap(),
            Some(42.5)
        );
        // Found flag other than 0/1 is a grammar violation.
        let mut bad = encode_query_result(Some(1.0));
        bad[0] = 9;
        assert!(decode_query_result(&bad).is_err());
    }

    #[test]
    fn top_k_result_round_trip() {
        let entries = vec![(9u64, 120.0f64), (3, 55.5), (u64::MAX, 0.0)];
        let decoded = decode_top_k_result(&encode_top_k_result(&entries)).unwrap();
        assert_eq!(decoded, entries);
        assert!(decode_top_k_result(&encode_top_k_result(&[])).unwrap().is_empty());
        let mut forged = Vec::new();
        write_varint(&mut forged, 1 << 40);
        assert!(decode_top_k_result(&forged).is_err());
    }

    #[test]
    fn morph_event_round_trip() {
        let ev = MorphEvent {
            kind: 0,
            round: 12,
            fresh_bits: 900,
            logical_size: 4096,
            items: 123_456,
            estimate: 98765.4321,
            at_ns: u64::MAX,
        };
        let decoded = decode_morph_event(&encode_morph_event(&ev)).unwrap();
        assert_eq!(decoded, ev);
        assert_eq!(decoded.kind_str(), "morph");
        let mut truncated = encode_morph_event(&ev);
        truncated.truncate(4);
        assert!(decode_morph_event(&truncated).is_err());
    }

    #[test]
    fn error_payload_round_trip() {
        let (code, message) = decode_error(&encode_error(ERR_MALFORMED, "bad frame")).unwrap();
        assert_eq!(code, ERR_MALFORMED);
        assert_eq!(message, "bad frame");
        assert!(decode_error(&[]).is_err());
    }

    #[test]
    fn single_varint_payloads() {
        assert_eq!(decode_u64(&encode_u64(0), "QUERY").unwrap(), 0);
        assert_eq!(decode_u64(&encode_u64(u64::MAX), "QUERY").unwrap(), u64::MAX);
        assert!(decode_u64(&[], "QUERY").is_err());
        let mut trailing = encode_u64(5);
        trailing.push(0);
        assert!(decode_u64(&trailing, "QUERY").is_err());
    }
}
