//! # smb-net — network serving for SMB flow engines
//!
//! The paper's measurement points are switches and middleboxes whose
//! per-flow state must be *queried and shipped off-box* while ingest
//! continues. This crate turns a [`smb_engine::ShardedFlowEngine`]
//! into a TCP service speaking a small length-prefixed binary
//! protocol — specified normatively in the repository's `PROTOCOL.md`
//! — with three design commitments:
//!
//! * **Hash once, at the server edge.** Clients ship raw `(flow,
//!   item)` bytes; the server's per-connection [`EngineProducer`]
//!   hashes each item exactly once and fans batches out to the shard
//!   workers, so networked ingest is bit-identical to calling
//!   `engine.ingest` in process.
//! * **One producer per connection.** Every session owns a clone of
//!   the engine's producer handle (its own telemetry series under the
//!   `producer` label, its own partial batches) plus a shared
//!   [`QueryHandle`]. Query-class requests run a producer-side
//!   barrier first, so a session always reads its own writes.
//! * **Compressed state transfer.** `SNAPSHOT` responses carry the
//!   [`smb_sketch::codec`] flow-block encoding — the same bytes as a
//!   v2 checkpoint shard — so a snapshot pulled over the wire restores
//!   bit-identically elsewhere.
//!
//! The crate is std-only (no async runtime): blocking sockets, one
//! thread per session, a poll-based accept loop with a cooperative
//! shutdown flag. That matches the workspace's offline-dependency
//! policy and keeps the protocol trivially implementable from the
//! spec alone.
//!
//! [`EngineProducer`]: smb_engine::EngineProducer
//! [`QueryHandle`]: smb_engine::QueryHandle

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::SmbClient;
pub use frame::{read_frame, write_frame, NetError, MAX_FRAME};
pub use proto::{MorphEvent, PROTOCOL_VERSION};
pub use server::{ServerConfig, ServeSummary, SmbServer};
