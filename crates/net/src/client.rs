//! Client: a blocking [`SmbClient`] for scripts, tests, and the
//! `smbcount client` subcommand.
//!
//! Every method is a synchronous request/response exchange on one
//! connection; the server guarantees read-your-writes per session, so
//! `record_batch` followed by `query` on the same client observes the
//! records just sent. `ERROR` replies surface as
//! [`NetError::Remote`] with the server's code and message.

use std::net::{TcpStream, ToSocketAddrs};

use smb_devtools::Json;

use crate::frame::{read_frame, write_frame, NetError, MAX_FRAME};
use crate::proto::{self, MorphEvent};

/// A connected, handshaken protocol client.
///
/// ```no_run
/// use smb_net::SmbClient;
///
/// let mut client = SmbClient::connect("127.0.0.1:4742").unwrap();
/// client.record_batch(&[(7, b"alice"), (7, b"bob")]).unwrap();
/// let estimate = client.query(7).unwrap();
/// assert!(estimate.is_some());
/// for (flow, estimate) in client.top_k(10).unwrap() {
///     println!("{flow:016x}\t{estimate:.0}");
/// }
/// ```
pub struct SmbClient {
    stream: TcpStream,
    spec_json: String,
    max_frame: u32,
    pings: u64,
}

impl SmbClient {
    /// Connect to `addr` and run the `HELLO`/`HELLO_ACK` handshake.
    ///
    /// Fails with [`NetError::Remote`] (code
    /// [`proto::ERR_UNSUPPORTED_VERSION`]) if the server rejects
    /// [`proto::PROTOCOL_VERSION`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = SmbClient {
            stream,
            spec_json: String::new(),
            max_frame: MAX_FRAME,
            pings: 0,
        };
        let ack = client.request(
            proto::MSG_HELLO,
            &proto::encode_version(proto::PROTOCOL_VERSION),
            proto::MSG_HELLO_ACK,
        )?;
        let (version, spec) = proto::decode_hello_ack(&ack)?;
        if version != proto::PROTOCOL_VERSION {
            return Err(NetError::Protocol(format!(
                "server acked version {version}, expected {}",
                proto::PROTOCOL_VERSION
            )));
        }
        client.spec_json = spec;
        Ok(client)
    }

    /// The server engine's `AlgoSpec` as JSON text, captured from the
    /// `HELLO_ACK` — lets a client verify it is talking to the
    /// estimator configuration it expects.
    pub fn server_spec(&self) -> &str {
        &self.spec_json
    }

    /// Liveness probe: sends a `PING` with a fresh token and checks
    /// the `PONG` echoes it verbatim.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.pings += 1;
        let token = self.pings.to_le_bytes();
        let echoed = self.request(proto::MSG_PING, &token, proto::MSG_PONG)?;
        if echoed != token {
            return Err(NetError::Protocol("PONG token does not match PING".into()));
        }
        Ok(())
    }

    /// Ship a batch of `(flow, item-bytes)` records for ingest.
    /// Returns the count the server acknowledged (always the batch
    /// length on success). The server hashes each item exactly once,
    /// so this is bit-identical to local `engine.ingest` calls.
    pub fn record_batch(&mut self, records: &[(u64, &[u8])]) -> Result<u64, NetError> {
        let ack = self.request(
            proto::MSG_RECORD_BATCH,
            &proto::encode_record_batch(records),
            proto::MSG_RECORD_ACK,
        )?;
        let count = proto::decode_u64(&ack, "RECORD_ACK")?;
        if count != records.len() as u64 {
            return Err(NetError::Protocol(format!(
                "server acked {count} records, sent {}",
                records.len()
            )));
        }
        Ok(count)
    }

    /// Estimate `flow`'s cardinality; `None` if the server has never
    /// seen the flow. Reads this session's own writes.
    pub fn query(&mut self, flow: u64) -> Result<Option<f64>, NetError> {
        let result = self.request(
            proto::MSG_QUERY,
            &proto::encode_u64(flow),
            proto::MSG_QUERY_RESULT,
        )?;
        proto::decode_query_result(&result)
    }

    /// The `k` flows with the largest estimates, descending (ties by
    /// ascending flow key).
    pub fn top_k(&mut self, k: u64) -> Result<Vec<(u64, f64)>, NetError> {
        let result = self.request(
            proto::MSG_TOP_K,
            &proto::encode_u64(k),
            proto::MSG_TOP_K_RESULT,
        )?;
        proto::decode_top_k_result(&result)
    }

    /// Pull the engine's full per-flow state as `(flow, cell state)`
    /// pairs, sorted by flow key — decoded from the same compressed
    /// flow block a v2 checkpoint shard uses, so the result restores
    /// bit-identically.
    pub fn snapshot(&mut self) -> Result<Vec<(u64, Json)>, NetError> {
        let block = self.request(proto::MSG_SNAPSHOT, &[], proto::MSG_SNAPSHOT_RESULT)?;
        Ok(smb_sketch::codec::decode_flow_block(&block)?)
    }

    /// Stream flight-recorder events, invoking `on_event` per event,
    /// until the server sends `MORPH_END` (after `max_events`
    /// deliveries or server shutdown). Returns the count the server
    /// reported delivering. The stream is lossy under burst — see
    /// `PROTOCOL.md` §3.9.
    pub fn subscribe_morphs<F: FnMut(&MorphEvent)>(
        &mut self,
        max_events: u64,
        mut on_event: F,
    ) -> Result<u64, NetError> {
        write_frame(
            &mut self.stream,
            proto::MSG_SUBSCRIBE_MORPHS,
            &proto::encode_u64(max_events),
        )?;
        loop {
            let (ty, payload) = read_frame(&mut self.stream, self.max_frame)?;
            match ty {
                proto::MSG_MORPH_EVENT => {
                    let ev = proto::decode_morph_event(&payload)?;
                    on_event(&ev);
                }
                proto::MSG_MORPH_END => {
                    return proto::decode_u64(&payload, "MORPH_END");
                }
                proto::MSG_ERROR => {
                    let (code, message) = proto::decode_error(&payload)?;
                    return Err(NetError::Remote { code, message });
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected frame 0x{other:02X} inside a morph subscription"
                    )))
                }
            }
        }
    }

    /// Ask the server to shut down: stop accepting connections, end
    /// every session at its next poll tick, and return from `serve`.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let ack = self.request(proto::MSG_SHUTDOWN, &[], proto::MSG_SHUTDOWN_ACK)?;
        if !ack.is_empty() {
            return Err(NetError::Protocol("SHUTDOWN_ACK carries no payload".into()));
        }
        Ok(())
    }

    /// One request/response exchange: send `ty`, expect `expect`.
    /// `ERROR` replies become [`NetError::Remote`]; any other type is
    /// a protocol violation.
    fn request(&mut self, ty: u8, payload: &[u8], expect: u8) -> Result<Vec<u8>, NetError> {
        write_frame(&mut self.stream, ty, payload)?;
        let (got, reply) = read_frame(&mut self.stream, self.max_frame)?;
        if got == proto::MSG_ERROR {
            let (code, message) = proto::decode_error(&reply)?;
            return Err(NetError::Remote { code, message });
        }
        if got != expect {
            return Err(NetError::Protocol(format!(
                "expected frame 0x{expect:02X} in reply to 0x{ty:02X}, got 0x{got:02X}"
            )));
        }
        Ok(reply)
    }
}

impl std::fmt::Debug for SmbClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmbClient")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
