//! Server: accept loop, per-connection sessions, engine wiring.
//!
//! [`SmbServer::bind`] borrows a running [`ShardedFlowEngine`] just
//! long enough to clone a producer handle, a [`QueryHandle`], the
//! flight recorder and the telemetry registry, then serves
//! independently — the caller keeps the engine and may keep ingesting
//! locally while the server runs. Each accepted connection gets its
//! own session thread holding a fresh [`EngineProducer`] clone (so
//! networked ingest appears under its own `producer` label) and the
//! shared query handle.
//!
//! Shutdown is cooperative: the accept loop and every session poll an
//! `Arc<AtomicBool>`; a client `SHUTDOWN` frame (or the embedding
//! process flipping the flag) stops accepting, ends sessions at their
//! next poll tick, and [`SmbServer::serve`] joins them all before
//! returning.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smb_devtools::Snapshot;
use smb_engine::{EngineProducer, EngineQuery, QueryHandle, ShardedFlowEngine};
use smb_telemetry::{Counter, FlightRecorder, Gauge, Histogram, Registry};

use crate::frame::{write_frame, NetError, MAX_FRAME};
use crate::proto::{self, MorphEvent};

/// Tunables for [`SmbServer`]; `Default` suits tests and the CLI.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Largest accepted/emitted frame (`length` field), bytes.
    pub max_frame: u32,
    /// Poll interval for the accept loop, session socket reads, and
    /// morph-subscription tailing. Bounds shutdown latency.
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: MAX_FRAME,
            poll: Duration::from_millis(25),
        }
    }
}

/// What a completed [`SmbServer::serve`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted over the server's lifetime.
    pub sessions: u64,
}

/// Net-layer telemetry, registered on the engine's own [`Registry`]
/// so `smbcount metrics` / the exporter see one unified surface.
#[derive(Clone)]
struct NetMetrics {
    sessions_opened: Arc<Counter>,
    sessions_closed: Arc<Counter>,
    active_sessions: Arc<Gauge>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    frame_bytes_in: Arc<Histogram>,
    frame_bytes_out: Arc<Histogram>,
    records: Arc<Counter>,
    errors: Arc<Counter>,
}

impl NetMetrics {
    fn register(registry: &Registry) -> Self {
        NetMetrics {
            sessions_opened: registry.counter(
                "net_sessions_opened_total",
                "Client connections accepted",
            ),
            sessions_closed: registry.counter(
                "net_sessions_closed_total",
                "Client sessions ended (any reason)",
            ),
            active_sessions: registry.gauge(
                "net_active_sessions",
                "Client sessions currently open",
            ),
            frames_in: registry.counter("net_frames_in_total", "Protocol frames received"),
            frames_out: registry.counter("net_frames_out_total", "Protocol frames sent"),
            frame_bytes_in: registry.histogram(
                "net_frame_bytes_in",
                "Received frame sizes (length prefix included), bytes",
            ),
            frame_bytes_out: registry.histogram(
                "net_frame_bytes_out",
                "Sent frame sizes (length prefix included), bytes",
            ),
            records: registry.counter(
                "net_records_total",
                "Records ingested via RECORD_BATCH frames",
            ),
            errors: registry.counter(
                "net_errors_total",
                "ERROR frames sent plus sessions ended by protocol violations",
            ),
        }
    }
}

/// A bound, not-yet-serving protocol server.
///
/// ```no_run
/// use smb_engine::{EngineConfig, ShardedFlowEngine};
/// use smb_factory::{Algo, AlgoSpec};
/// use smb_net::SmbServer;
///
/// let spec = AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(7);
/// let engine = ShardedFlowEngine::new(EngineConfig::new(spec).with_shards(2)).unwrap();
/// let server = SmbServer::bind("127.0.0.1:0", &engine).unwrap();
/// println!("listening on {}", server.local_addr().unwrap());
/// let summary = server.serve().unwrap(); // until a SHUTDOWN frame
/// println!("served {} sessions", summary.sessions);
/// ```
pub struct SmbServer {
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    producer: EngineProducer,
    query: QueryHandle,
    flight: Option<Arc<FlightRecorder>>,
    spec_json: String,
    metrics: NetMetrics,
    config: ServerConfig,
}

impl SmbServer {
    /// Bind `addr` (e.g. `127.0.0.1:4742`, or port `0` for an
    /// ephemeral port) and wire the server to `engine`. The engine is
    /// only borrowed for the call; serving runs against cloned
    /// producer/query handles.
    pub fn bind<A: ToSocketAddrs>(addr: A, engine: &ShardedFlowEngine) -> Result<Self, NetError> {
        Self::bind_with(addr, engine, ServerConfig::default())
    }

    /// [`SmbServer::bind`] with explicit [`ServerConfig`] tunables.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        engine: &ShardedFlowEngine,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(SmbServer {
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
            producer: engine.producer_handle(),
            query: engine.query_handle(),
            flight: engine.flight_recorder().cloned(),
            spec_json: engine.config().spec.to_json().to_string(),
            metrics: NetMetrics::register(engine.registry()),
            config,
        })
    }

    /// The bound socket address (resolves port `0` to the real port).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// The cooperative shutdown flag. Store `true` (any ordering) to
    /// stop the accept loop and end sessions at their next poll tick;
    /// a client `SHUTDOWN` frame sets the same flag.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accept and serve sessions until the shutdown flag is set, then
    /// join every session thread and report what was served.
    pub fn serve(self) -> Result<ServeSummary, NetError> {
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut accepted = 0u64;
        while !self.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted += 1;
                    let session = Session {
                        producer: self.producer.clone(),
                        query: self.query.clone(),
                        flight: self.flight.clone(),
                        spec_json: self.spec_json.clone(),
                        metrics: self.metrics.clone(),
                        shutdown: Arc::clone(&self.shutdown),
                        config: self.config,
                    };
                    sessions.push(std::thread::spawn(move || session.run(stream)));
                }
                Err(e) if would_block(&e) => {
                    std::thread::sleep(self.config.poll);
                }
                Err(e) => return Err(NetError::Io(e)),
            }
            sessions.retain(|handle| !handle.is_finished());
        }
        for handle in sessions {
            let _ = handle.join();
        }
        Ok(ServeSummary { sessions: accepted })
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One connection's state: its own producer, the shared query handle,
/// and the session loop.
struct Session {
    producer: EngineProducer,
    query: QueryHandle,
    flight: Option<Arc<FlightRecorder>>,
    spec_json: String,
    metrics: NetMetrics,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// Why the session loop stopped — only used to decide whether the
/// errors counter ticks.
enum SessionEnd {
    Clean,
    Fault,
}

impl Session {
    fn run(mut self, stream: TcpStream) {
        self.metrics.sessions_opened.inc();
        self.metrics.active_sessions.add(1);
        let end = self.drive(stream).unwrap_or(SessionEnd::Fault);
        if matches!(end, SessionEnd::Fault) {
            self.metrics.errors.inc();
        }
        self.metrics.active_sessions.add(-1);
        self.metrics.sessions_closed.inc();
        // Producer drop delivers this session's partial batches.
    }

    fn drive(&mut self, mut stream: TcpStream) -> Result<SessionEnd, NetError> {
        stream.set_read_timeout(Some(self.config.poll))?;

        // Handshake: the first frame must be a HELLO we support.
        let (ty, payload) = match self.poll_frame(&mut stream)? {
            Some(frame) => frame,
            None => return Ok(SessionEnd::Clean), // shutdown while idle
        };
        if ty != proto::MSG_HELLO {
            self.bail(
                &mut stream,
                proto::ERR_UNKNOWN_TYPE,
                &format!("expected HELLO (0x01) first, got 0x{ty:02X}"),
            )?;
            return Ok(SessionEnd::Fault);
        }
        let version = match proto::decode_hello(&payload) {
            Ok(v) => v,
            Err(e) => {
                self.bail(&mut stream, proto::ERR_MALFORMED, &e.to_string())?;
                return Ok(SessionEnd::Fault);
            }
        };
        if version != proto::PROTOCOL_VERSION {
            self.bail(
                &mut stream,
                proto::ERR_UNSUPPORTED_VERSION,
                &format!(
                    "client speaks version {version}, server speaks {}",
                    proto::PROTOCOL_VERSION
                ),
            )?;
            return Ok(SessionEnd::Fault);
        }
        self.send(
            &mut stream,
            proto::MSG_HELLO_ACK,
            &proto::encode_hello_ack(proto::PROTOCOL_VERSION, &self.spec_json),
        )?;

        // Request loop. Protocol violations send ERROR, then close:
        // framing state can't be trusted after a malformed payload.
        loop {
            let (ty, payload) = match self.poll_frame(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => return Ok(SessionEnd::Clean),
                Err(NetError::Closed) => return Ok(SessionEnd::Clean),
                Err(e) => return Err(e),
            };
            match self.handle(&mut stream, ty, &payload) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Close(end)) => return Ok(end),
                Err(NetError::Protocol(msg)) => {
                    self.bail(&mut stream, proto::ERR_MALFORMED, &msg)?;
                    return Ok(SessionEnd::Fault);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn handle(
        &mut self,
        stream: &mut TcpStream,
        ty: u8,
        payload: &[u8],
    ) -> Result<Flow, NetError> {
        match ty {
            proto::MSG_PING => {
                let token = proto::decode_ping(payload)?;
                self.send(stream, proto::MSG_PONG, &token)?;
            }
            proto::MSG_RECORD_BATCH => {
                let records = proto::decode_record_batch(payload)?;
                let count = records.len() as u64;
                for (flow, item) in &records {
                    self.producer.ingest(*flow, item);
                }
                self.metrics.records.add(count);
                self.send(stream, proto::MSG_RECORD_ACK, &proto::encode_u64(count))?;
            }
            proto::MSG_QUERY => {
                let flow = proto::decode_u64(payload, "QUERY")?;
                self.producer.barrier();
                let report = self.query.run(&EngineQuery::new().with_estimate(flow));
                self.send(
                    stream,
                    proto::MSG_QUERY_RESULT,
                    &proto::encode_query_result(report.estimate),
                )?;
            }
            proto::MSG_TOP_K => {
                let k = proto::decode_u64(payload, "TOP_K")?;
                let k = usize::try_from(k)
                    .map_err(|_| NetError::Protocol(format!("TOP_K k={k} out of range")))?;
                self.producer.barrier();
                let report = self.query.run(&EngineQuery::new().with_top_k(k));
                let entries = report.top_k.unwrap_or_default();
                self.send(
                    stream,
                    proto::MSG_TOP_K_RESULT,
                    &proto::encode_top_k_result(&entries),
                )?;
            }
            proto::MSG_SNAPSHOT => {
                if !payload.is_empty() {
                    return Err(NetError::Protocol(
                        "SNAPSHOT carries no payload".into(),
                    ));
                }
                self.producer.barrier();
                match self.snapshot_block() {
                    Ok(block) if block.len() + 1 > self.config.max_frame as usize => {
                        self.bail(
                            stream,
                            proto::ERR_TOO_LARGE,
                            &format!(
                                "snapshot of {} bytes exceeds the {}-byte frame limit",
                                block.len(),
                                self.config.max_frame
                            ),
                        )?;
                        return Ok(Flow::Close(SessionEnd::Fault));
                    }
                    Ok(block) => self.send(stream, proto::MSG_SNAPSHOT_RESULT, &block)?,
                    Err(msg) => {
                        self.bail(stream, proto::ERR_INTERNAL, &msg)?;
                        return Ok(Flow::Close(SessionEnd::Fault));
                    }
                }
            }
            proto::MSG_SUBSCRIBE_MORPHS => {
                let max_events = proto::decode_u64(payload, "SUBSCRIBE_MORPHS")?;
                return self.stream_morphs(stream, max_events);
            }
            proto::MSG_SHUTDOWN => {
                if !payload.is_empty() {
                    return Err(NetError::Protocol(
                        "SHUTDOWN carries no payload".into(),
                    ));
                }
                self.shutdown.store(true, Ordering::Release);
                self.send(stream, proto::MSG_SHUTDOWN_ACK, &[])?;
                return Ok(Flow::Close(SessionEnd::Clean));
            }
            proto::MSG_ERROR => {
                // The client reported a terminal error; nothing to
                // answer, just stop.
                self.metrics.errors.inc();
                return Ok(Flow::Close(SessionEnd::Fault));
            }
            other => {
                self.bail(
                    stream,
                    proto::ERR_UNKNOWN_TYPE,
                    &format!("unknown message type 0x{other:02X}"),
                )?;
                return Ok(Flow::Close(SessionEnd::Fault));
            }
        }
        Ok(Flow::Continue)
    }

    /// Flush + barrier already ran; read every cell and encode the
    /// flow block (`PROTOCOL.md` §5).
    fn snapshot_block(&self) -> Result<Vec<u8>, String> {
        let cells = self.query.snapshot_cells().map_err(|e| e.to_string())?;
        smb_sketch::codec::encode_flow_block(&cells).map_err(|e| e.to_string())
    }

    /// Tail the flight recorder: replay what is buffered, then poll
    /// for fresh events until `max_events` are delivered or the
    /// server shuts down. Bursty windows can evict events between
    /// polls — the stream is documented lossy, never blocking.
    fn stream_morphs(&mut self, stream: &mut TcpStream, max_events: u64) -> Result<Flow, NetError> {
        let flight = match &self.flight {
            Some(flight) => Arc::clone(flight),
            None => {
                self.bail(
                    stream,
                    proto::ERR_UNAVAILABLE,
                    "this engine runs without a flight recorder",
                )?;
                return Ok(Flow::Close(SessionEnd::Fault));
            }
        };
        let mut delivered = 0u64;
        let mut seen = 0u64; // recorder events accounted for so far
        while delivered < max_events && !self.shutdown.load(Ordering::Acquire) {
            let total = flight.recorded_total();
            if total == seen {
                std::thread::sleep(self.config.poll);
                continue;
            }
            let fresh = (total - seen).min(flight.capacity() as u64) as usize;
            for ev in flight.recent(fresh) {
                if delivered == max_events {
                    break;
                }
                let wire = to_wire_event(&ev);
                self.send(stream, proto::MSG_MORPH_EVENT, &proto::encode_morph_event(&wire))?;
                delivered += 1;
            }
            seen = total;
        }
        self.send(stream, proto::MSG_MORPH_END, &proto::encode_u64(delivered))?;
        Ok(Flow::Continue)
    }

    /// Send an `ERROR` frame and count it. The caller closes the
    /// session afterwards; `ERROR` is always terminal.
    fn bail(&mut self, stream: &mut TcpStream, code: u8, message: &str) -> Result<(), NetError> {
        self.metrics.errors.inc();
        self.send(stream, proto::MSG_ERROR, &proto::encode_error(code, message))
    }

    fn send(&self, stream: &mut TcpStream, ty: u8, payload: &[u8]) -> Result<(), NetError> {
        write_frame(stream, ty, payload)?;
        self.metrics.frames_out.inc();
        self.metrics.frame_bytes_out.record(payload.len() as u64 + 5);
        Ok(())
    }

    /// Read one frame, treating read-timeout ticks *between* frames as
    /// polls of the shutdown flag (`Ok(None)` = shut down while idle).
    /// Once a frame has started, ticks keep the partial bytes and
    /// retry, so slow writers are never mis-framed.
    fn poll_frame(&self, stream: &mut TcpStream) -> Result<Option<(u8, Vec<u8>)>, NetError> {
        let mut first = [0u8; 1];
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(None);
            }
            match stream.read(&mut first) {
                Ok(0) => return Err(NetError::Closed),
                Ok(_) => break,
                Err(e) if would_block(&e) || e.kind() == std::io::ErrorKind::Interrupted => {
                    continue;
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        let mut header = [0u8; 4];
        header[0] = first[0];
        read_full(stream, &mut header[1..], "frame header")?;
        let len = u32::from_le_bytes(header);
        if len == 0 {
            return Err(NetError::Protocol("frame length 0 (missing type byte)".into()));
        }
        if len > self.config.max_frame {
            return Err(NetError::Protocol(format!(
                "frame length {len} exceeds limit {}",
                self.config.max_frame
            )));
        }
        let mut body = vec![0u8; len as usize];
        read_full(stream, &mut body, "frame body")?;
        self.metrics.frames_in.inc();
        self.metrics.frame_bytes_in.record(u64::from(len) + 4);
        let payload = body.split_off(1);
        Ok(Some((body[0], payload)))
    }
}

/// Per-request control flow for [`Session::handle`].
enum Flow {
    Continue,
    Close(SessionEnd),
}

/// Retry-on-timeout `read_exact` that never loses partial progress.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], what: &str) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(NetError::Protocol(format!(
                    "connection closed mid-frame while reading {what}"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if would_block(&e) || e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}

fn to_wire_event(ev: &smb_telemetry::FlightEvent) -> MorphEvent {
    use smb_telemetry::FlightEventKind;
    MorphEvent {
        kind: match ev.kind {
            FlightEventKind::Morph => 0,
            FlightEventKind::Cleared => 1,
            FlightEventKind::Saturated => 2,
            FlightEventKind::Checkpoint => 3,
            FlightEventKind::DropBurst => 4,
        },
        round: ev.round,
        fresh_bits: ev.fresh_bits,
        logical_size: ev.logical_size,
        items: ev.items,
        estimate: ev.estimate,
        at_ns: ev.at_ns,
    }
}
