//! Frame layer: length-prefixed message framing over a byte stream.
//!
//! Every protocol message travels as one *frame*:
//!
//! ```text
//! +----------------+-----------+------------------+
//! | length: u32 LE | type: u8  | payload bytes    |
//! +----------------+-----------+------------------+
//! ```
//!
//! `length` counts the type byte plus the payload (so the minimum
//! legal value is 1), and is capped at [`MAX_FRAME`] to bound the
//! memory a hostile peer can make either side allocate. The frame
//! layer knows nothing about message semantics — payload grammars
//! live in [`crate::proto`] and normatively in `PROTOCOL.md` §3.

use std::io::{Read, Write};

/// Upper bound on `length` (type byte + payload), 16 MiB.
///
/// Chosen so a full-engine `SNAPSHOT_RESULT` at the default
/// configuration fits with two orders of magnitude of headroom, while
/// a forged length prefix cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Errors surfaced by the frame and protocol layers.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket/file error.
    Io(std::io::Error),
    /// The peer violated the wire grammar (bad length, truncated
    /// payload, unknown message in a context that forbids it, ...).
    Protocol(String),
    /// The peer answered with an `ERROR` frame; `code` is one of the
    /// `ERR_*` constants in [`crate::proto`].
    Remote {
        /// Machine-readable error code (`PROTOCOL.md` §4).
        code: u8,
        /// Human-readable diagnostic supplied by the peer.
        message: String,
    },
    /// The connection closed at a frame boundary (clean EOF).
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Write one frame (`length` prefix, type byte, payload) to `w`.
///
/// Fails with [`NetError::Protocol`] if the payload would exceed
/// [`MAX_FRAME`]; nothing is written in that case. The write is
/// buffered into a single `write_all` so a frame is never interleaved
/// mid-header on a shared stream.
///
/// ```
/// let mut buf = Vec::new();
/// smb_net::write_frame(&mut buf, 0x03, b"PINGPING").unwrap();
/// // length = 1 (type byte) + 8 (payload) = 9, little-endian.
/// assert_eq!(&buf[..5], &[9, 0, 0, 0, 0x03]);
/// assert_eq!(&buf[5..], b"PINGPING");
/// ```
pub fn write_frame<W: Write>(w: &mut W, msg_type: u8, payload: &[u8]) -> Result<(), NetError> {
    let len = 1u64 + payload.len() as u64;
    if len > u64::from(MAX_FRAME) {
        return Err(NetError::Protocol(format!(
            "outgoing frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )));
    }
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(msg_type);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from `r`, returning `(type, payload)`.
///
/// Returns [`NetError::Closed`] on a clean EOF *before any header
/// byte* — the peer hung up between frames. EOF mid-header or
/// mid-payload is a [`NetError::Protocol`] truncation error. A
/// declared length of 0 or above `max_frame` is rejected before any
/// payload allocation.
pub fn read_frame<R: Read>(r: &mut R, max_frame: u32) -> Result<(u8, Vec<u8>), NetError> {
    let mut header = [0u8; 4];
    // First byte distinguishes clean close from truncation.
    match r.read(&mut header[..1])? {
        0 => return Err(NetError::Closed),
        1 => {}
        n => return Err(NetError::Protocol(format!("short read returned {n}"))),
    }
    r.read_exact(&mut header[1..])
        .map_err(|e| truncated("frame header", e))?;
    let len = u32::from_le_bytes(header);
    if len == 0 {
        return Err(NetError::Protocol("frame length 0 (missing type byte)".into()));
    }
    if len > max_frame {
        return Err(NetError::Protocol(format!(
            "frame length {len} exceeds limit {max_frame}"
        )));
    }
    let mut msg_type = [0u8; 1];
    r.read_exact(&mut msg_type)
        .map_err(|e| truncated("frame type byte", e))?;
    let mut payload = vec![0u8; len as usize - 1];
    r.read_exact(&mut payload)
        .map_err(|e| truncated("frame payload", e))?;
    Ok((msg_type[0], payload))
}

fn truncated(what: &str, e: std::io::Error) -> NetError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        NetError::Protocol(format!("connection closed mid-frame while reading {what}"))
    } else {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"hello").unwrap();
        let mut cursor = &buf[..];
        let (ty, payload) = read_frame(&mut cursor, MAX_FRAME).unwrap();
        assert_eq!(ty, 0x42);
        assert_eq!(payload, b"hello");
        assert!(cursor.is_empty());
    }

    #[test]
    fn empty_payload_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x30, b"").unwrap();
        assert_eq!(buf, [1, 0, 0, 0, 0x30]);
        let (ty, payload) = read_frame(&mut &buf[..], MAX_FRAME).unwrap();
        assert_eq!(ty, 0x30);
        assert!(payload.is_empty());
    }

    #[test]
    fn clean_eof_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut &empty[..], MAX_FRAME),
            Err(NetError::Closed)
        ));
    }

    #[test]
    fn eof_mid_header_is_protocol_error() {
        let partial: &[u8] = &[5, 0];
        assert!(matches!(
            read_frame(&mut &partial[..], MAX_FRAME),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn eof_mid_payload_is_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x10, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn zero_length_rejected() {
        let buf: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_FRAME),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0x10);
        assert!(matches!(
            read_frame(&mut &buf[..], 1024),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_outgoing_rejected() {
        let payload = vec![0u8; MAX_FRAME as usize];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, 0x10, &payload),
            Err(NetError::Protocol(_))
        ));
        assert!(sink.is_empty());
    }
}
