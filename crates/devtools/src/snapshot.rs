//! Sketch snapshot serialization over the in-tree [`Json`] layer —
//! the replacement for the old `serde`-derived `--features serde`
//! support (now the workspace `snapshot` feature).
//!
//! [`Snapshot`] is deliberately narrow: a type maps itself to a
//! [`Json`] value and reconstructs itself from one, validating
//! structural invariants on the way in (reconstruction goes through
//! the type's own constructors wherever possible, so derived state —
//! S-tables, popcounts, thresholds — is rebuilt rather than trusted
//! from the wire).
//!
//! Implementations for the estimator types live next to the types
//! (`smb-core/src/snapshot.rs`, `smb-baselines/src/snapshot.rs`,
//! behind their `snapshot` features); this module provides the trait,
//! the primitive impls, and the impls for `smb-hash`'s config types.

use crate::json::{Json, JsonError};
use smb_hash::{HashAlgorithm, HashScheme};

/// A type that can round-trip through the in-tree JSON layer.
pub trait Snapshot: Sized {
    /// Serialize to a JSON value.
    fn to_json(&self) -> Json;

    /// Reconstruct from a JSON value, validating invariants.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Serialize to a compact JSON string.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parse and reconstruct from a JSON string.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

// ---- primitives -------------------------------------------------------

macro_rules! impl_snapshot_uint {
    ($($ty:ty => $as:ident),+ $(,)?) => {
        $(
            impl Snapshot for $ty {
                fn to_json(&self) -> Json {
                    Json::Int(*self as i128)
                }
                fn from_json(v: &Json) -> Result<Self, JsonError> {
                    v.$as()
                }
            }
        )+
    };
}

impl_snapshot_uint!(u8 => as_u8, u32 => as_u32, u64 => as_u64, usize => as_usize);

impl Snapshot for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl Snapshot for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl Snapshot for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_owned())
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Snapshot::to_json).collect())
    }
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

// ---- smb-hash config types --------------------------------------------

impl Snapshot for HashAlgorithm {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                HashAlgorithm::Xxh64 => "xxh64",
                HashAlgorithm::Murmur3_128Low => "murmur3_128_low",
                HashAlgorithm::Fnv1aMixed => "fnv1a_mixed",
            }
            .to_owned(),
        )
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "xxh64" => Ok(HashAlgorithm::Xxh64),
            "murmur3_128_low" => Ok(HashAlgorithm::Murmur3_128Low),
            "fnv1a_mixed" => Ok(HashAlgorithm::Fnv1aMixed),
            other => Err(JsonError::new(format!("unknown hash algorithm `{other}`"))),
        }
    }
}

impl Snapshot for HashScheme {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("algorithm".into(), self.algorithm().to_json()),
            ("seed".into(), Json::Int(self.seed() as i128)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let algorithm = HashAlgorithm::from_json(v.field("algorithm")?)?;
        let seed = v.field("seed")?.as_u64()?;
        Ok(HashScheme::new(algorithm, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(value: &T) {
        let s = value.to_json_string();
        let back = T::from_json_str(&s).expect("reconstruct");
        assert_eq!(&back, value, "via {s}");
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&123456usize);
        roundtrip(&0.123456789f64);
        roundtrip(&true);
        roundtrip(&String::from("snapshot"));
        roundtrip(&vec![1u64, u64::MAX, 0]);
        roundtrip(&vec![0.5f64, 1.0 / 3.0]);
    }

    #[test]
    fn hash_scheme_round_trips() {
        for alg in [
            HashAlgorithm::Xxh64,
            HashAlgorithm::Murmur3_128Low,
            HashAlgorithm::Fnv1aMixed,
        ] {
            roundtrip(&alg);
            roundtrip(&HashScheme::new(alg, 0xDEAD_BEEF_CAFE_F00D));
        }
    }

    #[test]
    fn unknown_algorithm_rejected() {
        assert!(HashAlgorithm::from_json_str("\"sha256\"").is_err());
    }

    #[test]
    fn seed_above_2_pow_53_survives() {
        let scheme = HashScheme::new(HashAlgorithm::Xxh64, u64::MAX - 1);
        let back = HashScheme::from_json_str(&scheme.to_json_string()).unwrap();
        assert_eq!(back.seed(), u64::MAX - 1);
    }
}
