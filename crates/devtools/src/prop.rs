//! Minimal property-testing harness — the in-tree replacement for
//! `proptest` under the offline-dependency policy.
//!
//! # Model
//!
//! A property is a closure over values drawn from a [`Gen`]; the
//! runner ([`forall`] or the `forall!` macro) executes it for a
//! configurable number of cases, each case seeded deterministically
//! from a run seed. On failure the harness:
//!
//! 1. shrinks the counterexample with the generator's linear shrinking
//!    rules (integers step toward their range start, vectors drop
//!    elements then shrink them pointwise);
//! 2. panics with the *case seed* in the message.
//!
//! Re-running with `SMB_PROP_SEED=<that seed>` pins the harness to
//! exactly that case, reproducing the failure:
//!
//! ```text
//! SMB_PROP_SEED=0x9a3c... cargo test -q failing_test_name
//! ```
//!
//! `SMB_PROP_CASES=<n>` overrides the case count for longer soaks.
//!
//! # Writing properties
//!
//! ```
//! use smb_devtools::forall;
//! use smb_devtools::prop::gens;
//!
//! forall!(cases = 64, (n in gens::u64s(1..1000), k in gens::usizes(1..8)) => {
//!     smb_devtools::prop_assert!(n as usize * k >= n as usize, "k={k}");
//! });
//! ```
//!
//! Inside the body use [`prop_assert!`](crate::prop_assert),
//! [`prop_assert_eq!`](crate::prop_assert_eq),
//! [`prop_assert_ne!`](crate::prop_assert_ne) and
//! [`prop_assume!`](crate::prop_assume) (discards the case instead of
//! failing). Plain `assert!` also works but skips shrinking's failure
//! classification (a panic is treated as a failure all the same).

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use smb_hash::splitmix::splitmix64_mix;

use crate::rng::{Rng, Xoshiro256pp};

/// Outcome of one property evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The property failed with a message.
    Fail(String),
    /// The case's preconditions were not met; draw another input.
    Discard,
}

impl PropError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        PropError::Fail(msg.into())
    }
}

/// Result type a property body returns.
pub type PropResult = Result<(), PropError>;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases to run.
    pub cases: u32,
    /// Run seed; case `i` derives its seed from this.
    pub seed: u64,
    /// When true (set via `SMB_PROP_SEED`), run exactly one case whose
    /// seed is `seed` itself — the reproduction mode.
    pub fixed_seed: bool,
    /// Cap on shrink attempts per failure.
    pub max_shrink_steps: u32,
}

impl Config {
    /// Default config for `cases` cases, honouring the
    /// `SMB_PROP_SEED` / `SMB_PROP_CASES` environment overrides.
    pub fn from_env(cases: u32) -> Self {
        let mut cfg = Config {
            cases,
            // Fixed default run seed: deterministic CI by default.
            // Vary via SMB_PROP_SEED for soak testing.
            seed: 0x5EED_0F_C0DE_u64,
            fixed_seed: false,
            max_shrink_steps: 512,
        };
        if let Ok(s) = std::env::var("SMB_PROP_CASES") {
            if let Ok(n) = s.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Ok(s) = std::env::var("SMB_PROP_SEED") {
            let t = s.trim();
            let parsed = if let Some(hex) = t.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                t.parse::<u64>().ok()
            };
            if let Some(seed) = parsed {
                cfg.seed = seed;
                cfg.fixed_seed = true;
                cfg.cases = 1;
            }
        }
        cfg
    }

    /// The seed driving case `i` of this run.
    pub fn case_seed(&self, i: u32) -> u64 {
        if self.fixed_seed {
            self.seed
        } else {
            splitmix64_mix(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }
}

/// A value generator with linear shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Debug + Clone;

    /// Draw one value.
    fn generate(&self, rng: &mut dyn Rng) -> Self::Value;

    /// Candidate smaller inputs, most aggressive first. Default: none.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Run `prop` over `cases` values drawn from `gen`; panic with the
/// reproducing seed on failure. `name` labels the failure message
/// (the `forall!` macro passes `file:line`).
pub fn forall<G: Gen>(name: &str, cases: u32, gen: G, prop: impl Fn(&G::Value) -> PropResult) {
    let cfg = Config::from_env(cases);
    let mut executed = 0u32;
    let mut attempts = 0u64;
    // Allow generous discards before concluding the assumptions are
    // unsatisfiable.
    let max_attempts = (cfg.cases as u64) * 16 + 64;
    let mut case = 0u32;
    while executed < cfg.cases {
        if attempts >= max_attempts {
            panic!(
                "[prop {name}] gave up: only {executed}/{} cases passed their \
                 prop_assume! preconditions after {attempts} draws",
                cfg.cases
            );
        }
        let case_seed = cfg.case_seed(case);
        case += 1;
        attempts += 1;
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        match eval(&prop, &value) {
            Ok(()) => executed += 1,
            Err(PropError::Discard) => {}
            Err(PropError::Fail(msg)) => {
                let (small, small_msg, steps) = shrink_failure(&cfg, &gen, &prop, value, msg);
                panic!(
                    "[prop {name}] falsified after {} case(s) ({} shrink step(s))\n\
                     counterexample: {:?}\n\
                     error: {}\n\
                     reproduce with: SMB_PROP_SEED={:#x} cargo test",
                    executed + 1,
                    steps,
                    small,
                    small_msg,
                    case_seed,
                );
            }
        }
    }
}

/// Evaluate the property, converting panics into failures so plain
/// `assert!` works inside property bodies.
fn eval<V>(prop: &impl Fn(&V) -> PropResult, value: &V) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied())
                .unwrap_or("property panicked");
            Err(PropError::fail(format!("panic: {msg}")))
        }
    }
}

/// Greedily walk shrink candidates while they keep failing.
fn shrink_failure<G: Gen>(
    cfg: &Config,
    gen: &G,
    prop: &impl Fn(&G::Value) -> PropResult,
    mut value: G::Value,
    mut msg: String,
    // Returns (shrunk value, its failure message, steps taken).
) -> (G::Value, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&value) {
            steps += 1;
            if let Err(PropError::Fail(m)) = eval(prop, &candidate) {
                value = candidate;
                msg = m;
                continue 'outer;
            }
            if steps >= cfg.max_shrink_steps {
                break;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::PropError::fail(format!(
                "assertion `{}` failed: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        $crate::prop_assert_eq!($a, $b, "")
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::prop::PropError::fail(format!(
                "assertion `{} == {}` failed: {:?} != {:?} {}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        $crate::prop_assert_ne!($a, $b, "")
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::prop::PropError::fail(format!(
                "assertion `{} != {}` failed: both are {:?} {}",
                stringify!($a), stringify!($b), left, format!($($fmt)+)
            )));
        }
    }};
}

/// Discard the case (draw a fresh input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::PropError::Discard);
        }
    };
}

/// Property over one or more named generators:
///
/// ```ignore
/// forall!(cases = 64, (xs in gens::vecs(gens::u32s(0..500), 1..300),
///                      seed in gens::u64s(0..32)) => {
///     // body returning () — use prop_assert!/prop_assume! inside
/// });
/// ```
#[macro_export]
macro_rules! forall {
    (cases = $cases:expr, ($($name:ident in $gen:expr),+ $(,)?) => $body:block) => {{
        $crate::prop::forall(
            concat!(file!(), ":", line!()),
            $cases,
            ($($gen,)+),
            |__tuple| {
                let ($($name,)+) = ::std::clone::Clone::clone(__tuple);
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            },
        );
    }};
}

macro_rules! impl_tuple_gen {
    ($($G:ident / $idx:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut dyn Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_gen!(A / 0);
impl_tuple_gen!(A / 0, B / 1);
impl_tuple_gen!(A / 0, B / 1, C / 2);
impl_tuple_gen!(A / 0, B / 1, C / 2, D / 3);

/// The built-in generators.
pub mod gens {
    use super::{Gen, Rng};
    use std::fmt::Debug;
    use std::ops::Range;

    macro_rules! int_gen {
        ($fn_name:ident, $struct_name:ident, $any_name:ident, $ty:ty) => {
            /// Uniform integers in a half-open range, shrinking toward
            /// the range start.
            #[derive(Debug, Clone)]
            pub struct $struct_name {
                range: Range<$ty>,
            }

            /// Uniform integers in `range` (half-open).
            pub fn $fn_name(range: Range<$ty>) -> $struct_name {
                assert!(range.start < range.end, "empty range");
                $struct_name { range }
            }

            /// Any value of the type (full range).
            pub fn $any_name() -> $struct_name {
                $struct_name {
                    range: <$ty>::MIN..<$ty>::MAX,
                }
            }

            impl Gen for $struct_name {
                type Value = $ty;

                fn generate(&self, rng: &mut dyn Rng) -> $ty {
                    // Draw in u64 space; `$ty` is at most 64 bits.
                    // `end` is exclusive except for the `any` case where
                    // end == MAX is treated inclusively (off-by-one on
                    // the extreme value is irrelevant for testing).
                    let span = (self.range.end as u64).wrapping_sub(self.range.start as u64);
                    let off = if span == 0 { 0 } else { rng.gen_below_u64(span) };
                    (self.range.start as u64).wrapping_add(off) as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    let lo = self.range.start;
                    let v = *value;
                    if v <= lo {
                        return Vec::new();
                    }
                    let mut out = vec![lo];
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo && v - 1 != mid {
                        out.push(v - 1);
                    }
                    out
                }
            }
        };
    }

    int_gen!(u8s, U8Gen, any_u8, u8);
    int_gen!(u32s, U32Gen, any_u32, u32);
    int_gen!(u64s, U64Gen, any_u64, u64);
    int_gen!(usizes, UsizeGen, any_usize, usize);

    /// Uniform `f64` in a half-open range, shrinking toward the start.
    #[derive(Debug, Clone)]
    pub struct F64Gen {
        range: Range<f64>,
    }

    /// Uniform floats in `range` (half-open).
    pub fn f64s(range: Range<f64>) -> F64Gen {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "need a finite non-empty range"
        );
        F64Gen { range }
    }

    impl Gen for F64Gen {
        type Value = f64;

        fn generate(&self, rng: &mut dyn Rng) -> f64 {
            self.range.start + rng.gen_f64() * (self.range.end - self.range.start)
        }

        fn shrink(&self, value: &f64) -> Vec<f64> {
            let lo = self.range.start;
            if *value <= lo {
                return Vec::new();
            }
            vec![lo, lo + (*value - lo) / 2.0]
        }
    }

    /// Vectors of values from an element generator, with a length
    /// range. Shrinks by dropping elements (halves, then singly), then
    /// by shrinking elements pointwise.
    #[derive(Debug, Clone)]
    pub struct VecGen<G> {
        elem: G,
        len: Range<usize>,
    }

    /// Vectors with lengths in `len` (half-open), elements from `elem`.
    pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
        assert!(len.start < len.end, "empty length range");
        VecGen { elem, len }
    }

    /// Byte vectors with lengths in `len` — shorthand for
    /// `vecs(any_u8(), len)`.
    pub fn bytes(len: Range<usize>) -> VecGen<U8Gen> {
        vecs(any_u8(), len)
    }

    impl<G: Gen> Gen for VecGen<G>
    where
        G::Value: Debug + Clone,
    {
        type Value = Vec<G::Value>;

        fn generate(&self, rng: &mut dyn Rng) -> Vec<G::Value> {
            let len = rng.gen_range_usize(self.len.start..self.len.end);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
            let mut out = Vec::new();
            let min = self.len.start;
            // Structural shrinks: drop the back half, then one element
            // from either end.
            if value.len() > min {
                let half = (value.len() + min).div_ceil(2).max(min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                out.push(value[1..].to_vec());
            }
            // Pointwise shrinks on the first few positions.
            for i in 0..value.len().min(4) {
                for cand in self.elem.shrink(&value[i]).into_iter().take(3) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// A fixed set of choices, shrinking toward the first.
    #[derive(Debug, Clone)]
    pub struct ChoiceGen<T> {
        options: Vec<T>,
    }

    /// One of the given options, uniformly.
    pub fn one_of<T: Debug + Clone + PartialEq>(options: &[T]) -> ChoiceGen<T> {
        assert!(!options.is_empty(), "need at least one option");
        ChoiceGen {
            options: options.to_vec(),
        }
    }

    impl<T: Debug + Clone + PartialEq> Gen for ChoiceGen<T> {
        type Value = T;

        fn generate(&self, rng: &mut dyn Rng) -> T {
            self.options[rng.gen_range_usize(0..self.options.len())].clone()
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            // Earlier options are "smaller".
            let pos = self.options.iter().position(|o| o == value).unwrap_or(0);
            self.options[..pos].iter().rev().take(2).cloned().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::gens;
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        forall("unit", 50, gens::u64s(0..100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn failing_property_reports_seed_and_reproduces() {
        // Run a failing property, harvest the advertised seed from the
        // panic message, then re-run pinned to that seed and check the
        // same counterexample appears — the acceptance criterion of
        // the harness.
        let prop = |v: &u64| {
            if *v >= 25 {
                Err(PropError::fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        };
        let payload = std::panic::catch_unwind(|| {
            forall("seeded", 64, gens::u64s(0..100), prop);
        })
        .expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic carries a String")
            .clone();
        assert!(msg.contains("SMB_PROP_SEED="), "message: {msg}");
        // Shrinking must land on the boundary counterexample.
        assert!(msg.contains("counterexample: 25"), "message: {msg}");

        let seed_hex = msg
            .split("SMB_PROP_SEED=")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("seed in message");
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).unwrap();

        // Reproduce by evaluating the same generator under the same
        // case seed (equivalent to what SMB_PROP_SEED does in-process,
        // without mutating the test runner's environment).
        let cfg = Config {
            cases: 1,
            seed,
            fixed_seed: true,
            max_shrink_steps: 0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.case_seed(0));
        let v = gens::u64s(0..100).generate(&mut rng);
        assert!(prop(&v).is_err(), "seed {seed:#x} must reproduce, drew {v}");
    }

    #[test]
    fn discarded_cases_do_not_count() {
        let executed = std::cell::Cell::new(0u32);
        forall("assume", 20, gens::u64s(0..100), |v| {
            if *v % 2 == 1 {
                return Err(PropError::Discard);
            }
            executed.set(executed.get() + 1);
            Ok(())
        });
        assert_eq!(executed.get(), 20, "20 even draws must be executed");
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn unsatisfiable_assumptions_give_up() {
        forall("never", 10, gens::u64s(0..100), |_| Err(PropError::Discard));
    }

    #[test]
    fn vec_shrinking_reaches_minimal_example() {
        // Property: no vector contains a value >= 90. The minimal
        // counterexample is a single-element vector [90].
        let payload = std::panic::catch_unwind(|| {
            forall(
                "vecshrink",
                200,
                gens::vecs(gens::u32s(0..100), 1..50),
                |xs: &Vec<u32>| {
                    if xs.iter().any(|&x| x >= 90) {
                        Err(PropError::fail("contains large element"))
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .expect_err("must fail");
        let msg = payload.downcast_ref::<String>().unwrap().clone();
        assert!(
            msg.contains("counterexample: [90]"),
            "shrinking should reach [90]: {msg}"
        );
    }

    #[test]
    fn plain_panics_are_caught_as_failures() {
        let payload = std::panic::catch_unwind(|| {
            forall("panicky", 10, gens::u64s(0..10), |v| {
                assert!(*v > 100, "impossible");
                Ok(())
            });
        })
        .expect_err("must fail");
        let msg = payload.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("panic"), "message: {msg}");
    }

    #[test]
    fn forall_macro_binds_multiple_generators() {
        forall!(cases = 16, (a in gens::u64s(1..10), b in gens::u64s(1..10)) => {
            crate::prop_assert!(a * b >= a, "a={a} b={b}");
        });
    }

    #[test]
    fn tuple_gen_shrinks_componentwise() {
        let gen = (gens::u64s(0..10), gens::u64s(0..10));
        let shrinks = gen.shrink(&(5, 7));
        assert!(shrinks.iter().any(|&(a, b)| a < 5 && b == 7));
        assert!(shrinks.iter().any(|&(a, b)| a == 5 && b < 7));
    }

    #[test]
    fn choice_gen_only_yields_options() {
        let gen = gens::one_of(&[3u32, 5, 9]);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            let v = gen.generate(&mut rng);
            assert!([3, 5, 9].contains(&v));
        }
    }
}
