//! # smb-devtools — in-tree development substrate
//!
//! Everything the workspace previously pulled from crates.io for
//! testing and benchmarking, reimplemented in-tree so the repo builds
//! and tests **offline and deterministically** (DESIGN.md, "Building
//! offline"):
//!
//! | module | replaces | provides |
//! |---|---|---|
//! | [`rng`] | `rand` | [`rng::SplitMix64`], [`rng::Xoshiro256pp`], the [`rng::Rng`] trait |
//! | [`prop`] | `proptest` | [`forall!`] runner, generators, seed reporting + shrinking |
//! | [`mod@stress`] | `loom` (in spirit) | [`macro@stress`] seeded thread-interleaving runner with failing-seed reporting |
//! | [`mod@bench`] | `criterion` | warmup + median/p95 harness with JSON emission |
//! | [`json`] | `serde_json` | [`json::Json`] value type, parser, writer |
//! | [`snapshot`] | `serde` derive | [`snapshot::Snapshot`] round-trip trait |
//!
//! The only dependency is `smb-hash` (for the SplitMix64 mixer and the
//! hash-config snapshot impls); nothing here touches the network or a
//! registry.
//!
//! ## Reproducing a property failure
//!
//! On falsification the harness prints the case seed:
//!
//! ```text
//! [prop tests/properties.rs:42] falsified after 17 case(s) (5 shrink step(s))
//! counterexample: [90]
//! error: assertion `...` failed
//! reproduce with: SMB_PROP_SEED=0x3c5f9a… cargo test
//! ```
//!
//! Re-running the named test with that environment variable pins the
//! harness to exactly that case.
//!
//! ## Reproducing a stress failure
//!
//! [`macro@stress`] reports failures the same way, via `SMB_STRESS_SEED`:
//! the seed pins the failing schedule (data, yield-point decisions,
//! thread count), and `SMB_STRESS_SCHEDULES` lengthens soaks. See the
//! [`mod@stress`] module docs for the schedule model.
//!
//! ## Running benches
//!
//! ```text
//! cargo bench -p smb-bench --offline            # full measurement
//! cargo bench -p smb-bench --offline -- --smoke # seconds-long smoke
//! SMB_BENCH_JSON=target/bench.json cargo bench -p smb-bench --offline
//! ```

#![forbid(unsafe_code)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;
pub mod snapshot;
pub mod stress;

pub use bench::{black_box, Bench, BenchConfig, BenchResult};
pub use json::{Json, JsonError};
pub use prop::{Gen, PropError, PropResult};
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
pub use snapshot::Snapshot;
pub use stress::{StressConfig, StressCtx};
