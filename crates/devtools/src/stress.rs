//! Seeded thread-interleaving stress harness — `forall!`'s concurrency
//! sibling.
//!
//! # Model
//!
//! A stress test runs a number of **schedules**. Each schedule:
//!
//! 1. derives a schedule seed from the run seed (exactly like
//!    [`crate::prop::Config::case_seed`] derives property-case seeds);
//! 2. calls `setup(seed)` to build the shared state under test;
//! 3. spawns `threads` OS threads over that state, each with its own
//!    deterministically seeded [`StressCtx`]; thread bodies call
//!    [`StressCtx::interleave`] between protocol steps to inject
//!    randomized yield points (the in-tree PRNG decides, per thread,
//!    whether to yield the scheduler, spin, or fall straight through),
//!    perturbing the OS schedule differently under every seed;
//! 4. joins the threads (panics are caught and reported, not lost) and
//!    runs `check(&state)` over the quiesced state.
//!
//! Any body panic or check failure aborts the run with the **schedule
//! seed** in the panic message, exactly like `forall!`:
//!
//! ```text
//! [stress tests/concurrent_differential.rs:30] schedule 7 failed (4 threads)
//! error: assertion `...` failed
//! reproduce with: SMB_STRESS_SEED=0x3c5f9a… cargo test
//! ```
//!
//! Re-running with `SMB_STRESS_SEED=<that seed>` pins the harness to
//! exactly that schedule. True thread interleavings are the OS
//! scheduler's to choose — what the seed pins is every input the
//! harness controls (data, yield decisions, thread count), which in
//! practice re-provokes schedule-dependent failures within a few runs.
//! `SMB_STRESS_SCHEDULES=<n>` overrides the schedule count for longer
//! soaks.
//!
//! # Writing stress tests
//!
//! ```
//! use smb_devtools::{prop_assert, stress};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! stress!(schedules = 8, threads = 4,
//!     setup = |_seed| AtomicU64::new(0),
//!     body = |tid, ctx, counter: &AtomicU64| {
//!         for _ in 0..100 {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!             ctx.interleave();
//!         }
//!         let _ = tid;
//!     },
//!     check = |counter| {
//!         prop_assert!(counter.load(Ordering::Relaxed) == 400);
//!         Ok(())
//!     });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use smb_hash::splitmix::splitmix64_mix;

use crate::prop::{PropError, PropResult};
use crate::rng::{Rng, Xoshiro256pp};

/// Stress-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Number of seeded schedules to run.
    pub schedules: u32,
    /// Threads spawned over the shared state per schedule.
    pub threads: usize,
    /// Run seed; schedule `i` derives its seed from this.
    pub seed: u64,
    /// When true (set via `SMB_STRESS_SEED`), run exactly one schedule
    /// whose seed is `seed` itself — the reproduction mode.
    pub fixed_seed: bool,
    /// Probability that one [`StressCtx::interleave`] call perturbs
    /// the schedule at all (yield or spin) rather than falling
    /// through.
    pub yield_prob: f64,
}

impl StressConfig {
    /// Default config for `schedules` × `threads`, honouring the
    /// `SMB_STRESS_SEED` / `SMB_STRESS_SCHEDULES` environment
    /// overrides.
    pub fn from_env(schedules: u32, threads: usize) -> Self {
        let mut cfg = StressConfig {
            schedules,
            threads,
            // Fixed default run seed: deterministic CI by default,
            // varied via SMB_STRESS_SEED (verify.sh also runs a
            // clock-derived seed, printing it).
            seed: 0x57E5_5_5EED_u64,
            fixed_seed: false,
            yield_prob: 0.1,
        };
        if let Ok(s) = std::env::var("SMB_STRESS_SCHEDULES") {
            if let Ok(n) = s.trim().parse::<u32>() {
                cfg.schedules = n.max(1);
            }
        }
        if let Ok(s) = std::env::var("SMB_STRESS_SEED") {
            let t = s.trim();
            let parsed = if let Some(hex) = t.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                t.parse::<u64>().ok()
            };
            if let Some(seed) = parsed {
                cfg.seed = seed;
                cfg.fixed_seed = true;
                cfg.schedules = 1;
            }
        }
        cfg
    }

    /// The seed driving schedule `i` of this run.
    pub fn schedule_seed(&self, i: u32) -> u64 {
        if self.fixed_seed {
            self.seed
        } else {
            splitmix64_mix(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }
}

/// Per-thread context handed to stress bodies: a deterministically
/// seeded PRNG plus the yield-point injector.
#[derive(Debug)]
pub struct StressCtx {
    rng: Xoshiro256pp,
    yield_prob: f64,
    yields: u64,
}

impl StressCtx {
    fn new(schedule_seed: u64, tid: usize, yield_prob: f64) -> Self {
        StressCtx {
            // Decorrelate thread streams from the schedule seed and
            // each other the same way prop cases decorrelate.
            rng: Xoshiro256pp::seed_from_u64(splitmix64_mix(
                schedule_seed ^ (tid as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
            )),
            yield_prob,
            yields: 0,
        }
    }

    /// A randomized yield point: with the configured probability,
    /// perturb the OS schedule — usually `yield_now`, occasionally a
    /// short spin so the perturbation isn't always a context switch.
    /// Call between protocol steps in stress bodies; under different
    /// seeds the calls fire at different points, steering threads into
    /// different interleavings.
    #[inline]
    pub fn interleave(&mut self) {
        if self.rng.gen_bool(self.yield_prob) {
            self.yields += 1;
            if self.rng.gen_bool(0.25) {
                for _ in 0..(self.rng.gen_below_u64(64) + 1) {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// The thread's own deterministic PRNG — use it for data choices
    /// inside bodies so the whole schedule stays seed-reproducible.
    pub fn rng(&mut self) -> &mut Xoshiro256pp {
        &mut self.rng
    }

    /// How many times [`StressCtx::interleave`] actually perturbed the
    /// schedule.
    pub fn yields(&self) -> u64 {
        self.yields
    }
}

/// Run a seeded multi-threaded stress test; panic with the reproducing
/// schedule seed on any body panic or check failure. `name` labels
/// failures (the [`stress!`](crate::stress!) macro passes
/// `file:line`).
///
/// Per schedule: `setup(seed)` builds the shared state, `threads`
/// spawned threads run `body(tid, &mut ctx, &state)` concurrently, and
/// after all join, `check(&state)` validates the quiesced state.
pub fn stress<S: Sync>(
    name: &str,
    cfg: StressConfig,
    setup: impl Fn(u64) -> S,
    body: impl Fn(usize, &mut StressCtx, &S) + Sync,
    check: impl Fn(&S) -> PropResult,
) {
    assert!(cfg.threads >= 1, "stress needs at least one thread");
    for schedule in 0..cfg.schedules {
        let seed = cfg.schedule_seed(schedule);
        let state = setup(seed);
        let mut panics: Vec<(usize, String)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.threads)
                .map(|tid| {
                    let (body, state) = (&body, &state);
                    scope.spawn(move || {
                        let mut ctx = StressCtx::new(seed, tid, cfg.yield_prob);
                        catch_unwind(AssertUnwindSafe(|| body(tid, &mut ctx, state)))
                            .map_err(|payload| panic_message(&*payload))
                    })
                })
                .collect();
            for (tid, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(msg)) => panics.push((tid, msg)),
                    Err(_) => panics.push((tid, "thread died outside catch_unwind".into())),
                }
            }
        });
        let failure = if let Some((tid, msg)) = panics.first() {
            Some(format!("thread {tid} panicked: {msg}"))
        } else {
            match check(&state) {
                Ok(()) => None,
                Err(PropError::Fail(msg)) => Some(msg),
                Err(PropError::Discard) => {
                    Some("check returned Discard — stress checks cannot discard".into())
                }
            }
        };
        if let Some(msg) = failure {
            panic!(
                "[stress {name}] schedule {} failed ({} threads)\n\
                 error: {}\n\
                 reproduce with: SMB_STRESS_SEED={:#x} cargo test",
                schedule + 1,
                cfg.threads,
                msg,
                seed,
            );
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("stress body panicked")
        .to_string()
}

/// Seeded thread-interleaving stress test over shared state:
///
/// ```ignore
/// stress!(schedules = 16, threads = 8,
///     setup = |seed| build_shared_state(seed),
///     body = |tid, ctx, state| { /* record; ctx.interleave(); … */ },
///     check = |state| { prop_assert!(invariant(state)); Ok(()) });
/// ```
///
/// `setup` receives the schedule seed; `body` runs on every thread
/// with a per-thread [`StressCtx`]; `check` runs once
/// after all threads joined and must return a
/// [`PropResult`](crate::prop::PropResult) (use
/// [`prop_assert!`](crate::prop_assert) inside). Failures panic with
/// the reproducing `SMB_STRESS_SEED`.
#[macro_export]
macro_rules! stress {
    (schedules = $schedules:expr, threads = $threads:expr,
     setup = $setup:expr, body = $body:expr, check = $check:expr $(,)?) => {
        $crate::stress::stress(
            concat!(file!(), ":", line!()),
            $crate::stress::StressConfig::from_env($schedules, $threads),
            $setup,
            $body,
            $check,
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn passing_stress_runs_all_schedules_and_threads() {
        let schedules_run = AtomicU64::new(0);
        stress(
            "unit",
            StressConfig {
                schedules: 5,
                threads: 4,
                seed: 0xD0,
                fixed_seed: false,
                yield_prob: 0.5,
            },
            |_seed| AtomicU64::new(0),
            |_tid, ctx, counter: &AtomicU64| {
                for _ in 0..50 {
                    counter.fetch_add(1, Ordering::Relaxed);
                    ctx.interleave();
                }
            },
            |counter| {
                schedules_run.fetch_add(1, Ordering::Relaxed);
                if counter.load(Ordering::Relaxed) == 200 {
                    Ok(())
                } else {
                    Err(PropError::fail("lost increments"))
                }
            },
        );
        assert_eq!(schedules_run.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn failing_check_reports_schedule_seed() {
        let cfg = StressConfig {
            schedules: 4,
            threads: 2,
            seed: 0xBAD,
            fixed_seed: false,
            yield_prob: 0.0,
        };
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            stress(
                "seeded",
                cfg,
                |seed| seed,
                |_tid, _ctx, _seed| {},
                |_seed| Err(PropError::fail("always fails")),
            );
        }))
        .expect_err("check failure must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic carries a String")
            .clone();
        assert!(msg.contains("SMB_STRESS_SEED="), "message: {msg}");
        assert!(msg.contains("always fails"), "message: {msg}");
        // The advertised seed is schedule 0's seed, so a fixed-seed
        // re-run replays exactly that schedule.
        let advertised = msg
            .split("SMB_STRESS_SEED=")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("seed in message");
        let seed = u64::from_str_radix(advertised.trim_start_matches("0x"), 16).unwrap();
        assert_eq!(seed, cfg.schedule_seed(0));
        let pinned = StressConfig {
            seed,
            fixed_seed: true,
            schedules: 1,
            ..cfg
        };
        assert_eq!(pinned.schedule_seed(0), seed, "reproduction pins the seed");
    }

    #[test]
    fn body_panics_are_reported_with_thread_id() {
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            stress(
                "panicky",
                StressConfig {
                    schedules: 1,
                    threads: 3,
                    seed: 1,
                    fixed_seed: false,
                    yield_prob: 0.0,
                },
                |_| (),
                |tid, _ctx, _state| {
                    if tid == 2 {
                        panic!("thread two exploded");
                    }
                },
                |_| Ok(()),
            );
        }))
        .expect_err("body panic must fail the run");
        let msg = payload.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("thread 2 panicked"), "message: {msg}");
        assert!(msg.contains("thread two exploded"), "message: {msg}");
        assert!(msg.contains("SMB_STRESS_SEED="), "message: {msg}");
    }

    #[test]
    fn thread_rngs_are_decorrelated_but_deterministic() {
        let mut a0 = StressCtx::new(42, 0, 0.0);
        let mut a0_again = StressCtx::new(42, 0, 0.0);
        let mut a1 = StressCtx::new(42, 1, 0.0);
        let x = a0.rng().next_u64();
        assert_eq!(x, a0_again.rng().next_u64(), "same (seed, tid) replays");
        assert_ne!(x, a1.rng().next_u64(), "different tids draw differently");
    }

    #[test]
    fn interleave_respects_probability_extremes() {
        let mut never = StressCtx::new(7, 0, 0.0);
        for _ in 0..1000 {
            never.interleave();
        }
        assert_eq!(never.yields(), 0);
        let mut always = StressCtx::new(7, 0, 1.0);
        for _ in 0..100 {
            always.interleave();
        }
        assert_eq!(always.yields(), 100);
    }

    #[test]
    fn stress_macro_compiles_and_runs() {
        crate::stress!(schedules = 2, threads = 2,
            setup = |seed| AtomicU64::new(seed),
            body = |_tid, ctx, state: &AtomicU64| {
                state.fetch_add(1, Ordering::Relaxed);
                ctx.interleave();
            },
            check = |state| {
                crate::prop_assert!(state.load(Ordering::Relaxed) > 0);
                Ok(())
            });
    }

    #[test]
    fn schedule_seeds_match_prop_case_derivation() {
        // Same splitmix derivation as forall!'s Config::case_seed, so
        // operators can reason about one seeding story.
        let cfg = StressConfig {
            schedules: 8,
            threads: 1,
            seed: 0xABCD,
            fixed_seed: false,
            yield_prob: 0.0,
        };
        let prop_cfg = crate::prop::Config {
            cases: 8,
            seed: 0xABCD,
            fixed_seed: false,
            max_shrink_steps: 0,
        };
        for i in 0..8 {
            assert_eq!(cfg.schedule_seed(i), prop_cfg.case_seed(i));
        }
    }
}
