//! A small JSON value type with a writer and a recursive-descent
//! parser — the in-tree replacement for `serde_json` under the
//! offline-dependency policy.
//!
//! Design points that matter for sketch snapshots:
//!
//! * Integers and floats are distinct variants. [`Json::Int`] holds an
//!   `i128` so every `u64` (hash seeds, register words) round-trips
//!   exactly; an `f64`-only number type would silently corrupt values
//!   above 2⁵³.
//! * Floats are written with `{:?}`, Rust's shortest round-trip
//!   formatting, so `f64` state (e.g. sampling probabilities, S-table
//!   entries) survives a write/parse cycle bit-exactly.
//! * The parser enforces a nesting-depth limit so malformed input
//!   cannot blow the stack.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps) — snapshot output is stable and diffable.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fractional part or exponent. `i128` covers the
    /// full `u64` and `i64` ranges exactly.
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from parsing or from typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with a message. Public so downstream [`Snapshot`]
    /// implementations can report validation failures.
    ///
    /// [`Snapshot`]: crate::snapshot::Snapshot
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // ---- constructors -------------------------------------------------

    /// An object from key/value pairs.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// An integer value.
    pub fn int(v: impl Into<i128>) -> Json {
        Json::Int(v.into())
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    // ---- typed accessors ----------------------------------------------

    /// The field `key` of an object.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field `{key}`"))),
            other => Err(JsonError::new(format!(
                "expected object with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }

    /// This value as `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Int(v) => u64::try_from(*v)
                .map_err(|_| JsonError::new(format!("integer {v} out of u64 range"))),
            other => Err(JsonError::new(format!("expected integer, got {}", other.kind()))),
        }
    }

    /// This value as `i64`.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(v) => i64::try_from(*v)
                .map_err(|_| JsonError::new(format!("integer {v} out of i64 range"))),
            other => Err(JsonError::new(format!("expected integer, got {}", other.kind()))),
        }
    }

    /// This value as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_u64()?).map_err(|_| JsonError::new("integer out of usize range"))
    }

    /// This value as `u32`.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        u32::try_from(self.as_u64()?).map_err(|_| JsonError::new("integer out of u32 range"))
    }

    /// This value as `u8`.
    pub fn as_u8(&self) -> Result<u8, JsonError> {
        u8::try_from(self.as_u64()?).map_err(|_| JsonError::new("integer out of u8 range"))
    }

    /// This value as `f64`. Integers widen losslessly when they fit.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Float(v) => Ok(*v),
            Json::Int(v) => Ok(*v as f64),
            other => Err(JsonError::new(format!("expected number, got {}", other.kind()))),
        }
    }

    /// This value as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(v) => Ok(*v),
            other => Err(JsonError::new(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// This value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(v) => Ok(v),
            other => Err(JsonError::new(format!("expected string, got {}", other.kind()))),
        }
    }

    /// This value as a slice of array elements.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(JsonError::new(format!("expected array, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    // ---- writing ------------------------------------------------------

    /// Serialize to a compact JSON string.
    pub fn to_string(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // {:?} is Rust's shortest-round-trip float format.
                    // It may print "1.0"-style trailing zeros, which is
                    // valid JSON either way.
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Inf; snapshots never contain them,
                    // but degrade to null rather than emit invalid text.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // ---- parsing ------------------------------------------------------

    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                        .ok_or_else(|| JsonError::new("invalid surrogate pair"))?
                                } else {
                                    return Err(JsonError::new("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 advanced pos past the digits; undo
                            // the +1 the loop footer will apply.
                            self.pos -= 1;
                        }
                        _ => return Err(JsonError::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str so the
                    // bytes are valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| JsonError::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("reparse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(0.5),
            Json::Float(-1234.5678),
            Json::Str("hello".into()),
            Json::Str("esc \"q\" \\ \n \t \u{1}".into()),
            Json::Str("unicode: λ → 🦀".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // 2^53 + 1 is the first integer f64 cannot represent; Int(i128)
        // must carry it and the full u64 range without loss.
        for seed in [(1u64 << 53) + 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let v = Json::Int(seed as i128);
            assert_eq!(roundtrip(&v).as_u64().unwrap(), seed);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-17, 1.0] {
            let v = Json::Float(x);
            match roundtrip(&v) {
                Json::Float(y) => assert_eq!(x.to_bits(), y.to_bits(), "x={x}"),
                // "1.0" reparses as a float thanks to the dot — Int
                // would indicate a writer bug.
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("smb".into())),
            (
                "regs".into(),
                Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("p".into(), Json::Float(0.25))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v,
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Float(2.5),
                    Json::Str("xA\n".into())
                ])
            )])
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v, Json::Str("🦀".into()));
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "--5",
        ] {
            assert!(Json::parse(bad).is_err(), "input {bad:?} must fail");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn field_access_helpers() {
        let v = Json::parse("{\"m\":4096,\"p\":0.5,\"tag\":\"dense\",\"on\":true}").unwrap();
        assert_eq!(v.field("m").unwrap().as_u64().unwrap(), 4096);
        assert_eq!(v.field("m").unwrap().as_usize().unwrap(), 4096);
        assert_eq!(v.field("p").unwrap().as_f64().unwrap(), 0.5);
        assert_eq!(v.field("tag").unwrap().as_str().unwrap(), "dense");
        assert!(v.field("on").unwrap().as_bool().unwrap());
        assert!(v.field("missing").is_err());
        assert!(v.field("m").unwrap().as_str().is_err());
        assert!(Json::Int(-1).as_u64().is_err());
        assert!(Json::Int(300).as_u8().is_err());
    }

    #[test]
    fn int_widens_to_f64_for_as_f64() {
        assert_eq!(Json::Int(7).as_f64().unwrap(), 7.0);
    }
}
