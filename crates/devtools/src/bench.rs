//! Micro-benchmark harness — the in-tree replacement for `criterion`
//! under the offline-dependency policy.
//!
//! The model is deliberately simple and fits the repo's tables-driven
//! experiments (DESIGN.md §4, EXPERIMENTS.md):
//!
//! 1. **warmup** — run the closure until the warmup budget elapses
//!    (caches hot, frequency scaled up);
//! 2. **calibrate** — pick an iteration count per sample so each
//!    sample runs long enough for `Instant` granularity not to matter;
//! 3. **measure** — collect N samples, each the mean ns/iter over its
//!    batch, and report min / median / p95 / mean.
//!
//! Results print as an aligned table and, when `SMB_BENCH_JSON=<path>`
//! is set, are also written as a JSON document through the in-tree
//! [`crate::json::Json`] layer so downstream tooling can diff
//! runs.
//!
//! **Smoke mode** (`--smoke` argument or `SMB_BENCH_SMOKE=1`) shrinks
//! warmup and sample counts to make the whole suite finish in seconds
//! — it validates that every bench path executes, not the numbers.
//!
//! ```no_run
//! use smb_devtools::bench::Bench;
//! use std::hint::black_box;
//!
//! let mut b = Bench::new("recording");
//! b.bench("smb/m=4096", || {
//!     black_box(2u64.pow(12));
//! });
//! b.finish();
//! ```

use std::time::{Duration, Instant};

use crate::json::Json;

pub use std::hint::black_box;

/// Tunables for a bench run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Warmup budget per benchmark.
    pub warmup: Duration,
    /// Number of timed samples.
    pub samples: u32,
    /// Minimum wall time per sample (drives batch calibration).
    pub min_sample: Duration,
}

impl BenchConfig {
    /// Full-fidelity measurement settings.
    pub fn full() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(300),
            samples: 30,
            min_sample: Duration::from_millis(5),
        }
    }

    /// Smoke settings: exercise every path in seconds.
    pub fn smoke() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(5),
            samples: 3,
            min_sample: Duration::from_micros(200),
        }
    }

    /// Pick full or smoke from the process arguments / environment:
    /// `--smoke` or `SMB_BENCH_SMOKE=1` selects smoke mode.
    pub fn from_env() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("SMB_BENCH_SMOKE").map_or(false, |v| v != "0" && !v.is_empty());
        if smoke {
            BenchConfig::smoke()
        } else {
            BenchConfig::full()
        }
    }
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label, e.g. `"table4_recording/smb/m=4096"`.
    pub label: String,
    /// Total closure invocations across all samples.
    pub iters: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
}

impl BenchResult {
    /// This result as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("iters".into(), Json::Int(self.iters as i128)),
            ("min_ns".into(), Json::Float(self.min_ns)),
            ("median_ns".into(), Json::Float(self.median_ns)),
            ("p95_ns".into(), Json::Float(self.p95_ns)),
            ("mean_ns".into(), Json::Float(self.mean_ns)),
        ])
    }
}

/// A benchmark suite: register closures with [`bench`](Bench::bench),
/// then call [`finish`](Bench::finish).
pub struct Bench {
    suite: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
    extra: Vec<(String, Json)>,
}

impl Bench {
    /// A suite with config from `--smoke` / `SMB_BENCH_SMOKE`.
    pub fn new(suite: impl Into<String>) -> Self {
        Bench::with_config(suite, BenchConfig::from_env())
    }

    /// A suite with explicit config.
    pub fn with_config(suite: impl Into<String>, config: BenchConfig) -> Self {
        let suite = suite.into();
        eprintln!("bench suite `{suite}` ({} samples/bench)", config.samples);
        Bench {
            suite,
            config,
            results: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Whether the suite is in smoke mode (callers shrink workloads).
    pub fn is_smoke(&self) -> bool {
        self.config.samples <= BenchConfig::smoke().samples
    }

    /// Time `f`, printing and recording its stats. Wrap inputs and
    /// outputs in [`black_box`] inside the closure to defeat
    /// dead-code elimination.
    pub fn bench<F: FnMut()>(&mut self, label: impl Into<String>, f: F) {
        let cfg = self.config;
        self.bench_with(label, cfg, f);
    }

    /// Like [`Bench::bench`], but with at least `floor` samples even
    /// in smoke mode. Benches whose results gate a min-vs-min ratio in
    /// CI use this: 3 smoke samples cannot separate a real regression
    /// from one scheduler hiccup, so ratio-gated labels insist on
    /// enough samples for the minimum to be a stable statistic.
    pub fn bench_min_samples<F: FnMut()>(
        &mut self,
        label: impl Into<String>,
        floor: u32,
        f: F,
    ) {
        let mut cfg = self.config;
        cfg.samples = cfg.samples.max(floor);
        self.bench_with(label, cfg, f);
    }

    /// Shared warmup → calibrate → measure loop behind both entry
    /// points; `cfg` may differ from the suite config per label.
    fn bench_with<F: FnMut()>(&mut self, label: impl Into<String>, cfg: BenchConfig, mut f: F) {
        let label = label.into();

        // Warmup.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < cfg.warmup || warm_iters == 0 {
            f();
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }

        // Calibrate batch size from the observed warmup rate.
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((cfg.min_sample.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        // Measure.
        let mut samples = Vec::with_capacity(cfg.samples as usize);
        let mut total_iters = 0u64;
        for _ in 0..cfg.samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            samples.push(ns);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let result = BenchResult {
            label: label.clone(),
            iters: total_iters,
            min_ns: samples[0],
            median_ns: percentile(&samples, 50.0),
            p95_ns: percentile(&samples, 95.0),
            mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        };
        eprintln!(
            "  {label:<48} median {:>12}  p95 {:>12}  (x{total_iters})",
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
        );
        self.results.push(result);
    }

    /// The collected results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Attach a suite-level datum (e.g. a derived overhead percentage)
    /// to the JSON document, under the top-level `extra` object.
    /// Re-using a key overwrites the earlier value.
    pub fn extra(&mut self, key: impl Into<String>, value: Json) {
        let key = key.into();
        if let Some(slot) = self.extra.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.extra.push((key, value));
        }
    }

    /// The whole suite as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = vec![
            ("suite".into(), Json::Str(self.suite.clone())),
            (
                "results".into(),
                Json::Arr(self.results.iter().map(BenchResult::to_json).collect()),
            ),
        ];
        if !self.extra.is_empty() {
            doc.push(("extra".into(), Json::Obj(self.extra.clone())));
        }
        Json::Obj(doc)
    }

    /// Print the summary table; when `SMB_BENCH_JSON=<path>` is set,
    /// also write the suite as JSON to that path (a directory path
    /// gets `<suite>.json` appended).
    pub fn finish(self) {
        println!("{}", render_results(&self.suite, &self.results));
        if let Ok(dest) = std::env::var("SMB_BENCH_JSON") {
            let path = if std::path::Path::new(&dest).is_dir() {
                format!("{dest}/{}.json", self.suite)
            } else {
                dest
            };
            match std::fs::write(&path, self.to_json().to_string()) {
                Ok(()) => eprintln!("bench json written to {path}"),
                Err(e) => eprintln!("bench json write to {path} failed: {e}"),
            }
        }
    }
}

/// Render a suite's results as an aligned text table.
pub fn render_results(suite: &str, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {suite} ==\n"));
    let wide = results
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(8)
        .max(8);
    out.push_str(&format!(
        "{:<wide$}  {:>12}  {:>12}  {:>12}  {:>12}\n",
        "bench", "min", "median", "p95", "mean"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<wide$}  {:>12}  {:>12}  {:>12}  {:>12}\n",
            r.label,
            fmt_ns(r.min_ns),
            fmt_ns(r.median_ns),
            fmt_ns(r.p95_ns),
            fmt_ns(r.mean_ns),
        ));
    }
    out
}

/// Linear-interpolated percentile over sorted samples.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Human-readable nanoseconds: `843ns`, `1.24µs`, `3.50ms`, `1.20s`.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_measures_and_orders_stats() {
        let mut b = Bench::with_config("unit", BenchConfig::smoke());
        let mut acc = 0u64;
        b.bench("wrapping_mul", || {
            acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(1));
        });
        let r = &b.results()[0];
        assert!(r.iters > 0);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns + 1e-9);
        assert_eq!(r.label, "wrapping_mul");
    }

    #[test]
    fn json_output_has_all_fields() {
        let mut b = Bench::with_config("unit", BenchConfig::smoke());
        b.bench("noop", || {
            black_box(1 + 1);
        });
        let doc = b.to_json();
        assert_eq!(doc.field("suite").unwrap().as_str().unwrap(), "unit");
        let results = doc.field("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        for key in ["label", "iters", "min_ns", "median_ns", "p95_ns", "mean_ns"] {
            assert!(results[0].field(key).is_ok(), "missing {key}");
        }
        // The document must reparse through the in-tree layer.
        assert!(Json::parse(&doc.to_string()).is_ok());
        // No extras registered: the key is absent entirely.
        assert!(doc.field("extra").is_err());
    }

    #[test]
    fn extras_land_in_json_and_overwrite_by_key() {
        let mut b = Bench::with_config("unit", BenchConfig::smoke());
        b.extra("telemetry_overhead_pct", Json::Float(12.5));
        b.extra("telemetry_overhead_pct", Json::Float(3.25));
        b.extra("note", Json::str("observed vs bare"));
        let doc = b.to_json();
        let extra = doc.field("extra").unwrap();
        assert_eq!(extra.field("telemetry_overhead_pct").unwrap().as_f64().unwrap(), 3.25);
        assert_eq!(extra.field("note").unwrap().as_str().unwrap(), "observed vs bare");
        assert!(Json::parse(&doc.to_string()).is_ok());
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 50.0), 2.5);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(850.0), "850ns");
        assert_eq!(fmt_ns(1_240.0), "1.24µs");
        assert_eq!(fmt_ns(3_500_000.0), "3.50ms");
        assert_eq!(fmt_ns(1_200_000_000.0), "1.20s");
    }

    #[test]
    fn render_results_includes_every_label() {
        let results = vec![
            BenchResult {
                label: "a".into(),
                iters: 10,
                min_ns: 1.0,
                median_ns: 2.0,
                p95_ns: 3.0,
                mean_ns: 2.0,
            },
            BenchResult {
                label: "b/longer-label".into(),
                iters: 10,
                min_ns: 1.0,
                median_ns: 2.0,
                p95_ns: 3.0,
                mean_ns: 2.0,
            },
        ];
        let table = render_results("suite", &results);
        assert!(table.contains("a"));
        assert!(table.contains("b/longer-label"));
        assert!(table.contains("median"));
    }
}
