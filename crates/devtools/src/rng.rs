//! Seedable PRNGs for workloads and tests.
//!
//! The workspace's offline-dependency policy (DESIGN.md §5) rules out
//! the `rand` crate, so this module provides the two generators the
//! repo actually needs:
//!
//! * [`smb_hash::SplitMix64`] — re-exported and given the [`Rng`]
//!   trait; the right choice for seed derivation and cheap synthetic
//!   item generation (one add + one mix per output).
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna 2019), the
//!   general-purpose generator behind the workload samplers. 256 bits
//!   of state, period 2²⁵⁶−1, passes BigCrush; seeded from a single
//!   `u64` through SplitMix64 exactly as Vigna recommends.
//!
//! [`Rng`] is deliberately small: `next_u64` plus derived draws
//! (floats, bounded integers, Bernoulli, exponential). Distribution
//! machinery that is experiment-specific (Zipf, truncated Pareto,
//! alias tables) stays in `smb-stream::dist`, generic over this trait.

pub use smb_hash::SplitMix64;

/// A source of 64-bit uniform randomness plus the derived draws the
/// workspace uses. Object-safe: samplers take `&mut dyn Rng` or stay
/// generic over `R: Rng + ?Sized`.
pub trait Rng {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` by widening multiply (Lemire
    /// reduction). The residual bias is `O(bound/2⁶⁴)` — immaterial for
    /// workload generation, which is all this trait serves.
    #[inline]
    fn gen_below_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `range` (half-open).
    #[inline]
    fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty range");
        range.start + self.gen_below_u64(range.end - range.start)
    }

    /// Uniform `usize` in `range` (half-open).
    #[inline]
    fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponential draw with rate `lambda` (mean `1/λ`) by inversion.
    /// Used for inter-arrival gaps in synthetic traces.
    #[inline]
    fn gen_exp(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0, "rate must be positive");
        // 1 − U ∈ (0, 1] keeps ln finite.
        -(1.0 - self.gen_f64()).ln() / lambda
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna), the workspace's general-purpose
/// generator.
///
/// ```
/// use smb_devtools::rng::{Rng, Xoshiro256pp};
/// let mut a = Xoshiro256pp::seed_from_u64(7);
/// let mut b = Xoshiro256pp::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the 256-bit state from one `u64` via SplitMix64 (the
    /// reference seeding procedure — avoids the all-zero state and
    /// decorrelates nearby seeds).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                SplitMix64::next_u64(&mut sm),
                SplitMix64::next_u64(&mut sm),
                SplitMix64::next_u64(&mut sm),
                SplitMix64::next_u64(&mut sm),
            ],
        }
    }

    /// Construct from a full 256-bit state. Must not be all zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256pp { s }
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vectors() {
        // Reference sequence from the canonical C implementation
        // (xoshiro256plusplus.c) with state {1, 2, 3, 4}.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn f64_in_unit_interval_with_uniform_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_draws_cover_and_stay_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range_usize(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&b| b), "1000 draws must cover 10 values");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn gen_exp_has_right_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let n = 200_000;
        let mean = (0..n).map(|_| rng.gen_exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for len in [1usize, 7, 8, 9, 16, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // All-zero output of a uniform draw is astronomically
            // unlikely for len >= 4; shorter slices may collide.
            if len >= 4 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn splitmix_implements_rng() {
        let mut rng = SplitMix64::new(0);
        // Same first output as the reference sequence (see smb-hash).
        assert_eq!(Rng::next_u64(&mut rng), 0xE220_A839_7B1D_CDAF);
        let v = rng.gen_range_u64(10..20);
        assert!((10..20).contains(&v));
    }

    #[test]
    fn dyn_rng_is_object_safe() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x = dyn_rng.gen_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
