//! `smbcount` — command-line cardinality estimation.
//!
//! ```text
//! smbcount count [--algo smb|mrb|hllpp|...] [--memory-bits 5000] [--exact]
//!     read items from stdin, one per line; print the estimate
//! smbcount flows [--memory-bits 2048] [--threshold N] [--top K]
//!     read "flow<TAB>item" lines; print per-flow estimates
//! smbcount serve [--algo A] [--shards N] [--producers P] [--batch B] [--queue Q]
//!                [--policy block|drop] [--trace-sample N]
//!                [--expected-flows F] [--memory-bits M] [--threshold N] [--top K]
//!                [--metrics json|prom] [--metrics-out PATH] [--metrics-interval SECS]
//!                [--checkpoint-dir DIR] [--checkpoint-interval SECS]
//!                [--checkpoint-format v1|v2] [--listen ADDR]
//!     sharded parallel flows mode: per-flow estimates + engine stats
//!     (+ metrics snapshot in JSON or Prometheus text exposition,
//!      + pipeline-stage tracing of every Nth batch,
//!      + durable checkpoints and a final epoch on shutdown,
//!      + --listen: serve the PROTOCOL.md wire protocol over TCP
//!        instead of reading stdin, until a client sends SHUTDOWN)
//! smbcount client <record|query|top-k|snapshot|subscribe|ping|shutdown>
//!                 [--connect ADDR] [--batch N] [--flow NAME] [--top K] [--max N]
//!     talk to a `serve --listen` server: ship stdin records, query a
//!     flow, print top-k, pull a compressed snapshot, or tail morphs
//! smbcount restore --dir DIR [--top K] [--threshold N]
//!     recover the newest consistent checkpoint epoch; print what was
//!     restored and the recovered per-flow estimates
//! smbcount morphlog [--memory-bits M] [--n-max N] [--last N]
//!     stream SMB morph events over stdin lines as JSON lines
//!     (--last N: dump only the last N events from a flight-recorder
//!      ring at end-of-input instead of streaming)
//! smbcount doctor [--memory-bits M] [--shards N] [--batch B] [--top K]
//!                 [--checkpoint-dir DIR]
//!     ingest "flow<TAB>item" lines and emit one diagnostic JSON
//!     snapshot: tier census, queue depths, producer counters, morph
//!     cadence, flight-recorder window, stage timings, checkpoint
//! smbcount trace [--flows N] [--seed S]
//!     emit a synthetic CAIDA-like trace as "flow<TAB>item" lines
//! ```

use std::io::{BufRead, BufWriter, Write};

use smb_cli::{
    parse_args, run_client, run_count, run_doctor, run_flows, run_morphlog, run_restore,
    run_serve, run_trace, Command,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: smbcount <count|flows|serve|restore|morphlog|doctor|trace> [options]   (see --help)"
            );
            std::process::exit(2);
        }
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let result = match command {
        Command::Help => {
            let _ = writeln!(
                out,
                "smbcount — streaming distinct-count estimation (self-morphing bitmaps)\n\n\
                 subcommands:\n\
                 \x20 count  [--algo A] [--memory-bits M] [--exact]   estimate |distinct(stdin lines)|\n\
                 \x20 flows  [--memory-bits M] [--threshold N] [--top K]   per-flow estimates of 'flow<TAB>item' lines\n\
                 \x20 serve  [--algo A] [--shards N] [--producers P] [--batch B] [--queue Q] [--policy block|drop]\n\
                 \x20        [--expected-flows F] [--memory-bits M] [--threshold N] [--top K]   sharded parallel flows mode + engine stats\n\
                 \x20        [--trace-sample N]   record pipeline-stage spans for every Nth batch (0 = off)\n\
                 \x20        [--metrics json|prom] [--metrics-out PATH] [--metrics-interval SECS]   metrics export\n\
                 \x20        [--checkpoint-dir DIR] [--checkpoint-interval SECS] [--checkpoint-format v1|v2]   durable checkpoints + final epoch\n\
                 \x20        [--listen ADDR]   serve the wire protocol over TCP instead of reading stdin (see PROTOCOL.md)\n\
                 \x20 client  <record|query|top-k|snapshot|subscribe|ping|shutdown> [--connect ADDR] [--batch N] [--flow NAME] [--top K] [--max N]\n\
                 \x20        talk to a `serve --listen` server\n\
                 \x20 restore  --dir DIR [--top K] [--threshold N]   recover the newest consistent checkpoint\n\
                 \x20 morphlog  [--memory-bits M] [--n-max N] [--last N]   stream SMB morph events as JSON lines (--last N: only the final flight-recorder window)\n\
                 \x20 doctor  [--memory-bits M] [--shards N] [--batch B] [--top K] [--checkpoint-dir DIR]   one diagnostic JSON snapshot of 'flow<TAB>item' input\n\
                 \x20 trace  [--flows N] [--seed S]   generate a synthetic trace\n\n\
                 algorithms: smb mrb fm hll hllpp tailcut loglog superloglog kmv mincount bjkst bitmap"
            );
            Ok(())
        }
        Command::Count(cfg) => run_count(cfg, &mut stdin.lock().lines().map_while(|l| l.ok()), &mut out),
        Command::Flows(cfg) => run_flows(cfg, &mut stdin.lock().lines().map_while(|l| l.ok()), &mut out),
        Command::Serve(cfg) => run_serve(cfg, &mut stdin.lock().lines().map_while(|l| l.ok()), &mut out),
        Command::Client(cfg) => {
            run_client(cfg, &mut stdin.lock().lines().map_while(|l| l.ok()), &mut out)
        }
        Command::Restore(cfg) => run_restore(cfg, &mut out),
        Command::Morphlog(cfg) => {
            run_morphlog(cfg, &mut stdin.lock().lines().map_while(|l| l.ok()), &mut out)
        }
        Command::Doctor(cfg) => {
            run_doctor(cfg, &mut stdin.lock().lines().map_while(|l| l.ok()), &mut out)
        }
        Command::Trace(cfg) => run_trace(cfg, &mut out),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    let _ = out.flush();
}
