//! Library backing the `smbcount` binary — argument parsing and the
//! subcommand implementations, factored out so they are unit-testable
//! without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;

use smb_core::{CardinalityEstimator, Smb};
use smb_hash::HashScheme;
use smb_sketch::FlowTable;
use smb_stream::{ExactCounter, TraceConfig};

/// Which estimator a `count` run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Self-morphing bitmap (default).
    Smb,
    /// Multi-resolution bitmap.
    Mrb,
    /// FM / PCSA.
    Fm,
    /// HyperLogLog.
    Hll,
    /// HyperLogLog++.
    Hllpp,
    /// HLL-TailCut.
    Tailcut,
    /// LogLog.
    LogLog,
    /// SuperLogLog.
    SuperLogLog,
    /// k-minimum values.
    Kmv,
    /// MinCount.
    MinCount,
    /// BJKST.
    Bjkst,
    /// Plain bitmap.
    Bitmap,
}

impl AlgoChoice {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "smb" => AlgoChoice::Smb,
            "mrb" => AlgoChoice::Mrb,
            "fm" => AlgoChoice::Fm,
            "hll" => AlgoChoice::Hll,
            "hllpp" | "hll++" => AlgoChoice::Hllpp,
            "tailcut" | "hll-tailcut" => AlgoChoice::Tailcut,
            "loglog" => AlgoChoice::LogLog,
            "superloglog" | "sll" => AlgoChoice::SuperLogLog,
            "kmv" => AlgoChoice::Kmv,
            "mincount" => AlgoChoice::MinCount,
            "bjkst" => AlgoChoice::Bjkst,
            "bitmap" => AlgoChoice::Bitmap,
            other => return Err(format!("unknown algorithm `{other}`")),
        })
    }

    /// Build the chosen estimator at `m` bits.
    pub fn build(self, m: usize, seed: u64) -> Result<Box<dyn CardinalityEstimator>, String> {
        let scheme = HashScheme::with_seed(seed);
        let err = |e: smb_core::Error| e.to_string();
        Ok(match self {
            AlgoChoice::Smb => {
                let t = smb_theory::optimal_threshold(m, 1e7).t;
                Box::new(Smb::with_scheme(m, t, scheme).map_err(err)?)
            }
            AlgoChoice::Mrb => {
                Box::new(smb_baselines::Mrb::for_expected_cardinality(m, 1e7, scheme).map_err(err)?)
            }
            AlgoChoice::Fm => {
                Box::new(smb_baselines::Fm::with_memory_bits_scheme(m, scheme).map_err(err)?)
            }
            AlgoChoice::Hll => {
                Box::new(smb_baselines::Hll::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::Hllpp => {
                Box::new(smb_baselines::HllPlusPlus::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::Tailcut => {
                Box::new(smb_baselines::HllTailCut::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::LogLog => {
                Box::new(smb_baselines::LogLog::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::SuperLogLog => {
                Box::new(smb_baselines::SuperLogLog::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::Kmv => {
                Box::new(smb_baselines::Kmv::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::MinCount => {
                Box::new(smb_baselines::MinCount::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::Bjkst => {
                Box::new(smb_baselines::Bjkst::with_memory_bits(m, scheme).map_err(err)?)
            }
            AlgoChoice::Bitmap => {
                Box::new(smb_core::Bitmap::with_scheme(m, scheme).map_err(err)?)
            }
        })
    }
}

/// `count` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct CountConfig {
    /// Estimator choice.
    pub algo: AlgoChoice,
    /// Memory budget in bits.
    pub memory_bits: usize,
    /// Also track the exact count and report the error.
    pub exact: bool,
}

/// `flows` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlowsConfig {
    /// Per-flow memory budget in bits.
    pub memory_bits: usize,
    /// Only report flows with estimates at least this large.
    pub threshold: f64,
    /// Report at most this many flows (largest first).
    pub top: usize,
}

/// `trace` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceCliConfig {
    /// Number of flows.
    pub flows: usize,
    /// Generator seed.
    pub seed: u64,
}

/// A parsed command line.
#[derive(Debug, Clone, Copy)]
pub enum Command {
    /// Print usage.
    Help,
    /// Estimate the distinct count of stdin lines.
    Count(CountConfig),
    /// Per-flow estimates of `flow<TAB>item` lines.
    Flows(FlowsConfig),
    /// Generate a synthetic trace.
    Trace(TraceCliConfig),
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Parse the argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "count" => {
            let mut cfg = CountConfig {
                algo: AlgoChoice::Smb,
                memory_bits: 8192,
                exact: false,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--algo" => cfg.algo = AlgoChoice::parse(take_value(args, &mut i, "--algo")?)?,
                    "--memory-bits" => {
                        cfg.memory_bits = take_value(args, &mut i, "--memory-bits")?
                            .parse()
                            .map_err(|e| format!("--memory-bits: {e}"))?
                    }
                    "--exact" => cfg.exact = true,
                    other => return Err(format!("unknown option `{other}` for count")),
                }
                i += 1;
            }
            Ok(Command::Count(cfg))
        }
        "flows" => {
            let mut cfg = FlowsConfig {
                memory_bits: 2048,
                threshold: 0.0,
                top: 20,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--memory-bits" => {
                        cfg.memory_bits = take_value(args, &mut i, "--memory-bits")?
                            .parse()
                            .map_err(|e| format!("--memory-bits: {e}"))?
                    }
                    "--threshold" => {
                        cfg.threshold = take_value(args, &mut i, "--threshold")?
                            .parse()
                            .map_err(|e| format!("--threshold: {e}"))?
                    }
                    "--top" => {
                        cfg.top = take_value(args, &mut i, "--top")?
                            .parse()
                            .map_err(|e| format!("--top: {e}"))?
                    }
                    other => return Err(format!("unknown option `{other}` for flows")),
                }
                i += 1;
            }
            Ok(Command::Flows(cfg))
        }
        "trace" => {
            let mut cfg = TraceCliConfig {
                flows: 1000,
                seed: 1,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--flows" => {
                        cfg.flows = take_value(args, &mut i, "--flows")?
                            .parse()
                            .map_err(|e| format!("--flows: {e}"))?
                    }
                    "--seed" => {
                        cfg.seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    other => return Err(format!("unknown option `{other}` for trace")),
                }
                i += 1;
            }
            Ok(Command::Trace(cfg))
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Run `count` over an iterator of lines.
pub fn run_count(
    cfg: CountConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let mut est = cfg.algo.build(cfg.memory_bits, 0)?;
    let mut exact = cfg.exact.then(ExactCounter::new);
    let mut total_lines = 0u64;
    for line in lines {
        est.record(line.as_bytes());
        if let Some(e) = exact.as_mut() {
            e.record(line.as_bytes());
        }
        total_lines += 1;
    }
    let estimate = est.estimate();
    writeln!(out, "items        : {total_lines}").map_err(|e| e.to_string())?;
    writeln!(out, "estimate     : {estimate:.0}  ({})", est.name()).map_err(|e| e.to_string())?;
    writeln!(out, "memory (bits): {}", est.memory_bits()).map_err(|e| e.to_string())?;
    if let Some(e) = exact {
        let truth = e.count() as f64;
        let err = if truth > 0.0 {
            (estimate - truth).abs() / truth * 100.0
        } else {
            0.0
        };
        writeln!(out, "exact        : {}  (error {err:.2}%)", e.count())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Run `flows` over `flow<TAB>item` lines (whitespace also accepted).
pub fn run_flows(
    cfg: FlowsConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let m = cfg.memory_bits;
    let t = smb_theory::optimal_threshold(m, 1e6).t;
    let mut table = FlowTable::new(move |flow| {
        Smb::with_scheme(m, t, HashScheme::with_seed(flow)).expect("validated above")
    });
    // Validate the parameters once up front so the closure can't panic
    // mid-stream.
    Smb::new(m, t).map_err(|e| e.to_string())?;

    let mut skipped = 0u64;
    for line in lines {
        let mut parts = line.splitn(2, ['\t', ' ']);
        match (parts.next(), parts.next()) {
            (Some(flow), Some(item)) if !flow.is_empty() && !item.is_empty() => {
                let key = smb_hash::fnv::fnv1a64(flow.as_bytes());
                table.record(key, item.as_bytes());
            }
            _ => skipped += 1,
        }
    }
    let mut report = table.flows_over(cfg.threshold);
    report.truncate(cfg.top);
    writeln!(out, "flows tracked: {}  (skipped {} malformed lines)", table.len(), skipped)
        .map_err(|e| e.to_string())?;
    for (flow, estimate) in report {
        writeln!(out, "{flow:016x}\t{estimate:.0}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Run `trace`: emit `flow<TAB>item` lines of a synthetic trace.
pub fn run_trace(cfg: TraceCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let trace = TraceConfig {
        flows: cfg.flows.max(1),
        seed: cfg.seed,
        ..TraceConfig::default()
    }
    .build();
    for p in trace.packets() {
        writeln!(out, "{}\t{}", p.flow, p.item).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        assert!(matches!(parse_args(&[]), Ok(Command::Help)));
        assert!(matches!(parse_args(&s(&["help"])), Ok(Command::Help)));
        let Ok(Command::Count(c)) =
            parse_args(&s(&["count", "--algo", "hllpp", "--memory-bits", "4096", "--exact"]))
        else {
            panic!("expected count")
        };
        assert_eq!(c.algo, AlgoChoice::Hllpp);
        assert_eq!(c.memory_bits, 4096);
        assert!(c.exact);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_args(&s(&["count", "--algo", "nope"])).is_err());
        assert!(parse_args(&s(&["count", "--memory-bits"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["flows", "--wat"])).is_err());
    }

    #[test]
    fn count_estimates_distinct_lines() {
        let cfg = CountConfig {
            algo: AlgoChoice::Smb,
            memory_bits: 8192,
            exact: true,
        };
        let mut lines = (0..10_000u32)
            .chain(0..10_000) // full duplicate pass
            .map(|i| format!("user-{i}"));
        let mut out = Vec::new();
        run_count(cfg, &mut lines, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("items        : 20000"), "{text}");
        assert!(text.contains("exact        : 10000"), "{text}");
        // Estimate within 15%.
        let est: f64 = text
            .lines()
            .find(|l| l.starts_with("estimate"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|v| v.parse().ok())
            .expect("estimate line");
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.15, "{est}");
    }

    #[test]
    fn count_works_for_every_algo() {
        for algo in [
            "smb", "mrb", "fm", "hll", "hllpp", "tailcut", "loglog", "superloglog", "kmv",
            "mincount", "bjkst", "bitmap",
        ] {
            let cfg = CountConfig {
                algo: AlgoChoice::parse(algo).unwrap(),
                memory_bits: 8192,
                exact: false,
            };
            let mut lines = (0..5000u32).map(|i| format!("item-{i}"));
            let mut out = Vec::new();
            run_count(cfg, &mut lines, &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            let est: f64 = text
                .lines()
                .find(|l| l.starts_with("estimate"))
                .and_then(|l| l.split_whitespace().nth(2))
                .and_then(|v| v.parse().ok())
                .expect("estimate line");
            assert!(
                (est - 5000.0).abs() / 5000.0 < 0.4,
                "{algo}: estimate {est}"
            );
        }
    }

    #[test]
    fn flows_ranks_heavy_flow_first() {
        let cfg = FlowsConfig {
            memory_bits: 2048,
            threshold: 100.0,
            top: 5,
        };
        let mut lines = Vec::new();
        for i in 0..3000u32 {
            lines.push(format!("heavy\t{i}"));
        }
        for i in 0..50u32 {
            lines.push(format!("light\t{i}"));
        }
        let mut out = Vec::new();
        run_flows(cfg, &mut lines.into_iter(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("flows tracked: 2"), "{text}");
        // Only the heavy flow clears the threshold.
        assert_eq!(text.lines().count(), 2, "{text}");
    }

    #[test]
    fn flows_skips_malformed_lines() {
        let cfg = FlowsConfig {
            memory_bits: 2048,
            threshold: 0.0,
            top: 10,
        };
        let mut lines = vec!["good\titem".to_string(), "bad-line".to_string(), "".to_string()]
            .into_iter();
        let mut out = Vec::new();
        run_flows(cfg, &mut lines, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("skipped 2"), "{text}");
    }

    #[test]
    fn trace_emits_parsable_lines() {
        let cfg = TraceCliConfig { flows: 50, seed: 3 };
        let mut out = Vec::new();
        run_trace(cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().count() > 50);
        for line in text.lines().take(100) {
            let mut parts = line.split('\t');
            parts.next().unwrap().parse::<u32>().unwrap();
            parts.next().unwrap().parse::<u32>().unwrap();
        }
    }

    #[test]
    fn trace_then_flows_roundtrip() {
        // The CLI's own trace feeds its own flows command.
        let mut trace_out = Vec::new();
        run_trace(TraceCliConfig { flows: 200, seed: 9 }, &mut trace_out).unwrap();
        let text = String::from_utf8(trace_out).unwrap();
        let cfg = FlowsConfig {
            memory_bits: 2048,
            threshold: 0.0,
            top: 5,
        };
        let mut out = Vec::new();
        run_flows(cfg, &mut text.lines().map(|l| l.to_string()), &mut out).unwrap();
        let report = String::from_utf8(out).unwrap();
        assert!(report.contains("flows tracked: 200"), "{report}");
    }
}
