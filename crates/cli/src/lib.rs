//! Library backing the `smbcount` binary — argument parsing and the
//! subcommand implementations, factored out so they are unit-testable
//! without spawning processes.
//!
//! Estimator construction goes through [`smb_factory::AlgoSpec`] — the
//! CLI owns no per-algorithm `match` of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use smb_core::{CardinalityEstimator, MorphCollector, ObserverHandle, Smb};
use smb_engine::{
    BackpressurePolicy, CheckpointConfig, CheckpointFormat, EngineConfig, EngineQuery,
    ShardedFlowEngine,
};
use smb_net::{SmbClient, SmbServer};
use smb_factory::{Algo, AlgoSpec};
use smb_hash::HashScheme;
use smb_sketch::FlowTable;
use smb_stream::{ExactCounter, TraceConfig};
use smb_telemetry::{morph_event_to_json, ExportFormat, FlightRecorder, Reporter};

/// `count` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct CountConfig {
    /// Estimator choice.
    pub algo: Algo,
    /// Memory budget in bits.
    pub memory_bits: usize,
    /// Also track the exact count and report the error.
    pub exact: bool,
}

/// `flows` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlowsConfig {
    /// Per-flow memory budget in bits.
    pub memory_bits: usize,
    /// Only report flows with estimates at least this large.
    pub threshold: f64,
    /// Report at most this many flows (largest first).
    pub top: usize,
}

/// `serve` subcommand configuration — the parallel flows mode.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-flow estimator choice.
    pub algo: Algo,
    /// Per-flow memory budget in bits.
    pub memory_bits: usize,
    /// Worker shard count (0 = one per core).
    pub shards: usize,
    /// Ingest producer threads feeding the shard queues (1 = the
    /// classic single-producer loop; N > 1 fans parsed lines out
    /// round-robin to N `producer_handle` threads).
    pub producers: usize,
    /// Items per dispatch batch.
    pub batch: usize,
    /// Per-shard queue capacity in batches.
    pub queue_batches: usize,
    /// Full-queue behaviour.
    pub policy: BackpressurePolicy,
    /// Expected distinct-flow count; pre-sizes shard tables (0 = grow
    /// on demand).
    pub expected_flows: usize,
    /// Record pipeline-stage spans for one in every this many batches
    /// into the `engine_stage_duration_ns` histograms (0 = tracing
    /// off, 1 = every batch). Visible through `--metrics`.
    pub trace_sample: u32,
    /// Only report flows with estimates at least this large.
    pub threshold: f64,
    /// Report at most this many flows (largest first).
    pub top: usize,
    /// Emit an engine-metrics snapshot after the run in this format.
    pub metrics: Option<ExportFormat>,
    /// Write metrics to this file instead of the report stream.
    pub metrics_out: Option<PathBuf>,
    /// Also re-export metrics every this many seconds while ingesting
    /// (requires `metrics_out`; the file is rewritten in place).
    pub metrics_interval: Option<u64>,
    /// Write durable checkpoints of every flow estimator under this
    /// directory while serving (and a final one on shutdown).
    pub checkpoint_dir: Option<PathBuf>,
    /// Seconds between background checkpoints (requires
    /// `checkpoint_dir`).
    pub checkpoint_interval: u64,
    /// Shard encoding for checkpoints: compact binary flow blocks
    /// (the default) or the v1 JSON documents.
    pub checkpoint_format: CheckpointFormat,
    /// Instead of reading stdin, listen on this TCP address and serve
    /// the wire protocol (see `PROTOCOL.md`) until a client sends
    /// `SHUTDOWN`. Port `0` binds an ephemeral port; the bound
    /// address is printed as `listening on <addr>`.
    pub listen: Option<String>,
}

/// `restore` subcommand configuration.
#[derive(Debug, Clone)]
pub struct RestoreCliConfig {
    /// Checkpoint directory written by `serve --checkpoint-dir`.
    pub dir: PathBuf,
    /// Report at most this many flows (largest first).
    pub top: usize,
    /// Only report flows with estimates at least this large.
    pub threshold: f64,
}

/// `trace` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceCliConfig {
    /// Number of flows.
    pub flows: usize,
    /// Generator seed.
    pub seed: u64,
}

/// `morphlog` subcommand configuration.
#[derive(Debug, Clone, Copy)]
pub struct MorphlogConfig {
    /// SMB memory budget in bits.
    pub memory_bits: usize,
    /// Expected maximum cardinality (tunes the morph threshold `T`).
    pub n_max: f64,
    /// Instead of streaming every morph as it happens, retain only the
    /// last N lifecycle events in a flight-recorder ring and emit them
    /// at end-of-input (`--last N`).
    pub last: Option<usize>,
}

/// `client` subcommand configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:4742`.
    pub connect: String,
    /// What to ask the server.
    pub action: ClientAction,
}

/// What a `client` invocation does once connected.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Ship `flow<TAB>item` stdin lines as `RECORD_BATCH` frames of
    /// this many records each.
    Record {
        /// Records per `RECORD_BATCH` frame.
        batch: usize,
    },
    /// Estimate one flow's cardinality (the flow name is hashed the
    /// same way `serve` hashes stdin flow columns).
    Query {
        /// Flow name, as it appears in the trace's flow column.
        flow: String,
    },
    /// Print the `k` largest-estimate flows, `serve`-report format.
    TopK {
        /// How many flows to print.
        top: usize,
    },
    /// Pull the full compressed engine snapshot and summarize it.
    Snapshot,
    /// Stream morph lifecycle events as JSON lines.
    Subscribe {
        /// End the subscription after this many events.
        max: u64,
    },
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down and exit `serve`.
    Shutdown,
}

/// `doctor` subcommand configuration.
#[derive(Debug, Clone)]
pub struct DoctorConfig {
    /// Per-flow memory budget in bits.
    pub memory_bits: usize,
    /// Worker shard count (0 = one per core).
    pub shards: usize,
    /// Items per dispatch batch.
    pub batch: usize,
    /// Hot flows to include in the morph-cadence section.
    pub top: usize,
    /// Also write one checkpoint epoch under this directory and report
    /// it in the snapshot's `checkpoint` section.
    pub checkpoint_dir: Option<PathBuf>,
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub enum Command {
    /// Print usage.
    Help,
    /// Estimate the distinct count of stdin lines.
    Count(CountConfig),
    /// Per-flow estimates of `flow<TAB>item` lines.
    Flows(FlowsConfig),
    /// Sharded parallel per-flow estimation of `flow<TAB>item` lines.
    Serve(ServeConfig),
    /// Talk to a `serve --listen` server over the wire protocol.
    Client(ClientConfig),
    /// Recover a `serve` checkpoint directory and report its estimates.
    Restore(RestoreCliConfig),
    /// Generate a synthetic trace.
    Trace(TraceCliConfig),
    /// Stream SMB morph events over stdin lines as JSON lines.
    Morphlog(MorphlogConfig),
    /// Ingest `flow<TAB>item` lines and emit one diagnostic JSON
    /// snapshot (tier census, queue depths, morph cadence, flight
    /// recorder window, stage timings).
    Doctor(DoctorConfig),
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    take_value(args, i, flag)?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// Parse the argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "count" => {
            let mut cfg = CountConfig {
                algo: Algo::Smb,
                memory_bits: 8192,
                exact: false,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--algo" => cfg.algo = Algo::from_name(take_value(args, &mut i, "--algo")?)?,
                    "--memory-bits" => cfg.memory_bits = parse_num(args, &mut i, "--memory-bits")?,
                    "--exact" => cfg.exact = true,
                    other => return Err(format!("unknown option `{other}` for count")),
                }
                i += 1;
            }
            Ok(Command::Count(cfg))
        }
        "flows" => {
            let mut cfg = FlowsConfig {
                memory_bits: 2048,
                threshold: 0.0,
                top: 20,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--memory-bits" => cfg.memory_bits = parse_num(args, &mut i, "--memory-bits")?,
                    "--threshold" => cfg.threshold = parse_num(args, &mut i, "--threshold")?,
                    "--top" => cfg.top = parse_num(args, &mut i, "--top")?,
                    other => return Err(format!("unknown option `{other}` for flows")),
                }
                i += 1;
            }
            Ok(Command::Flows(cfg))
        }
        "serve" => {
            let mut cfg = ServeConfig {
                algo: Algo::Smb,
                memory_bits: 2048,
                shards: 0,
                producers: 1,
                batch: 256,
                queue_batches: 8,
                policy: BackpressurePolicy::Block,
                expected_flows: 0,
                trace_sample: 0,
                threshold: 0.0,
                top: 20,
                metrics: None,
                metrics_out: None,
                metrics_interval: None,
                checkpoint_dir: None,
                checkpoint_interval: 30,
                checkpoint_format: CheckpointFormat::default(),
                listen: None,
            };
            let mut i = 1;
            let mut interval_given = false;
            let mut format_given = false;
            while i < args.len() {
                match args[i].as_str() {
                    "--algo" => cfg.algo = Algo::from_name(take_value(args, &mut i, "--algo")?)?,
                    "--memory-bits" => cfg.memory_bits = parse_num(args, &mut i, "--memory-bits")?,
                    "--shards" => cfg.shards = parse_num(args, &mut i, "--shards")?,
                    "--producers" => cfg.producers = parse_num(args, &mut i, "--producers")?,
                    "--batch" => cfg.batch = parse_num(args, &mut i, "--batch")?,
                    "--queue" => cfg.queue_batches = parse_num(args, &mut i, "--queue")?,
                    "--policy" => {
                        cfg.policy =
                            BackpressurePolicy::from_name(take_value(args, &mut i, "--policy")?)?
                    }
                    "--expected-flows" => {
                        cfg.expected_flows = parse_num(args, &mut i, "--expected-flows")?
                    }
                    "--trace-sample" => {
                        cfg.trace_sample = parse_num(args, &mut i, "--trace-sample")?
                    }
                    "--threshold" => cfg.threshold = parse_num(args, &mut i, "--threshold")?,
                    "--top" => cfg.top = parse_num(args, &mut i, "--top")?,
                    "--metrics" => {
                        let name = take_value(args, &mut i, "--metrics")?;
                        cfg.metrics = Some(ExportFormat::from_name(name).ok_or_else(|| {
                            format!("unknown metrics format `{name}` (json|prom)")
                        })?);
                    }
                    "--metrics-out" => {
                        cfg.metrics_out =
                            Some(PathBuf::from(take_value(args, &mut i, "--metrics-out")?));
                    }
                    "--metrics-interval" => {
                        cfg.metrics_interval =
                            Some(parse_num(args, &mut i, "--metrics-interval")?);
                    }
                    "--checkpoint-dir" => {
                        cfg.checkpoint_dir =
                            Some(PathBuf::from(take_value(args, &mut i, "--checkpoint-dir")?));
                    }
                    "--checkpoint-interval" => {
                        cfg.checkpoint_interval =
                            parse_num(args, &mut i, "--checkpoint-interval")?;
                        interval_given = true;
                    }
                    "--checkpoint-format" => {
                        cfg.checkpoint_format =
                            match take_value(args, &mut i, "--checkpoint-format")? {
                                "v1" | "json" => CheckpointFormat::V1Json,
                                "v2" | "binary" => CheckpointFormat::V2Binary,
                                other => {
                                    return Err(format!(
                                        "unknown checkpoint format `{other}` (v1|json|v2|binary)"
                                    ))
                                }
                            };
                        format_given = true;
                    }
                    "--listen" => {
                        cfg.listen = Some(take_value(args, &mut i, "--listen")?.to_string());
                    }
                    other => return Err(format!("unknown option `{other}` for serve")),
                }
                i += 1;
            }
            if cfg.producers == 0 {
                return Err("--producers must be at least 1".into());
            }
            if interval_given && cfg.checkpoint_dir.is_none() {
                return Err(
                    "--checkpoint-interval needs --checkpoint-dir (nowhere to write epochs)"
                        .into(),
                );
            }
            if format_given && cfg.checkpoint_dir.is_none() {
                return Err(
                    "--checkpoint-format needs --checkpoint-dir (nowhere to write shards)".into(),
                );
            }
            if cfg.listen.is_some() && cfg.producers > 1 {
                return Err(
                    "--producers does not apply to --listen (each connection is a producer)"
                        .into(),
                );
            }
            if cfg.checkpoint_dir.is_some() && cfg.checkpoint_interval == 0 {
                return Err("--checkpoint-interval must be at least 1 second".into());
            }
            if cfg.metrics_interval.is_some() && cfg.metrics_out.is_none() {
                return Err("--metrics-interval needs --metrics-out (periodic snapshots rewrite a file)".into());
            }
            if (cfg.metrics_out.is_some() || cfg.metrics_interval.is_some()) && cfg.metrics.is_none()
            {
                return Err("--metrics-out/--metrics-interval need --metrics <json|prom>".into());
            }
            Ok(Command::Serve(cfg))
        }
        "client" => {
            let action_name = args
                .get(1)
                .map(|s| s.as_str())
                .ok_or("client needs an action: record|query|top-k|snapshot|subscribe|ping|shutdown")?;
            let mut connect = "127.0.0.1:4742".to_string();
            let mut batch = 512usize;
            let mut flow: Option<String> = None;
            let mut top = 20usize;
            let mut max = 16u64;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--connect" => connect = take_value(args, &mut i, "--connect")?.to_string(),
                    "--batch" => batch = parse_num(args, &mut i, "--batch")?,
                    "--flow" => flow = Some(take_value(args, &mut i, "--flow")?.to_string()),
                    "--top" => top = parse_num(args, &mut i, "--top")?,
                    "--max" => max = parse_num(args, &mut i, "--max")?,
                    other => return Err(format!("unknown option `{other}` for client")),
                }
                i += 1;
            }
            let action = match action_name {
                "record" => {
                    if batch == 0 {
                        return Err("--batch must be at least 1".into());
                    }
                    ClientAction::Record { batch }
                }
                "query" => ClientAction::Query {
                    flow: flow.ok_or("client query needs --flow <name>")?,
                },
                "top-k" => ClientAction::TopK { top },
                "snapshot" => ClientAction::Snapshot,
                "subscribe" => ClientAction::Subscribe { max },
                "ping" => ClientAction::Ping,
                "shutdown" => ClientAction::Shutdown,
                other => {
                    return Err(format!(
                        "unknown client action `{other}` (record|query|top-k|snapshot|subscribe|ping|shutdown)"
                    ))
                }
            };
            Ok(Command::Client(ClientConfig { connect, action }))
        }
        "restore" => {
            let mut dir = None;
            let mut top = 20usize;
            let mut threshold = 0.0f64;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--dir" => dir = Some(PathBuf::from(take_value(args, &mut i, "--dir")?)),
                    "--top" => top = parse_num(args, &mut i, "--top")?,
                    "--threshold" => threshold = parse_num(args, &mut i, "--threshold")?,
                    other => return Err(format!("unknown option `{other}` for restore")),
                }
                i += 1;
            }
            let dir = dir.ok_or("restore needs --dir <checkpoint directory>")?;
            Ok(Command::Restore(RestoreCliConfig { dir, top, threshold }))
        }
        "morphlog" => {
            let mut cfg = MorphlogConfig {
                memory_bits: 8192,
                n_max: 1e6,
                last: None,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--memory-bits" => cfg.memory_bits = parse_num(args, &mut i, "--memory-bits")?,
                    "--n-max" => cfg.n_max = parse_num(args, &mut i, "--n-max")?,
                    "--last" => {
                        let n: usize = parse_num(args, &mut i, "--last")?;
                        if n == 0 {
                            return Err("--last must be at least 1".into());
                        }
                        cfg.last = Some(n);
                    }
                    other => return Err(format!("unknown option `{other}` for morphlog")),
                }
                i += 1;
            }
            Ok(Command::Morphlog(cfg))
        }
        "doctor" => {
            let mut cfg = DoctorConfig {
                memory_bits: 2048,
                shards: 0,
                batch: 256,
                top: 5,
                checkpoint_dir: None,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--memory-bits" => cfg.memory_bits = parse_num(args, &mut i, "--memory-bits")?,
                    "--shards" => cfg.shards = parse_num(args, &mut i, "--shards")?,
                    "--batch" => cfg.batch = parse_num(args, &mut i, "--batch")?,
                    "--top" => cfg.top = parse_num(args, &mut i, "--top")?,
                    "--checkpoint-dir" => {
                        cfg.checkpoint_dir =
                            Some(PathBuf::from(take_value(args, &mut i, "--checkpoint-dir")?));
                    }
                    other => return Err(format!("unknown option `{other}` for doctor")),
                }
                i += 1;
            }
            Ok(Command::Doctor(cfg))
        }
        "trace" => {
            let mut cfg = TraceCliConfig {
                flows: 1000,
                seed: 1,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--flows" => cfg.flows = parse_num(args, &mut i, "--flows")?,
                    "--seed" => cfg.seed = parse_num(args, &mut i, "--seed")?,
                    other => return Err(format!("unknown option `{other}` for trace")),
                }
                i += 1;
            }
            Ok(Command::Trace(cfg))
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Run `count` over an iterator of lines.
pub fn run_count(
    cfg: CountConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let mut est = AlgoSpec::new(cfg.algo)
        .memory_bits(cfg.memory_bits)
        .build()
        .map_err(|e| e.to_string())?;
    let mut exact = cfg.exact.then(ExactCounter::new);
    let mut total_lines = 0u64;
    for line in lines {
        est.record(line.as_bytes());
        if let Some(e) = exact.as_mut() {
            e.record(line.as_bytes());
        }
        total_lines += 1;
    }
    let estimate = est.estimate();
    writeln!(out, "items        : {total_lines}").map_err(|e| e.to_string())?;
    writeln!(out, "estimate     : {estimate:.0}  ({})", est.name()).map_err(|e| e.to_string())?;
    writeln!(out, "memory (bits): {}", est.memory_bits()).map_err(|e| e.to_string())?;
    if let Some(e) = exact {
        let truth = e.count() as f64;
        let err = if truth > 0.0 {
            (estimate - truth).abs() / truth * 100.0
        } else {
            0.0
        };
        writeln!(out, "exact        : {}  (error {err:.2}%)", e.count())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Split a `flow<TAB>item` line (whitespace also accepted) into the
/// hashed flow key and the item bytes.
fn parse_flow_line(line: &str) -> Option<(u64, &str)> {
    let mut parts = line.splitn(2, ['\t', ' ']);
    match (parts.next(), parts.next()) {
        (Some(flow), Some(item)) if !flow.is_empty() && !item.is_empty() => {
            Some((smb_hash::fnv::fnv1a64(flow.as_bytes()), item))
        }
        _ => None,
    }
}

/// Run `flows` over `flow<TAB>item` lines (whitespace also accepted).
pub fn run_flows(
    cfg: FlowsConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let m = cfg.memory_bits;
    let t = smb_theory::optimal_threshold(m, 1e6).t;
    let mut table = FlowTable::new(move |flow| {
        Smb::with_scheme(m, t, HashScheme::with_seed(flow)).expect("validated above")
    });
    // Validate the parameters once up front so the closure can't panic
    // mid-stream.
    Smb::new(m, t).map_err(|e| e.to_string())?;

    let mut skipped = 0u64;
    for line in lines {
        match parse_flow_line(&line) {
            Some((key, item)) => table.record(key, item.as_bytes()),
            None => skipped += 1,
        }
    }
    let mut report = table.flows_over(cfg.threshold);
    report.truncate(cfg.top);
    writeln!(out, "flows tracked: {}  (skipped {} malformed lines)", table.len(), skipped)
        .map_err(|e| e.to_string())?;
    for (flow, estimate) in report {
        writeln!(out, "{flow:016x}\t{estimate:.0}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Run `serve`: the sharded parallel version of `flows`. Lines stream
/// through a [`ShardedFlowEngine`]; the report adds the engine's
/// per-shard statistics. With `--producers N` (N > 1), parsing stays
/// on the calling thread while N producer-handle threads feed the
/// shard queues concurrently. With `--metrics`, the engine registry
/// (per-shard queue/drop/batch series plus SMB morph counters) is
/// exported as JSON or Prometheus text after the run — and, with
/// `--metrics-interval`, periodically during it.
pub fn run_serve(
    cfg: ServeConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let spec = AlgoSpec::new(cfg.algo).memory_bits(cfg.memory_bits).n_max(1e6);
    let mut config = EngineConfig::new(spec)
        .with_batch(cfg.batch)
        .with_queue_batches(cfg.queue_batches)
        .with_policy(cfg.policy)
        .with_expected_flows(cfg.expected_flows)
        .with_trace_sample(cfg.trace_sample);
    if cfg.shards > 0 {
        config = config.with_shards(cfg.shards);
    }
    let mut engine = ShardedFlowEngine::new(config).map_err(|e| e.to_string())?;

    let checkpoint = cfg.checkpoint_dir.as_ref().map(|dir| {
        CheckpointConfig::new(dir)
            .with_interval(std::time::Duration::from_secs(cfg.checkpoint_interval.max(1)))
            .with_format(cfg.checkpoint_format)
    });
    if let Some(ckpt) = &checkpoint {
        engine
            .start_checkpointer(ckpt.clone())
            .map_err(|e| e.to_string())?;
    }

    let reporter = match (cfg.metrics, &cfg.metrics_out, cfg.metrics_interval) {
        (Some(format), Some(path), Some(secs)) => {
            let path = path.clone();
            Some(Reporter::spawn(
                Arc::clone(engine.registry()),
                format,
                std::time::Duration::from_secs(secs.max(1)),
                move |text| {
                    // Rewrite in place each tick; scrapers read a file
                    // that is always a complete document.
                    let _ = std::fs::write(&path, text);
                },
            ))
        }
        _ => None,
    };

    let mut skipped = 0u64;
    let mut sessions = None;
    if let Some(listen) = &cfg.listen {
        // Network mode: stdin is ignored; clients feed the engine over
        // the wire protocol until one of them sends SHUTDOWN. The
        // bound address is printed (and flushed) first so wrappers can
        // parse the ephemeral port before connecting.
        let server = SmbServer::bind(listen.as_str(), &engine).map_err(|e| e.to_string())?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        writeln!(out, "listening on {addr}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        let summary = server.serve().map_err(|e| e.to_string())?;
        sessions = Some(summary.sessions);
    } else if cfg.producers > 1 {
        // Multi-producer ingest: this thread only parses and deals
        // lines round-robin to N producer threads, each owning a
        // cloned engine producer handle. Per-flow arrival order across
        // producers is nondeterministic (items split round-robin), but
        // every item is recorded exactly once, so estimates are
        // unaffected. Producer handles flush on drop, before the
        // engine flush below — the documented flush protocol.
        let producer = engine.producer_handle();
        std::thread::scope(|scope| {
            let txs: Vec<_> = (0..cfg.producers)
                .map(|_| {
                    let (tx, rx) = std::sync::mpsc::sync_channel::<(u64, String)>(1024);
                    let mut p = producer.clone();
                    scope.spawn(move || {
                        while let Ok((key, item)) = rx.recv() {
                            p.ingest(key, item.as_bytes());
                        }
                    });
                    tx
                })
                .collect();
            let mut next = 0usize;
            for line in lines {
                match parse_flow_line(&line) {
                    Some((key, item)) => {
                        // The worker only stops on channel disconnect,
                        // which cannot happen while `txs` is alive.
                        txs[next % cfg.producers]
                            .send((key, item.to_string()))
                            .expect("producer thread alive");
                        next += 1;
                    }
                    None => skipped += 1,
                }
            }
            // Dropping the channels ends the workers; scope joins them
            // (and their handles flush-on-drop).
            drop(txs);
        });
        drop(producer);
    } else {
        for line in lines {
            match parse_flow_line(&line) {
                Some((key, item)) => engine.ingest(key, item.as_bytes()),
                None => skipped += 1,
            }
        }
    }
    engine.flush();
    if let Some(reporter) = reporter {
        reporter.stop();
    }
    // End-of-input checkpoint: the background thread only guarantees
    // interval-bounded loss; this pins the final state before reporting.
    let final_epoch = match &checkpoint {
        Some(ckpt) => {
            engine.stop_checkpointer();
            Some(engine.checkpoint_now(ckpt).map_err(|e| e.to_string())?)
        }
        None => None,
    };

    // One multi-facet sweep over the shards; the handle does not borrow
    // the engine, so a future interactive mode can query mid-ingest.
    let answers = engine
        .query_handle()
        .run(&EngineQuery::new().with_top_k(cfg.top));
    let mut report = answers.top_k.unwrap_or_default();
    report.retain(|&(_, est)| est >= cfg.threshold);
    let stats = engine.stats();
    writeln!(
        out,
        "flows tracked: {}  (skipped {} malformed lines, dropped {} items)",
        stats.total_flows(),
        skipped,
        stats.total_dropped(),
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "engine       : {} shard(s), {} producer(s), batch {}, queue {} batch(es), {:?}",
        engine.config().shards,
        cfg.producers,
        engine.config().batch,
        engine.config().queue_batches,
        engine.config().policy,
    )
    .map_err(|e| e.to_string())?;
    if let Some(n) = sessions {
        writeln!(out, "sessions     : {n}").map_err(|e| e.to_string())?;
    }
    if let (Some(epoch), Some(ckpt)) = (final_epoch, &checkpoint) {
        writeln!(out, "checkpoint   : epoch {epoch} -> {}", ckpt.dir.display())
            .map_err(|e| e.to_string())?;
    }
    writeln!(out, "{stats}").map_err(|e| e.to_string())?;
    for (flow, estimate) in report {
        writeln!(out, "{flow:016x}\t{estimate:.0}").map_err(|e| e.to_string())?;
    }

    if let Some(format) = cfg.metrics {
        let rendered = format.render(&engine.metrics_snapshot());
        match &cfg.metrics_out {
            Some(path) => std::fs::write(path, rendered)
                .map_err(|e| format!("write {}: {e}", path.display()))?,
            None => {
                writeln!(out, "{rendered}").map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}

/// Run `client`: one wire-protocol exchange with a `serve --listen`
/// server. Flow names are hashed exactly as `serve` hashes stdin flow
/// columns, so `client query --flow heavy` asks about the same key a
/// piped trace created, and `client top-k` prints the same
/// `flow<TAB>estimate` lines the stdin report would.
pub fn run_client(
    cfg: ClientConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let mut client = SmbClient::connect(cfg.connect.as_str())
        .map_err(|e| format!("connect {}: {e}", cfg.connect))?;
    match cfg.action {
        ClientAction::Record { batch } => {
            let mut sent = 0u64;
            let mut skipped = 0u64;
            let mut pending: Vec<(u64, String)> = Vec::with_capacity(batch);
            let mut ship = |pending: &mut Vec<(u64, String)>, sent: &mut u64| {
                if pending.is_empty() {
                    return Ok(());
                }
                let records: Vec<(u64, &[u8])> = pending
                    .iter()
                    .map(|(flow, item)| (*flow, item.as_bytes()))
                    .collect();
                *sent += client.record_batch(&records).map_err(|e| e.to_string())?;
                pending.clear();
                Ok::<(), String>(())
            };
            for line in lines {
                match parse_flow_line(&line) {
                    Some((key, item)) => {
                        pending.push((key, item.to_string()));
                        if pending.len() == batch {
                            ship(&mut pending, &mut sent)?;
                        }
                    }
                    None => skipped += 1,
                }
            }
            ship(&mut pending, &mut sent)?;
            writeln!(out, "records sent : {sent}  (skipped {skipped} malformed lines)")
                .map_err(|e| e.to_string())?;
        }
        ClientAction::Query { flow } => {
            let key = smb_hash::fnv::fnv1a64(flow.as_bytes());
            match client.query(key).map_err(|e| e.to_string())? {
                Some(estimate) => {
                    writeln!(out, "{key:016x}\t{estimate:.0}").map_err(|e| e.to_string())?
                }
                None => writeln!(out, "flow `{flow}` ({key:016x}): not seen")
                    .map_err(|e| e.to_string())?,
            }
        }
        ClientAction::TopK { top } => {
            for (flow, estimate) in client.top_k(top as u64).map_err(|e| e.to_string())? {
                writeln!(out, "{flow:016x}\t{estimate:.0}").map_err(|e| e.to_string())?;
            }
        }
        ClientAction::Snapshot => {
            let cells = client.snapshot().map_err(|e| e.to_string())?;
            let mut small = 0usize;
            let mut array = 0usize;
            let mut full = 0usize;
            for (_, state) in &cells {
                match state.field("tier").ok().and_then(|t| t.as_str().ok()) {
                    Some("small") => small += 1,
                    Some("array") => array += 1,
                    _ => full += 1,
                }
            }
            writeln!(out, "snapshot     : {} flow(s)", cells.len()).map_err(|e| e.to_string())?;
            writeln!(out, "tiers        : {small} small, {array} array, {full} full")
                .map_err(|e| e.to_string())?;
        }
        ClientAction::Subscribe { max } => {
            let delivered = client
                .subscribe_morphs(max, |ev| {
                    let obj = smb_devtools::Json::Obj(vec![
                        ("event".into(), smb_devtools::Json::str(ev.kind_str())),
                        ("round".into(), smb_devtools::Json::Int(ev.round as i128)),
                        (
                            "fresh_bits".into(),
                            smb_devtools::Json::Int(ev.fresh_bits as i128),
                        ),
                        (
                            "logical_size".into(),
                            smb_devtools::Json::Int(ev.logical_size as i128),
                        ),
                        ("items".into(), smb_devtools::Json::Int(ev.items as i128)),
                        ("estimate".into(), smb_devtools::Json::Float(ev.estimate)),
                        ("at_ns".into(), smb_devtools::Json::Int(ev.at_ns as i128)),
                    ]);
                    let _ = writeln!(out, "{}", obj.to_string());
                })
                .map_err(|e| e.to_string())?;
            writeln!(out, "events delivered: {delivered}").map_err(|e| e.to_string())?;
        }
        ClientAction::Ping => {
            client.ping().map_err(|e| e.to_string())?;
            writeln!(out, "pong").map_err(|e| e.to_string())?;
        }
        ClientAction::Shutdown => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            writeln!(out, "server shutting down").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Run `restore`: rebuild an engine from the newest consistent epoch
/// in a checkpoint directory and report what was recovered — the
/// epoch, flow count, any skipped (torn or corrupted) newer epochs,
/// and the top-k per-flow estimates. Skipped epochs mean bounded loss:
/// everything ingested after the restored epoch's checkpoint is gone.
pub fn run_restore(cfg: RestoreCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let (engine, report) = ShardedFlowEngine::restore(&cfg.dir).map_err(|e| e.to_string())?;
    writeln!(out, "restored     : epoch {} from {}", report.epoch, cfg.dir.display())
        .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "flows        : {}  (checkpoint had {} shard(s))",
        report.flows, report.checkpoint_shards,
    )
    .map_err(|e| e.to_string())?;
    for (epoch, reason) in &report.skipped {
        writeln!(out, "skipped      : epoch {epoch} — {reason}").map_err(|e| e.to_string())?;
    }
    let mut top = engine
        .run_query(&EngineQuery::new().with_top_k(cfg.top))
        .top_k
        .unwrap_or_default();
    top.retain(|&(_, est)| est >= cfg.threshold);
    for (flow, estimate) in top {
        writeln!(out, "{flow:016x}\t{estimate:.0}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Run `morphlog`: record stdin lines into one SMB and stream every
/// morph event as a JSON line the moment its round closes, ending
/// with a `"event":"final"` summary line. The output is JSON-lines —
/// one object per line, nothing else — so it pipes cleanly into
/// `jq`-style tooling.
pub fn run_morphlog(
    cfg: MorphlogConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    if let Some(n) = cfg.last {
        return run_morphlog_window(cfg, n, lines, out);
    }
    let collector = MorphCollector::shared();
    let mut est = AlgoSpec::new(Algo::Smb)
        .memory_bits(cfg.memory_bits)
        .n_max(cfg.n_max)
        .build_observed(Some(ObserverHandle::new(collector.clone())))
        .map_err(|e| e.to_string())?;
    let mut items = 0u64;
    for line in lines {
        est.record(line.as_bytes());
        items += 1;
        // Drain per item so events stream out as they happen rather
        // than all at end-of-input.
        for event in collector.drain() {
            let mut obj = vec![
                ("event".to_string(), smb_devtools::Json::str("morph")),
                ("items_total".to_string(), smb_devtools::Json::Int(items as i128)),
            ];
            if let smb_devtools::Json::Obj(fields) = morph_event_to_json(&event) {
                obj.extend(fields);
            }
            writeln!(out, "{}", smb_devtools::Json::Obj(obj).to_string())
                .map_err(|e| e.to_string())?;
        }
    }
    let summary = smb_devtools::Json::Obj(vec![
        ("event".to_string(), smb_devtools::Json::str("final")),
        ("items_total".to_string(), smb_devtools::Json::Int(items as i128)),
        ("estimate".to_string(), smb_devtools::Json::Float(est.estimate())),
        ("saturated".to_string(), smb_devtools::Json::Bool(est.is_saturated())),
        (
            "memory_bits".to_string(),
            smb_devtools::Json::Int(est.memory_bits() as i128),
        ),
    ]);
    writeln!(out, "{}", summary.to_string()).map_err(|e| e.to_string())?;
    Ok(())
}

/// The `morphlog --last N` mode: record everything through a
/// [`FlightRecorder`] ring of capacity N and dump only the retained
/// window at end-of-input — the CLI face of the engine's flight
/// recorder, for "what just happened" forensics on long streams where
/// streaming every morph would drown the terminal.
fn run_morphlog_window(
    cfg: MorphlogConfig,
    n: usize,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    use smb_devtools::Json;
    let recorder = FlightRecorder::new(n);
    let mut est = AlgoSpec::new(Algo::Smb)
        .memory_bits(cfg.memory_bits)
        .n_max(cfg.n_max)
        .build_observed(Some(recorder.clone().into_handle()))
        .map_err(|e| e.to_string())?;
    let mut items = 0u64;
    for line in lines {
        est.record(line.as_bytes());
        items += 1;
    }
    for event in recorder.recent(n) {
        let mut obj = vec![("event".to_string(), Json::str("flight"))];
        if let Json::Obj(fields) = event.to_json() {
            obj.extend(fields);
        }
        writeln!(out, "{}", Json::Obj(obj).to_string()).map_err(|e| e.to_string())?;
    }
    let summary = Json::Obj(vec![
        ("event".to_string(), Json::str("final")),
        ("items_total".to_string(), Json::Int(items as i128)),
        ("estimate".to_string(), Json::Float(est.estimate())),
        ("saturated".to_string(), Json::Bool(est.is_saturated())),
        ("memory_bits".to_string(), Json::Int(est.memory_bits() as i128)),
        (
            "events_recorded".to_string(),
            Json::Int(recorder.recorded_total() as i128),
        ),
        ("window".to_string(), Json::Int(recorder.len() as i128)),
    ]);
    writeln!(out, "{}", summary.to_string()).map_err(|e| e.to_string())?;
    Ok(())
}

/// How many flight-recorder events a doctor snapshot includes.
const DOCTOR_FLIGHT_WINDOW: usize = 32;

/// Run `doctor`: ingest `flow<TAB>item` lines through a fully
/// instrumented engine (stage tracing on every batch) and emit ONE
/// diagnostic JSON document — tier census, per-shard queue depths,
/// producer counters, morph cadence with the hottest flows, the last
/// flight-recorder window, pipeline-stage timings, and checkpoint
/// status. One object on one line; pipe it into `jq`.
pub fn run_doctor(
    cfg: DoctorConfig,
    lines: &mut dyn Iterator<Item = String>,
    out: &mut dyn Write,
) -> Result<(), String> {
    use smb_devtools::Json;

    let spec = AlgoSpec::new(Algo::Smb).memory_bits(cfg.memory_bits).n_max(1e6);
    let mut config = EngineConfig::new(spec)
        .with_batch(cfg.batch)
        .with_trace_sample(1);
    if cfg.shards > 0 {
        config = config.with_shards(cfg.shards);
    }
    let mut engine = ShardedFlowEngine::new(config).map_err(|e| e.to_string())?;

    // Ingest through a producer handle so the per-producer counters
    // show up in the report (the engine's own front-end carries none).
    let mut skipped = 0u64;
    let mut producer = engine.producer_handle();
    for line in lines {
        match parse_flow_line(&line) {
            Some((key, item)) => producer.ingest(key, item.as_bytes()),
            None => skipped += 1,
        }
    }
    producer.flush();
    let pstats = producer.stats();
    drop(producer);
    engine.flush();

    // Checkpoint before snapshotting so the epoch's lifecycle event is
    // part of the reported flight window.
    let checkpoint = match &cfg.checkpoint_dir {
        Some(dir) => {
            let epoch = engine
                .checkpoint_now(&CheckpointConfig::new(dir))
                .map_err(|e| e.to_string())?;
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(true)),
                ("dir".into(), Json::str(dir.display().to_string())),
                ("epoch".into(), Json::Int(epoch as i128)),
            ])
        }
        None => Json::Obj(vec![("enabled".into(), Json::Bool(false))]),
    };

    let answers = engine
        .query_handle()
        .run(&EngineQuery::new().with_top_k(cfg.top).with_flow_count());
    let stats = engine.stats();
    let snap = engine.metrics_snapshot();

    let tiers = answers.tier_stats;
    let tier_census = Json::Obj(vec![
        ("small".into(), Json::Int(tiers.small as i128)),
        ("array".into(), Json::Int(tiers.array as i128)),
        ("full".into(), Json::Int(tiers.full as i128)),
        (
            "promotions_to_array".into(),
            Json::Int(tiers.promotions_to_array as i128),
        ),
        (
            "promotions_to_full".into(),
            Json::Int(tiers.promotions_to_full as i128),
        ),
    ]);

    let queue_depths = Json::Arr(
        stats
            .shards
            .iter()
            .map(|s| {
                let shard = s.shard.to_string();
                let depth = snap
                    .get("engine_queue_depth", &[("shard", shard.as_str())])
                    .and_then(|v| v.as_gauge())
                    .unwrap_or_default();
                Json::Obj(vec![
                    ("shard".into(), Json::Int(s.shard as i128)),
                    ("depth".into(), Json::Int(depth as i128)),
                    ("batches_sent".into(), Json::Int(s.batches_sent as i128)),
                    (
                        "batches_processed".into(),
                        Json::Int(s.batches_processed as i128),
                    ),
                    ("items_enqueued".into(), Json::Int(s.items_enqueued as i128)),
                    ("dropped_items".into(), Json::Int(s.dropped_items as i128)),
                ])
            })
            .collect(),
    );

    let producer_counters = Json::Obj(vec![
        ("producer".into(), Json::Int(pstats.producer as i128)),
        ("items".into(), Json::Int(pstats.items as i128)),
        ("batches".into(), Json::Int(pstats.batches as i128)),
        (
            "queue_full_events".into(),
            Json::Int(pstats.queue_full_events as i128),
        ),
        ("dropped_items".into(), Json::Int(pstats.dropped_items as i128)),
    ]);

    let cadence = snap
        .get("smb_items_between_morphs", &[])
        .and_then(|v| v.as_histogram())
        .map(|h| {
            Json::Obj(vec![
                ("count".into(), Json::Int(h.count as i128)),
                ("p50".into(), Json::Float(h.p50)),
                ("p95".into(), Json::Float(h.p95)),
            ])
        })
        .unwrap_or(Json::Null);

    let hot_flows = Json::Arr(
        answers
            .top_k
            .unwrap_or_default()
            .iter()
            .map(|&(flow, est)| {
                Json::Obj(vec![
                    ("flow".into(), Json::str(format!("{flow:016x}"))),
                    ("estimate".into(), Json::Float(est)),
                ])
            })
            .collect(),
    );

    let morph = Json::Obj(vec![
        (
            "events_total".into(),
            Json::Int(snap.counter_total("smb_morph_events_total") as i128),
        ),
        (
            "cleared_total".into(),
            Json::Int(snap.counter_total("smb_cleared_total") as i128),
        ),
        (
            "saturated_total".into(),
            Json::Int(snap.counter_total("smb_saturated_total") as i128),
        ),
        ("items_between_morphs".into(), cadence),
        ("hot_flows".into(), hot_flows),
    ]);

    let (flight, flight_window) = match engine.flight_recorder() {
        Some(rec) => (
            Json::Obj(vec![
                (
                    "recorded_total".into(),
                    Json::Int(rec.recorded_total() as i128),
                ),
                ("capacity".into(), Json::Int(rec.capacity() as i128)),
            ]),
            Json::Arr(
                rec.recent(DOCTOR_FLIGHT_WINDOW)
                    .iter()
                    .map(|e| e.to_json())
                    .collect(),
            ),
        ),
        None => (Json::Null, Json::Arr(Vec::new())),
    };

    let stage_ns = Json::Arr(
        snap.metrics
            .iter()
            .filter(|m| m.name == "engine_stage_duration_ns")
            .flat_map(|m| &m.series)
            .filter_map(|s| {
                let h = s.value.as_histogram()?;
                let label = |key: &str| {
                    s.labels
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default()
                };
                Some(Json::Obj(vec![
                    ("shard".into(), Json::str(label("shard"))),
                    ("stage".into(), Json::str(label("stage"))),
                    ("count".into(), Json::Int(h.count as i128)),
                    ("p50_ns".into(), Json::Float(h.p50)),
                    ("p95_ns".into(), Json::Float(h.p95)),
                ]))
            })
            .collect(),
    );

    let doc = Json::Obj(vec![
        ("doctor".into(), Json::str("smbcount")),
        (
            "items_enqueued".into(),
            Json::Int(stats.total_enqueued() as i128),
        ),
        (
            "items_recorded".into(),
            Json::Int(stats.total_recorded() as i128),
        ),
        (
            "items_dropped".into(),
            Json::Int(stats.total_dropped() as i128),
        ),
        ("skipped_lines".into(), Json::Int(skipped as i128)),
        (
            "flows".into(),
            Json::Int(answers.flow_count.unwrap_or(0) as i128),
        ),
        ("tier_census".into(), tier_census),
        ("queue_depths".into(), queue_depths),
        ("producer_counters".into(), producer_counters),
        ("morph".into(), morph),
        ("flight".into(), flight),
        ("flight_window".into(), flight_window),
        ("stage_ns".into(), stage_ns),
        ("checkpoint".into(), checkpoint),
    ]);
    writeln!(out, "{}", doc.to_string()).map_err(|e| e.to_string())
}

/// Run `trace`: emit `flow<TAB>item` lines of a synthetic trace.
pub fn run_trace(cfg: TraceCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let trace = TraceConfig {
        flows: cfg.flows.max(1),
        seed: cfg.seed,
        ..TraceConfig::default()
    }
    .build();
    for p in trace.packets() {
        writeln!(out, "{}\t{}", p.flow, p.item).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        assert!(matches!(parse_args(&[]), Ok(Command::Help)));
        assert!(matches!(parse_args(&s(&["help"])), Ok(Command::Help)));
        let Ok(Command::Count(c)) =
            parse_args(&s(&["count", "--algo", "hllpp", "--memory-bits", "4096", "--exact"]))
        else {
            panic!("expected count")
        };
        assert_eq!(c.algo, Algo::HllPlusPlus);
        assert_eq!(c.memory_bits, 4096);
        assert!(c.exact);
    }

    #[test]
    fn parse_serve_flags() {
        let Ok(Command::Serve(c)) = parse_args(&s(&[
            "serve", "--algo", "hll", "--shards", "4", "--batch", "128", "--queue", "2",
            "--policy", "drop", "--expected-flows", "5000", "--memory-bits", "4096",
            "--top", "3", "--trace-sample", "8",
        ])) else {
            panic!("expected serve")
        };
        assert_eq!(c.algo, Algo::Hll);
        assert_eq!(c.shards, 4);
        assert_eq!(c.batch, 128);
        assert_eq!(c.queue_batches, 2);
        assert_eq!(c.policy, BackpressurePolicy::DropNewest);
        assert_eq!(c.expected_flows, 5000);
        assert_eq!(c.memory_bits, 4096);
        assert_eq!(c.top, 3);
        assert_eq!(c.trace_sample, 8);
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve"])) else {
            panic!("expected serve")
        };
        assert_eq!(c.trace_sample, 0, "tracing is off by default");
        assert!(parse_args(&s(&["serve", "--policy", "explode"])).is_err());
        assert!(parse_args(&s(&["serve", "--trace-sample", "lots"])).is_err());
        assert!(parse_args(&s(&["serve", "--wat"])).is_err());
    }

    #[test]
    fn parse_producers_flag() {
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve"])) else {
            panic!("expected serve")
        };
        assert_eq!(c.producers, 1, "default is the classic single-producer loop");
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve", "--producers", "4"])) else {
            panic!("expected serve")
        };
        assert_eq!(c.producers, 4);
        assert!(parse_args(&s(&["serve", "--producers", "0"])).is_err());
        assert!(parse_args(&s(&["serve", "--producers"])).is_err());
        assert!(parse_args(&s(&["serve", "--producers", "many"])).is_err());
    }

    #[test]
    fn serve_multi_producer_matches_single_producer_report() {
        let base = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 2,
            producers: 1,
            batch: 64,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
            threshold: 0.0,
            top: 5,
            metrics: None,
            metrics_out: None,
            metrics_interval: None,
            checkpoint_dir: None,
            checkpoint_interval: 30,
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut lines = Vec::new();
        for i in 0..3000u32 {
            lines.push(format!("heavy\t{i}"));
        }
        for i in 0..50u32 {
            lines.push(format!("light\t{i}"));
        }
        lines.push("malformed".into());

        let mut single = Vec::new();
        run_serve(base.clone(), &mut lines.clone().into_iter(), &mut single).unwrap();
        let single = String::from_utf8(single).unwrap();

        let cfg = ServeConfig { producers: 4, ..base };
        let mut multi = Vec::new();
        run_serve(cfg, &mut lines.into_iter(), &mut multi).unwrap();
        let multi = String::from_utf8(multi).unwrap();

        assert!(multi.contains("4 producer(s)"), "{multi}");
        assert!(multi.contains("flows tracked: 2"), "{multi}");
        assert!(multi.contains("skipped 1"), "{multi}");
        // Fan-out reorders per-flow arrivals but never loses or
        // duplicates an item, so both runs see the same flows and
        // (since SMB sampling is order-sensitive once it morphs)
        // estimates that agree to within sketch noise, not bit-exactly.
        let estimates = |report: &str| -> Vec<(String, f64)> {
            let mut rows: Vec<(String, f64)> = report
                .lines()
                .filter(|l| l.contains('\t'))
                .map(|l| {
                    let mut parts = l.split('\t');
                    let flow = parts.next().unwrap().to_string();
                    let est: f64 = parts.next().unwrap().parse().unwrap();
                    (flow, est)
                })
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        let single_rows = estimates(&single);
        let multi_rows = estimates(&multi);
        assert_eq!(single_rows.len(), multi_rows.len());
        for ((f1, e1), (f2, e2)) in single_rows.iter().zip(&multi_rows) {
            assert_eq!(f1, f2);
            assert!(
                (e1 - e2).abs() / e1.max(1.0) < 0.2,
                "{f1}: single {e1} vs multi {e2}"
            );
        }
    }

    #[test]
    fn parse_listen_and_checkpoint_format_flags() {
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve", "--listen", "127.0.0.1:0"])) else {
            panic!("expected serve")
        };
        assert_eq!(c.listen.as_deref(), Some("127.0.0.1:0"));
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve"])) else {
            panic!("expected serve")
        };
        assert_eq!(c.listen, None, "stdin mode is the default");
        assert_eq!(c.checkpoint_format, CheckpointFormat::V2Binary);
        let Ok(Command::Serve(c)) = parse_args(&s(&[
            "serve", "--checkpoint-dir", "/tmp/ck", "--checkpoint-format", "v1",
        ])) else {
            panic!("expected serve")
        };
        assert_eq!(c.checkpoint_format, CheckpointFormat::V1Json);
        let Ok(Command::Serve(c)) = parse_args(&s(&[
            "serve", "--checkpoint-dir", "/tmp/ck", "--checkpoint-format", "binary",
        ])) else {
            panic!("expected serve")
        };
        assert_eq!(c.checkpoint_format, CheckpointFormat::V2Binary);
        // Inconsistent combinations are rejected at parse time.
        assert!(parse_args(&s(&["serve", "--checkpoint-format", "v2"])).is_err());
        assert!(parse_args(&s(&[
            "serve", "--checkpoint-dir", "/tmp/ck", "--checkpoint-format", "v3",
        ]))
        .is_err());
        assert!(
            parse_args(&s(&["serve", "--listen", "127.0.0.1:0", "--producers", "2"])).is_err()
        );
    }

    #[test]
    fn parse_client_actions() {
        let Ok(Command::Client(c)) = parse_args(&s(&["client", "record"])) else {
            panic!("expected client")
        };
        assert_eq!(c.connect, "127.0.0.1:4742", "default address");
        assert_eq!(c.action, ClientAction::Record { batch: 512 });
        let Ok(Command::Client(c)) = parse_args(&s(&[
            "client", "query", "--connect", "10.0.0.1:9", "--flow", "heavy",
        ])) else {
            panic!("expected client")
        };
        assert_eq!(c.connect, "10.0.0.1:9");
        assert_eq!(c.action, ClientAction::Query { flow: "heavy".into() });
        let Ok(Command::Client(c)) = parse_args(&s(&["client", "top-k", "--top", "3"])) else {
            panic!("expected client")
        };
        assert_eq!(c.action, ClientAction::TopK { top: 3 });
        let Ok(Command::Client(c)) = parse_args(&s(&["client", "subscribe", "--max", "7"])) else {
            panic!("expected client")
        };
        assert_eq!(c.action, ClientAction::Subscribe { max: 7 });
        assert!(matches!(
            parse_args(&s(&["client", "snapshot"])),
            Ok(Command::Client(ClientConfig { action: ClientAction::Snapshot, .. }))
        ));
        assert!(matches!(
            parse_args(&s(&["client", "ping"])),
            Ok(Command::Client(ClientConfig { action: ClientAction::Ping, .. }))
        ));
        assert!(matches!(
            parse_args(&s(&["client", "shutdown"])),
            Ok(Command::Client(ClientConfig { action: ClientAction::Shutdown, .. }))
        ));
        assert!(parse_args(&s(&["client"])).is_err(), "action is mandatory");
        assert!(parse_args(&s(&["client", "explode"])).is_err());
        assert!(parse_args(&s(&["client", "query"])).is_err(), "query needs --flow");
        assert!(parse_args(&s(&["client", "record", "--batch", "0"])).is_err());
        assert!(parse_args(&s(&["client", "record", "--wat"])).is_err());
    }

    /// A `Write` the serve thread and the test can share: the test
    /// polls it for the `listening on` line to learn the ephemeral
    /// port while `run_serve` is still blocked inside `serve()`.
    #[derive(Clone, Default)]
    struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedOut {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn serve_listen_round_trips_with_client() {
        let base = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 2,
            producers: 1,
            batch: 64,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
            threshold: 0.0,
            top: 5,
            metrics: None,
            metrics_out: None,
            metrics_interval: None,
            checkpoint_dir: None,
            checkpoint_interval: 30,
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut lines = Vec::new();
        for i in 0..30_000u32 {
            lines.push(format!("heavy\t{i}"));
        }
        for i in 0..50u32 {
            lines.push(format!("light\t{i}"));
        }

        // Reference: the same trace through stdin-mode serve.
        let mut reference = Vec::new();
        run_serve(base.clone(), &mut lines.clone().into_iter(), &mut reference).unwrap();
        let reference = String::from_utf8(reference).unwrap();
        let reference_rows: Vec<&str> =
            reference.lines().filter(|l| l.contains('\t')).collect();

        // Network: serve --listen on an ephemeral port, in a thread.
        let cfg = ServeConfig { listen: Some("127.0.0.1:0".into()), ..base };
        let out = SharedOut::default();
        let serve_out = out.clone();
        let server = std::thread::spawn(move || {
            let mut serve_out = serve_out;
            run_serve(cfg, &mut std::iter::empty(), &mut serve_out).unwrap();
        });
        let addr = loop {
            if let Some(line) = out.text().lines().find(|l| l.starts_with("listening on ")) {
                break line["listening on ".len()..].to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        // Ship the trace, read back top-k, then shut the server down —
        // all through the public CLI entry points.
        let mut client_out = Vec::new();
        run_client(
            ClientConfig {
                connect: addr.clone(),
                action: ClientAction::Record { batch: 128 },
            },
            &mut lines.clone().into_iter().chain(["malformed".to_string()]),
            &mut client_out,
        )
        .unwrap();
        let recorded = String::from_utf8(client_out).unwrap();
        assert!(recorded.contains("records sent : 30050"), "{recorded}");
        assert!(recorded.contains("skipped 1"), "{recorded}");

        let mut client_out = Vec::new();
        run_client(
            ClientConfig {
                connect: addr.clone(),
                action: ClientAction::Query { flow: "nosuch".into() },
            },
            &mut std::iter::empty(),
            &mut client_out,
        )
        .unwrap();
        assert!(String::from_utf8(client_out).unwrap().contains("not seen"));

        let mut client_out = Vec::new();
        run_client(
            ClientConfig {
                connect: addr.clone(),
                action: ClientAction::TopK { top: 5 },
            },
            &mut std::iter::empty(),
            &mut client_out,
        )
        .unwrap();
        let top_k = String::from_utf8(client_out).unwrap();
        // Single-producer in-order delivery: networked ingest is
        // bit-identical to the stdin run, so the report rows match
        // verbatim.
        for row in &reference_rows {
            assert!(top_k.contains(row), "missing {row} in {top_k}");
        }

        let mut client_out = Vec::new();
        run_client(
            ClientConfig {
                connect: addr.clone(),
                action: ClientAction::Snapshot,
            },
            &mut std::iter::empty(),
            &mut client_out,
        )
        .unwrap();
        let snapshot = String::from_utf8(client_out).unwrap();
        assert!(snapshot.contains("snapshot     : 2 flow(s)"), "{snapshot}");

        let mut client_out = Vec::new();
        run_client(
            ClientConfig {
                connect: addr.clone(),
                action: ClientAction::Subscribe { max: 3 },
            },
            &mut std::iter::empty(),
            &mut client_out,
        )
        .unwrap();
        let subscribed = String::from_utf8(client_out).unwrap();
        assert!(subscribed.contains("\"event\":"), "{subscribed}");
        assert!(subscribed.contains("events delivered: 3"), "{subscribed}");

        let mut client_out = Vec::new();
        run_client(
            ClientConfig { connect: addr, action: ClientAction::Shutdown },
            &mut std::iter::empty(),
            &mut client_out,
        )
        .unwrap();
        server.join().unwrap();

        let report = out.text();
        assert!(report.contains("flows tracked: 2"), "{report}");
        assert!(report.contains("sessions     : 6"), "{report}");
        for row in &reference_rows {
            assert!(report.contains(row), "missing {row} in final report: {report}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_args(&s(&["count", "--algo", "nope"])).is_err());
        assert!(parse_args(&s(&["count", "--memory-bits"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["flows", "--wat"])).is_err());
    }

    #[test]
    fn parse_metrics_flags() {
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve", "--metrics", "prom"])) else {
            panic!("expected serve")
        };
        assert_eq!(c.metrics, Some(ExportFormat::Prometheus));
        assert_eq!(c.metrics_out, None);
        let Ok(Command::Serve(c)) = parse_args(&s(&[
            "serve", "--metrics", "json", "--metrics-out", "/tmp/m.json",
            "--metrics-interval", "5",
        ])) else {
            panic!("expected serve")
        };
        assert_eq!(c.metrics, Some(ExportFormat::Json));
        assert_eq!(c.metrics_out.as_deref(), Some(std::path::Path::new("/tmp/m.json")));
        assert_eq!(c.metrics_interval, Some(5));
        // Inconsistent combinations are rejected at parse time.
        assert!(parse_args(&s(&["serve", "--metrics", "xml"])).is_err());
        assert!(parse_args(&s(&["serve", "--metrics-out", "/tmp/x"])).is_err());
        assert!(parse_args(&s(&["serve", "--metrics", "prom", "--metrics-interval", "5"]))
            .is_err());
    }

    #[test]
    fn parse_checkpoint_flags() {
        let Ok(Command::Serve(c)) = parse_args(&s(&["serve", "--checkpoint-dir", "/tmp/ck"]))
        else {
            panic!("expected serve")
        };
        assert_eq!(c.checkpoint_dir.as_deref(), Some(std::path::Path::new("/tmp/ck")));
        assert_eq!(c.checkpoint_interval, 30, "interval defaults to 30 s");
        let Ok(Command::Serve(c)) = parse_args(&s(&[
            "serve", "--checkpoint-dir", "/tmp/ck", "--checkpoint-interval", "5",
        ])) else {
            panic!("expected serve")
        };
        assert_eq!(c.checkpoint_interval, 5);
        // Inconsistent combinations are rejected at parse time.
        assert!(parse_args(&s(&["serve", "--checkpoint-interval", "5"])).is_err());
        assert!(parse_args(&s(&[
            "serve", "--checkpoint-dir", "/tmp/ck", "--checkpoint-interval", "0",
        ]))
        .is_err());
    }

    #[test]
    fn parse_restore_flags() {
        let Ok(Command::Restore(c)) = parse_args(&s(&["restore", "--dir", "/tmp/ck"])) else {
            panic!("expected restore")
        };
        assert_eq!(c.dir, std::path::Path::new("/tmp/ck"));
        assert_eq!(c.top, 20);
        assert_eq!(c.threshold, 0.0);
        let Ok(Command::Restore(c)) = parse_args(&s(&[
            "restore", "--dir", "/tmp/ck", "--top", "3", "--threshold", "50",
        ])) else {
            panic!("expected restore")
        };
        assert_eq!(c.top, 3);
        assert_eq!(c.threshold, 50.0);
        assert!(parse_args(&s(&["restore"])).is_err(), "--dir is mandatory");
        assert!(parse_args(&s(&["restore", "--wat"])).is_err());
    }

    #[test]
    fn serve_checkpoint_then_restore_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "smbcount-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 2,
            producers: 1,
            batch: 64,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
            threshold: 0.0,
            top: 5,
            metrics: None,
            metrics_out: None,
            metrics_interval: None,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_interval: 3600, // only the final shutdown epoch fires
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut lines = Vec::new();
        for i in 0..3000u32 {
            lines.push(format!("heavy\t{i}"));
        }
        for i in 0..50u32 {
            lines.push(format!("light\t{i}"));
        }
        let mut out = Vec::new();
        run_serve(cfg, &mut lines.into_iter(), &mut out).unwrap();
        let served = String::from_utf8(out).unwrap();
        assert!(served.contains("checkpoint   : epoch 0"), "{served}");
        let serve_estimates: Vec<&str> =
            served.lines().filter(|l| l.contains('\t')).collect();

        let mut out = Vec::new();
        run_restore(
            RestoreCliConfig { dir: dir.clone(), top: 5, threshold: 0.0 },
            &mut out,
        )
        .unwrap();
        let restored = String::from_utf8(out).unwrap();
        assert!(restored.contains("restored     : epoch 0"), "{restored}");
        assert!(restored.contains("flows        : 2"), "{restored}");
        // The recovered estimates are the served estimates, verbatim.
        for line in &serve_estimates {
            assert!(restored.contains(line), "missing {line} in {restored}");
        }
        let _ = std::fs::remove_dir_all(&dir);

        // A missing directory is a clean error, not a panic.
        assert!(run_restore(
            RestoreCliConfig { dir: dir.clone(), top: 5, threshold: 0.0 },
            &mut Vec::new(),
        )
        .is_err());
    }

    #[test]
    fn parse_morphlog_flags() {
        let Ok(Command::Morphlog(c)) =
            parse_args(&s(&["morphlog", "--memory-bits", "4096", "--n-max", "50000"]))
        else {
            panic!("expected morphlog")
        };
        assert_eq!(c.memory_bits, 4096);
        assert_eq!(c.n_max, 50_000.0);
        assert_eq!(c.last, None, "default streams every morph");
        let Ok(Command::Morphlog(c)) = parse_args(&s(&["morphlog", "--last", "16"])) else {
            panic!("expected morphlog")
        };
        assert_eq!(c.last, Some(16));
        assert!(parse_args(&s(&["morphlog", "--last", "0"])).is_err());
        assert!(parse_args(&s(&["morphlog", "--last"])).is_err());
        assert!(parse_args(&s(&["morphlog", "--wat"])).is_err());
    }

    #[test]
    fn parse_doctor_flags() {
        let Ok(Command::Doctor(c)) = parse_args(&s(&["doctor"])) else {
            panic!("expected doctor")
        };
        assert_eq!(c.memory_bits, 2048);
        assert_eq!(c.shards, 0, "default is one shard per core");
        assert_eq!(c.batch, 256);
        assert_eq!(c.top, 5);
        assert_eq!(c.checkpoint_dir, None);
        let Ok(Command::Doctor(c)) = parse_args(&s(&[
            "doctor", "--memory-bits", "4096", "--shards", "2", "--batch", "32",
            "--top", "3", "--checkpoint-dir", "/tmp/ck",
        ])) else {
            panic!("expected doctor")
        };
        assert_eq!(c.memory_bits, 4096);
        assert_eq!(c.shards, 2);
        assert_eq!(c.batch, 32);
        assert_eq!(c.top, 3);
        assert_eq!(c.checkpoint_dir.as_deref(), Some(std::path::Path::new("/tmp/ck")));
        assert!(parse_args(&s(&["doctor", "--wat"])).is_err());
        assert!(parse_args(&s(&["doctor", "--shards"])).is_err());
    }

    #[test]
    fn serve_emits_prometheus_metrics() {
        let cfg = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 2,
            producers: 1,
            batch: 32,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 1,
            threshold: 0.0,
            top: 5,
            metrics: Some(ExportFormat::Prometheus),
            metrics_out: None,
            metrics_interval: None,
            checkpoint_dir: None,
            checkpoint_interval: 30,
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut lines = Vec::new();
        for i in 0..20_000u32 {
            lines.push(format!("flow-{}\t{i}", i % 4));
        }
        let mut out = Vec::new();
        run_serve(cfg, &mut lines.into_iter(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("# TYPE engine_items_enqueued_total counter"), "{text}");
        assert!(text.contains("engine_items_enqueued_total{shard=\"0\"}"), "{text}");
        assert!(text.contains("engine_batch_occupancy_bucket"), "{text}");
        assert!(text.contains("smb_morph_events_total"), "{text}");
        // --trace-sample 1 fills the per-stage histograms, and the
        // flight-recorder gauges ride along with engine telemetry.
        assert!(
            text.contains("engine_stage_duration_ns_bucket{shard=\"0\",stage=\"record_batch\""),
            "{text}"
        );
        assert!(text.contains("smb_flight_events_total"), "{text}");
        assert!(text.contains("smb_flight_capacity"), "{text}");
    }

    #[test]
    fn serve_writes_json_metrics_file() {
        let path = std::env::temp_dir().join(format!(
            "smbcount-metrics-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id(),
        ));
        let cfg = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 1,
            producers: 1,
            batch: 32,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
            threshold: 0.0,
            top: 5,
            metrics: Some(ExportFormat::Json),
            metrics_out: Some(path.clone()),
            metrics_interval: None,
            checkpoint_dir: None,
            checkpoint_interval: 30,
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut lines = (0..500u32).map(|i| format!("f\t{i}"));
        let mut out = Vec::new();
        run_serve(cfg, &mut lines, &mut out).unwrap();
        let report = String::from_utf8(out).unwrap();
        assert!(
            !report.contains("\"registry\""),
            "metrics must go to the file, not the report: {report}"
        );
        let written = std::fs::read_to_string(&path).expect("metrics file written");
        let _ = std::fs::remove_file(&path);
        let parsed = smb_devtools::Json::parse(&written).expect("valid JSON");
        assert_eq!(
            parsed.field("registry").unwrap().as_str().unwrap(),
            "smb_engine"
        );
    }

    #[test]
    fn morphlog_streams_json_lines() {
        let cfg = MorphlogConfig {
            memory_bits: 2048,
            n_max: 1e5,
            last: None,
        };
        let mut lines = (0..50_000u32).map(|i| format!("item-{i}"));
        let mut out = Vec::new();
        run_morphlog(cfg, &mut lines, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut morphs = 0u32;
        let mut finals = 0u32;
        let mut last_round = None::<u64>;
        for line in text.lines() {
            let obj = smb_devtools::Json::parse(line).expect("each line is one JSON object");
            match obj.field("event").unwrap().as_str().unwrap() {
                "morph" => {
                    morphs += 1;
                    let round = obj.field("round").unwrap().as_u64().unwrap();
                    match last_round {
                        Some(p) => assert_eq!(round, p + 1, "rounds close in order"),
                        None => assert_eq!(round, 0, "first morph closes round 0"),
                    }
                    last_round = Some(round);
                    assert!(obj.field("estimate_at_close").unwrap().as_f64().unwrap() > 0.0);
                }
                "final" => {
                    finals += 1;
                    assert_eq!(obj.field("items_total").unwrap().as_u64().unwrap(), 50_000);
                }
                other => panic!("unexpected event {other}"),
            }
        }
        assert!(morphs > 0, "50k items over 2048 bits must morph: {text}");
        assert_eq!(finals, 1);
        assert!(text.lines().last().unwrap().contains("final"));
    }

    #[test]
    fn morphlog_last_emits_only_the_final_window() {
        let cfg = MorphlogConfig {
            memory_bits: 2048,
            n_max: 1e5,
            last: Some(5),
        };
        let mut lines = (0..50_000u32).map(|i| format!("item-{i}"));
        let mut out = Vec::new();
        run_morphlog(cfg, &mut lines, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "5 flight events + 1 final: {text}");
        let mut last_round = None::<u64>;
        for line in &lines[..5] {
            let obj = smb_devtools::Json::parse(line).expect("each line is one JSON object");
            assert_eq!(obj.field("event").unwrap().as_str().unwrap(), "flight");
            assert_eq!(obj.field("kind").unwrap().as_str().unwrap(), "morph");
            let round = obj.field("round").unwrap().as_u64().unwrap();
            if let Some(p) = last_round {
                assert_eq!(round, p + 1, "window preserves round order: {text}");
            }
            last_round = Some(round);
        }
        let summary = smb_devtools::Json::parse(lines[5]).unwrap();
        assert_eq!(summary.field("event").unwrap().as_str().unwrap(), "final");
        assert_eq!(summary.field("window").unwrap().as_u64().unwrap(), 5);
        assert!(
            summary.field("events_recorded").unwrap().as_u64().unwrap() > 5,
            "50k items morph far more than 5 times: {text}"
        );
        // The retained rounds are the LAST ones, not the first.
        assert!(last_round.unwrap() >= 5, "{text}");
    }

    #[test]
    fn doctor_emits_one_parseable_snapshot() {
        let cfg = DoctorConfig {
            memory_bits: 2048,
            shards: 2,
            batch: 32,
            top: 3,
            checkpoint_dir: None,
        };
        let mut lines = Vec::new();
        for i in 0..30_000u32 {
            lines.push(format!("hot\t{i}"));
        }
        for f in 0..20u32 {
            lines.push(format!("cold-{f}\tonly-item"));
        }
        lines.push("malformed".into());
        let mut out = Vec::new();
        run_doctor(cfg, &mut lines.into_iter(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1, "one JSON object on one line");
        let doc = smb_devtools::Json::parse(&text).expect("doctor output parses");

        assert_eq!(doc.field("skipped_lines").unwrap().as_u64().unwrap(), 1);
        assert_eq!(doc.field("items_recorded").unwrap().as_u64().unwrap(), 30_020);
        assert_eq!(doc.field("flows").unwrap().as_u64().unwrap(), 21);

        let tiers = doc.field("tier_census").unwrap();
        assert!(
            tiers.field("full").unwrap().as_u64().unwrap() >= 1,
            "the hot flow must materialize a full estimator: {text}"
        );
        assert!(tiers.field("small").unwrap().as_u64().unwrap() >= 1, "{text}");

        let queues = doc.field("queue_depths").unwrap().as_arr().unwrap();
        assert_eq!(queues.len(), 2, "one entry per shard");
        for q in queues {
            assert_eq!(q.field("depth").unwrap().as_u64().unwrap(), 0, "drained after flush");
            assert!(q.field("batches_sent").unwrap().as_u64().is_ok());
        }

        let producer = doc.field("producer_counters").unwrap();
        assert_eq!(producer.field("items").unwrap().as_u64().unwrap(), 30_020);

        let morph = doc.field("morph").unwrap();
        let events = morph.field("events_total").unwrap().as_u64().unwrap();
        assert!(events > 0, "30k items over 2048 bits must morph: {text}");
        let hot = morph.field("hot_flows").unwrap().as_arr().unwrap();
        assert!(!hot.is_empty() && hot.len() <= 3, "{text}");
        assert!(hot[0].field("estimate").unwrap().as_f64().unwrap() > 10_000.0, "{text}");

        let window = doc.field("flight_window").unwrap().as_arr().unwrap();
        assert!(!window.is_empty(), "morphs land in the flight window: {text}");
        assert_eq!(
            window.last().unwrap().field("kind").unwrap().as_str().unwrap(),
            "morph"
        );
        assert!(
            doc.field("flight").unwrap().field("recorded_total").unwrap().as_u64().unwrap()
                >= events,
            "{text}"
        );

        let stages = doc.field("stage_ns").unwrap().as_arr().unwrap();
        let stage_names: Vec<String> = stages
            .iter()
            .map(|s| s.field("stage").unwrap().as_str().unwrap().to_string())
            .collect();
        for needed in ["producer_hash", "enqueue", "queue_wait", "record_batch", "query_sweep"] {
            assert!(stage_names.iter().any(|s| s == needed), "missing {needed}: {text}");
        }
        assert!(
            stages
                .iter()
                .filter(|s| s.field("stage").unwrap().as_str().unwrap() == "record_batch")
                .all(|s| s.field("count").unwrap().as_u64().unwrap() > 0),
            "doctor traces every batch: {text}"
        );

        let ckpt = doc.field("checkpoint").unwrap();
        assert!(matches!(ckpt.field("enabled").unwrap(), smb_devtools::Json::Bool(false)));
    }

    #[test]
    fn doctor_checkpoint_dir_reports_the_epoch() {
        let dir = std::env::temp_dir().join(format!(
            "smbcount-doctor-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DoctorConfig {
            memory_bits: 2048,
            shards: 1,
            batch: 32,
            top: 2,
            checkpoint_dir: Some(dir.clone()),
        };
        let mut lines = (0..5_000u32).map(|i| format!("f\t{i}"));
        let mut out = Vec::new();
        run_doctor(cfg, &mut lines, &mut out).unwrap();
        let doc = smb_devtools::Json::parse(&String::from_utf8(out).unwrap()).unwrap();
        let ckpt = doc.field("checkpoint").unwrap();
        assert!(matches!(ckpt.field("enabled").unwrap(), smb_devtools::Json::Bool(true)));
        assert_eq!(ckpt.field("epoch").unwrap().as_u64().unwrap(), 0);
        // The checkpoint itself is a lifecycle event in the window.
        let window = doc.field("flight_window").unwrap().as_arr().unwrap();
        assert!(window
            .iter()
            .any(|e| e.field("kind").unwrap().as_str().unwrap() == "checkpoint"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn count_estimates_distinct_lines() {
        let cfg = CountConfig {
            algo: Algo::Smb,
            memory_bits: 8192,
            exact: true,
        };
        let mut lines = (0..10_000u32)
            .chain(0..10_000) // full duplicate pass
            .map(|i| format!("user-{i}"));
        let mut out = Vec::new();
        run_count(cfg, &mut lines, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("items        : 20000"), "{text}");
        assert!(text.contains("exact        : 10000"), "{text}");
        // Estimate within 15%.
        let est: f64 = text
            .lines()
            .find(|l| l.starts_with("estimate"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|v| v.parse().ok())
            .expect("estimate line");
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.15, "{est}");
    }

    #[test]
    fn count_works_for_every_algo() {
        for algo in smb_factory::ALL_ALGOS {
            let cfg = CountConfig {
                algo,
                memory_bits: 8192,
                exact: false,
            };
            let mut lines = (0..5000u32).map(|i| format!("item-{i}"));
            let mut out = Vec::new();
            run_count(cfg, &mut lines, &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            let est: f64 = text
                .lines()
                .find(|l| l.starts_with("estimate"))
                .and_then(|l| l.split_whitespace().nth(2))
                .and_then(|v| v.parse().ok())
                .expect("estimate line");
            assert!(
                (est - 5000.0).abs() / 5000.0 < 0.4,
                "{}: estimate {est}",
                algo.name()
            );
        }
    }

    #[test]
    fn flows_ranks_heavy_flow_first() {
        let cfg = FlowsConfig {
            memory_bits: 2048,
            threshold: 100.0,
            top: 5,
        };
        let mut lines = Vec::new();
        for i in 0..3000u32 {
            lines.push(format!("heavy\t{i}"));
        }
        for i in 0..50u32 {
            lines.push(format!("light\t{i}"));
        }
        let mut out = Vec::new();
        run_flows(cfg, &mut lines.into_iter(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("flows tracked: 2"), "{text}");
        // Only the heavy flow clears the threshold.
        assert_eq!(text.lines().count(), 2, "{text}");
    }

    #[test]
    fn flows_skips_malformed_lines() {
        let cfg = FlowsConfig {
            memory_bits: 2048,
            threshold: 0.0,
            top: 10,
        };
        let mut lines = vec!["good\titem".to_string(), "bad-line".to_string(), "".to_string()]
            .into_iter();
        let mut out = Vec::new();
        run_flows(cfg, &mut lines, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("skipped 2"), "{text}");
    }

    #[test]
    fn serve_reports_flows_and_stats() {
        let cfg = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 2,
            producers: 1,
            batch: 64,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
            threshold: 100.0,
            top: 5,
            metrics: None,
            metrics_out: None,
            metrics_interval: None,
            checkpoint_dir: None,
            checkpoint_interval: 30,
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut lines = Vec::new();
        for i in 0..3000u32 {
            lines.push(format!("heavy\t{i}"));
        }
        for i in 0..50u32 {
            lines.push(format!("light\t{i}"));
        }
        lines.push("malformed".into());
        let mut out = Vec::new();
        run_serve(cfg, &mut lines.into_iter(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("flows tracked: 2"), "{text}");
        assert!(text.contains("skipped 1"), "{text}");
        assert!(text.contains("2 shard(s)"), "{text}");
        assert!(text.contains("enqueued"), "{text}");
        // Only the heavy flow clears the threshold; its estimate is
        // the last line.
        let last = text.lines().last().unwrap();
        let est: f64 = last.split('\t').nth(1).unwrap().parse().unwrap();
        assert!((est - 3000.0).abs() / 3000.0 < 0.3, "{est}");
    }

    #[test]
    fn serve_and_flows_report_same_flow_count() {
        let mut trace_out = Vec::new();
        run_trace(TraceCliConfig { flows: 150, seed: 4 }, &mut trace_out).unwrap();
        let text = String::from_utf8(trace_out).unwrap();
        let serve_cfg = ServeConfig {
            algo: Algo::Smb,
            memory_bits: 2048,
            shards: 3,
            producers: 1,
            batch: 32,
            queue_batches: 4,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
            threshold: 0.0,
            top: 5,
            metrics: None,
            metrics_out: None,
            metrics_interval: None,
            checkpoint_dir: None,
            checkpoint_interval: 30,
            checkpoint_format: CheckpointFormat::default(),
            listen: None,
        };
        let mut out = Vec::new();
        run_serve(serve_cfg, &mut text.lines().map(|l| l.to_string()), &mut out).unwrap();
        let report = String::from_utf8(out).unwrap();
        assert!(report.contains("flows tracked: 150"), "{report}");
    }

    #[test]
    fn trace_emits_parsable_lines() {
        let cfg = TraceCliConfig { flows: 50, seed: 3 };
        let mut out = Vec::new();
        run_trace(cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().count() > 50);
        for line in text.lines().take(100) {
            let mut parts = line.split('\t');
            parts.next().unwrap().parse::<u32>().unwrap();
            parts.next().unwrap().parse::<u32>().unwrap();
        }
    }

    #[test]
    fn trace_then_flows_roundtrip() {
        // The CLI's own trace feeds its own flows command.
        let mut trace_out = Vec::new();
        run_trace(TraceCliConfig { flows: 200, seed: 9 }, &mut trace_out).unwrap();
        let text = String::from_utf8(trace_out).unwrap();
        let cfg = FlowsConfig {
            memory_bits: 2048,
            threshold: 0.0,
            top: 5,
        };
        let mut out = Vec::new();
        run_flows(cfg, &mut text.lines().map(|l| l.to_string()), &mut out).unwrap();
        let report = String::from_utf8(out).unwrap();
        assert!(report.contains("flows tracked: 200"), "{report}");
    }
}
