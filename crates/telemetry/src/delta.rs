//! The cheap observer path: thread-local delta folding for estimator
//! events.
//!
//! [`MetricsObserver`](crate::MetricsObserver) performs one atomic RMW
//! per metric cell per event — seven contended atomics every time any
//! estimator morphs, clears or saturates. That is fine for a single
//! estimator but shows up on the ingest hot path once every shard
//! worker funnels events into the same engine-wide cells.
//!
//! [`BatchedMetricsObserver`] folds events into **plain thread-local
//! buffers** instead: event delivery touches no shared memory at all,
//! and the accumulated deltas are applied to the registry cells with
//! `Relaxed` ordering when the owning thread calls
//! [`BatchedMetricsObserver::flush_local`] — in the engine, once per
//! processed batch (and at `flush`/`finish` barriers), not once per
//! event.
//!
//! ## Memory-ordering argument (DESIGN.md §14)
//!
//! All folded cells are monotone counters, `set_max` gauges, last-write
//! gauges or histograms — none participate in any synchronization
//! protocol, so `Relaxed` application is sufficient for their values.
//! *Visibility* is provided by whatever barrier the caller already
//! owns: the engine worker flushes deltas **before** its
//! `batches_processed.add_release(1)`, and the engine's `flush()`
//! barrier reads that counter with `Acquire` — so by the time a flush
//! returns, every delta folded for a processed batch is visible to the
//! flushing thread, with zero added fences on the event path.
//!
//! ## Loss semantics
//!
//! Deltas folded by a thread that exits without a final
//! [`BatchedMetricsObserver::flush_local`] are dropped. With the
//! engine's flush points this bounds loss to the events of the batch
//! being processed when a worker dies — a worker panic already loses
//! that batch's items, so the metrics stay consistent with the data.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smb_core::{EstimatorEvent, ObserverHandle, SmbObserver};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::registry::Registry;

/// Allocator for observer identities — the key into the thread-local
/// buffer table, unique per [`BatchedMetricsObserver`] for the process
/// lifetime.
static NEXT_OBSERVER_ID: AtomicU64 = AtomicU64::new(0);

/// Cap on buffered histogram samples per observer per thread. A
/// thread that folds this many morph samples without flushing spills
/// them straight to the histogram cell so the buffer stays bounded
/// even without a cooperating flush cadence.
const SAMPLE_SPILL: usize = 256;

/// One thread's pending deltas for one observer.
#[derive(Debug, Default)]
struct Deltas {
    morphs: u64,
    /// Highest `round + 1` seen since the last flush (0 = none).
    round_max: i64,
    /// Last-write values for the point-in-time gauges.
    logical_last: Option<i64>,
    estimate_last: Option<i64>,
    /// Buffered `items_since_last_morph` histogram samples.
    items_samples: Vec<u64>,
    cleared: u64,
    saturated: u64,
}

impl Deltas {
    fn is_empty(&self) -> bool {
        self.morphs == 0
            && self.cleared == 0
            && self.saturated == 0
            && self.round_max == 0
            && self.logical_last.is_none()
            && self.estimate_last.is_none()
            && self.items_samples.is_empty()
    }

    /// Reset to empty, keeping the sample buffer's capacity.
    fn clear(&mut self) {
        self.morphs = 0;
        self.round_max = 0;
        self.logical_last = None;
        self.estimate_last = None;
        self.items_samples.clear();
        self.cleared = 0;
        self.saturated = 0;
    }
}

thread_local! {
    /// This thread's delta buffers, keyed by observer id. A linear
    /// scan: a thread observes a handful of observers (usually one),
    /// so a Vec beats any map.
    static LOCAL: RefCell<Vec<(u64, Deltas)>> = const { RefCell::new(Vec::new()) };
}

/// An [`SmbObserver`] that folds estimator lifecycle events into
/// thread-local delta buffers and applies them to [`Registry`] cells
/// only on explicit [`flush_local`](BatchedMetricsObserver::flush_local)
/// calls.
///
/// Registers **the same metric families** as
/// [`MetricsObserver`](crate::MetricsObserver) (`smb_morph_events_total`,
/// `smb_round`, `smb_logical_size_bits`, `smb_items_between_morphs`,
/// `smb_estimate_at_close`, `smb_cleared_total`, `smb_saturated_total`);
/// after every thread that folded events has flushed, counter totals
/// and histogram contents are identical to the per-event observer's.
/// The last-write gauges (`smb_logical_size_bits`,
/// `smb_estimate_at_close`) carry *a* latest-flushed value when several
/// threads race — exactly as racy as the per-event path, where
/// concurrent `set` calls interleave arbitrarily.
///
/// ```
/// use smb_core::CardinalityEstimator;
/// use smb_telemetry::{BatchedMetricsObserver, Registry};
///
/// let registry = Registry::new("smb_engine");
/// let observer = BatchedMetricsObserver::register(&registry, &[]);
/// let mut smb = smb_core::Smb::new(2048, 256).unwrap();
/// smb.set_observer(Some(observer.clone().into_handle()));
/// for i in 0..100_000u64 {
///     smb.record(&i.to_le_bytes());
/// }
/// observer.flush_local(); // batch boundary
/// let snap = registry.snapshot();
/// assert!(snap.counter_total("smb_morph_events_total") > 0);
/// ```
#[derive(Debug)]
pub struct BatchedMetricsObserver {
    id: u64,
    morphs: Arc<Counter>,
    round: Arc<Gauge>,
    logical_size: Arc<Gauge>,
    items_between_morphs: Arc<Histogram>,
    estimate_at_close: Arc<Gauge>,
    cleared: Arc<Counter>,
    saturated: Arc<Counter>,
}

impl BatchedMetricsObserver {
    /// Register the morph-event metric families in `registry` (all
    /// carrying `labels`) and build a batched observer feeding them.
    /// Series resolution happens here, once; event delivery touches
    /// only thread-local state.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Arc<Self> {
        Arc::new(BatchedMetricsObserver {
            id: NEXT_OBSERVER_ID.fetch_add(1, Ordering::Relaxed),
            morphs: registry.counter_with(
                "smb_morph_events_total",
                "SMB rounds closed (morphs performed)",
                labels,
            ),
            round: registry.gauge_with(
                "smb_round",
                "Highest SMB round reached (sampling probability is 2^-round)",
                labels,
            ),
            logical_size: registry.gauge_with(
                "smb_logical_size_bits",
                "Logical bitmap size m - r*T at the latest morph",
                labels,
            ),
            items_between_morphs: registry.histogram_with(
                "smb_items_between_morphs",
                "Items recorded between consecutive morphs",
                labels,
            ),
            estimate_at_close: registry.gauge_with(
                "smb_estimate_at_close",
                "Cardinality estimate at the latest round closure (rounded)",
                labels,
            ),
            cleared: registry.counter_with(
                "smb_cleared_total",
                "Estimator clear() calls observed",
                labels,
            ),
            saturated: registry.counter_with(
                "smb_saturated_total",
                "Estimators that reached saturation",
                labels,
            ),
        })
    }

    /// Wrap into the handle `CardinalityEstimator::set_observer`
    /// accepts. The observer stays shared: clone the `Arc` first if
    /// you also need to call `flush_local` (the engine does).
    pub fn into_handle(self: Arc<Self>) -> ObserverHandle {
        ObserverHandle::new(self)
    }

    /// Apply the **calling thread's** pending deltas to the registry
    /// cells with `Relaxed` ordering, and clear them. Cheap when there
    /// is nothing pending (one thread-local read). Each thread that
    /// folds events must flush from that same thread — deltas are
    /// thread-local by design.
    pub fn flush_local(&self) {
        LOCAL.with_borrow_mut(|bufs| {
            let Some((_, deltas)) = bufs.iter_mut().find(|(id, _)| *id == self.id) else {
                return;
            };
            if deltas.is_empty() {
                return;
            }
            self.apply(deltas);
        });
    }

    /// Fold `deltas` into the cells and clear it. All applications are
    /// `Relaxed`: see the module docs for why that is enough.
    fn apply(&self, deltas: &mut Deltas) {
        if deltas.morphs > 0 {
            self.morphs.add(deltas.morphs);
        }
        if deltas.round_max > 0 {
            self.round.set_max(deltas.round_max);
        }
        if let Some(logical) = deltas.logical_last {
            self.logical_size.set(logical);
        }
        if let Some(estimate) = deltas.estimate_last {
            self.estimate_at_close.set(estimate);
        }
        for &sample in &deltas.items_samples {
            self.items_between_morphs.record(sample);
        }
        if deltas.cleared > 0 {
            self.cleared.add(deltas.cleared);
        }
        if deltas.saturated > 0 {
            self.saturated.add(deltas.saturated);
        }
        deltas.clear();
    }
}

impl SmbObserver for BatchedMetricsObserver {
    fn on_event(&self, event: EstimatorEvent<'_>) {
        LOCAL.with_borrow_mut(|bufs| {
            let deltas = match bufs.iter_mut().position(|(id, _)| *id == self.id) {
                Some(i) => &mut bufs[i].1,
                None => {
                    bufs.push((self.id, Deltas::default()));
                    &mut bufs.last_mut().expect("just pushed").1
                }
            };
            match event {
                EstimatorEvent::Morph(m) => {
                    deltas.morphs += 1;
                    deltas.round_max = deltas.round_max.max(m.round as i64 + 1);
                    deltas.logical_last = Some(m.logical_size as i64);
                    deltas.estimate_last = Some(m.estimate_at_close.round() as i64);
                    deltas.items_samples.push(m.items_since_last_morph);
                    if deltas.items_samples.len() >= SAMPLE_SPILL {
                        // Bounded buffering without a cooperating
                        // flush cadence: spill samples to the
                        // histogram cell directly.
                        for &sample in &deltas.items_samples {
                            self.items_between_morphs.record(sample);
                        }
                        deltas.items_samples.clear();
                    }
                }
                EstimatorEvent::Cleared { .. } => deltas.cleared += 1,
                EstimatorEvent::Saturated { .. } => deltas.saturated += 1,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::MetricsObserver;
    use smb_core::{CardinalityEstimator, MorphEvent, Smb};

    fn morph(round: u32, items: u64) -> MorphEvent {
        MorphEvent {
            round,
            fresh_bits_at_close: 256,
            logical_size: 2048 - 256 * round as usize,
            items_since_last_morph: items,
            estimate_at_close: 1000.0 * (round as f64 + 1.0),
        }
    }

    #[test]
    fn nothing_visible_before_flush_everything_after() {
        let registry = Registry::new("t");
        let observer = BatchedMetricsObserver::register(&registry, &[]);
        for round in 0..5u32 {
            observer.on_event(EstimatorEvent::Morph(&morph(round, 100 << round)));
        }
        observer.on_event(EstimatorEvent::Cleared { name: "SMB" });
        let before = registry.snapshot();
        assert_eq!(before.counter_total("smb_morph_events_total"), 0);
        assert_eq!(before.counter_total("smb_cleared_total"), 0);

        observer.flush_local();
        let after = registry.snapshot();
        assert_eq!(after.counter_total("smb_morph_events_total"), 5);
        assert_eq!(after.counter_total("smb_cleared_total"), 1);
        assert_eq!(
            after.get("smb_round", &[]).unwrap().as_gauge(),
            Some(5),
            "round gauge folds the max"
        );
        let h = after
            .get("smb_items_between_morphs", &[])
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(h.count, 5);
        // Flushing again with nothing pending changes nothing.
        observer.flush_local();
        assert_eq!(
            registry.snapshot().counter_total("smb_morph_events_total"),
            5
        );
    }

    #[test]
    fn batched_matches_per_event_observer_after_flush() {
        // The same live estimator stream through both observers must
        // leave identical registry state once the batched side flushes.
        let per_event_reg = Registry::new("t");
        let batched_reg = Registry::new("t");
        let per_event = MetricsObserver::register(&per_event_reg, &[]).into_handle();
        let batched = BatchedMetricsObserver::register(&batched_reg, &[]);

        let mut a = Smb::new(2048, 256).unwrap();
        a.set_observer(Some(per_event));
        let mut b = Smb::new(2048, 256).unwrap();
        b.set_observer(Some(batched.clone().into_handle()));
        for i in 0..120_000u64 {
            a.record(&i.to_le_bytes());
            b.record(&i.to_le_bytes());
        }
        a.clear();
        b.clear();
        batched.flush_local();

        let pe = per_event_reg.snapshot();
        let ba = batched_reg.snapshot();
        for counter in [
            "smb_morph_events_total",
            "smb_cleared_total",
            "smb_saturated_total",
        ] {
            assert_eq!(pe.counter_total(counter), ba.counter_total(counter), "{counter}");
        }
        for gauge in ["smb_round", "smb_logical_size_bits", "smb_estimate_at_close"] {
            assert_eq!(
                pe.get(gauge, &[]).unwrap().as_gauge(),
                ba.get(gauge, &[]).unwrap().as_gauge(),
                "{gauge}"
            );
        }
        let ph = pe
            .get("smb_items_between_morphs", &[])
            .unwrap()
            .as_histogram()
            .unwrap();
        let bh = ba
            .get("smb_items_between_morphs", &[])
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(ph.count, bh.count);
        assert_eq!(ph.sum, bh.sum);
        assert_eq!(ph.buckets, bh.buckets);
    }

    #[test]
    fn observers_do_not_cross_talk_in_one_thread() {
        let registry = Registry::new("t");
        let a = BatchedMetricsObserver::register(&registry, &[("shard", "0")]);
        let b = BatchedMetricsObserver::register(&registry, &[("shard", "1")]);
        a.on_event(EstimatorEvent::Morph(&morph(0, 10)));
        a.on_event(EstimatorEvent::Morph(&morph(1, 20)));
        b.on_event(EstimatorEvent::Morph(&morph(0, 30)));
        a.flush_local();
        b.flush_local();
        let snap = registry.snapshot();
        let count = |shard: &str| {
            snap.get("smb_morph_events_total", &[("shard", shard)])
                .unwrap()
                .as_counter()
                .unwrap()
        };
        assert_eq!(count("0"), 2);
        assert_eq!(count("1"), 1);
    }

    #[test]
    fn sample_buffer_spills_without_flush_and_loses_nothing() {
        let registry = Registry::new("t");
        let observer = BatchedMetricsObserver::register(&registry, &[]);
        let events = 3 * SAMPLE_SPILL + 17;
        for i in 0..events {
            observer.on_event(EstimatorEvent::Morph(&morph(0, i as u64 + 1)));
        }
        observer.flush_local();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("smb_morph_events_total"), events as u64);
        let h = snap
            .get("smb_items_between_morphs", &[])
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(h.count, events as u64, "spilled and flushed samples all land");
    }

    #[test]
    fn per_thread_deltas_sum_across_threads() {
        let registry = Registry::new("t");
        let observer = BatchedMetricsObserver::register(&registry, &[]);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let observer = Arc::clone(&observer);
                s.spawn(move || {
                    for i in 0..25 {
                        observer.on_event(EstimatorEvent::Morph(&morph(
                            (t as u32) % 3,
                            t * 100 + i,
                        )));
                    }
                    // Each thread flushes its own deltas.
                    observer.flush_local();
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("smb_morph_events_total"), 100);
        let h = snap
            .get("smb_items_between_morphs", &[])
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(h.count, 100);
    }

    #[test]
    fn unflushed_thread_deltas_are_dropped_not_corrupted() {
        let registry = Registry::new("t");
        let observer = BatchedMetricsObserver::register(&registry, &[]);
        std::thread::scope(|s| {
            let observer = Arc::clone(&observer);
            s.spawn(move || {
                observer.on_event(EstimatorEvent::Morph(&morph(0, 42)));
                // No flush: this thread's deltas die with it.
            });
        });
        observer.flush_local(); // flushes *this* thread's (empty) buffer
        assert_eq!(
            registry.snapshot().counter_total("smb_morph_events_total"),
            0,
            "documented loss semantics: unflushed thread-local deltas are dropped"
        );
    }
}
