//! A background thread that periodically renders a registry snapshot
//! and hands the text to a sink (stderr, a file, a collector...).

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::ExportFormat;
use crate::registry::Registry;

struct Shared {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// A periodic metrics reporter. Stops (promptly — the sleep is
/// interruptible) and joins its thread on [`Reporter::stop`] or drop.
#[derive(Debug)]
pub struct Reporter {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl Reporter {
    /// Spawn a thread that renders `registry` in `format` every
    /// `interval` and passes the text to `sink`.
    pub fn spawn(
        registry: Arc<Registry>,
        format: ExportFormat,
        interval: Duration,
        mut sink: impl FnMut(String) + Send + 'static,
    ) -> Reporter {
        let shared = Arc::new(Shared {
            stopped: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("smb-metrics-reporter".into())
            .spawn(move || {
                let mut stopped = thread_shared.stopped.lock().expect("reporter lock");
                loop {
                    // Check the flag *before* waiting: stop() may have
                    // set it and notified while this thread was still
                    // starting up or rendering a report (lock dropped
                    // below) — a notification sent then is lost, and
                    // entering wait_timeout anyway would sleep a full
                    // interval before noticing.
                    if *stopped {
                        return;
                    }
                    let (guard, timeout) = thread_shared
                        .wake
                        .wait_timeout(stopped, interval)
                        .expect("reporter lock");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        // Render without holding the lock so a slow
                        // sink cannot delay stop() acknowledgement...
                        // except it would; the lock only guards the
                        // flag, and we re-take it on the next loop.
                        drop(stopped);
                        sink(format.render(&registry.snapshot()));
                        stopped = thread_shared.stopped.lock().expect("reporter lock");
                    }
                }
            })
            .expect("spawn metrics reporter");
        Reporter {
            shared,
            handle: Some(handle),
        }
    }

    /// Signal the thread to exit and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            *self.shared.stopped.lock().expect("reporter lock") = true;
            self.shared.wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_devtools::Json;

    #[test]
    fn reporter_emits_parseable_snapshots_and_stops() {
        let registry = Arc::new(Registry::new("t"));
        registry.counter("ticks_total", "ticks").add(7);
        let reports: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_reports = Arc::clone(&reports);
        let reporter = Reporter::spawn(
            Arc::clone(&registry),
            ExportFormat::Json,
            Duration::from_millis(5),
            move |text| sink_reports.lock().unwrap().push(text),
        );
        // Wait until at least one report lands (bounded, not sleep-based).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while reports.lock().unwrap().is_empty() {
            assert!(std::time::Instant::now() < deadline, "no report within 5s");
            std::thread::yield_now();
        }
        reporter.stop();
        let reports = reports.lock().unwrap();
        let parsed = Json::parse(&reports[0]).expect("valid JSON report");
        assert_eq!(parsed.field("registry").unwrap().as_str().unwrap(), "t");
    }

    #[test]
    fn drop_joins_without_hanging() {
        let registry = Arc::new(Registry::new("t"));
        let reporter = Reporter::spawn(
            registry,
            ExportFormat::Prometheus,
            Duration::from_secs(3600),
            |_| {},
        );
        // A one-hour interval must not block drop.
        drop(reporter);
    }
}
