//! The lock-free metric primitives: [`Counter`], [`Gauge`] and the
//! power-of-two-bucketed [`Histogram`].
//!
//! All three are plain atomic cells — updates never lock, never
//! allocate, and never fail. They are handed out as `Arc`s by the
//! [`Registry`](crate::Registry); the hot path holds the `Arc` and
//! touches only the atomics.
//!
//! Memory-ordering policy: metric updates are `Relaxed` (they are
//! monotone event counts or last-write-wins levels, never used to
//! publish other data). The two exceptions are
//! [`Counter::add_release`] / [`Counter::get_acquire`], provided for
//! callers — the sharded engine's flush protocol — that *do* use a
//! counter pair to order table writes against reads.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` with `Release` ordering — pairs with
    /// [`Counter::get_acquire`] when the counter orders preceding
    /// writes (the engine's batches-processed counter publishes the
    /// worker's table updates this way).
    #[inline]
    pub fn add_release(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Release);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Current value with `Acquire` ordering — see
    /// [`Counter::add_release`].
    #[inline]
    pub fn get_acquire(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A level that can move both ways (queue depths, resident flows).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level to `v` if it is higher than the current value
    /// (high-water marks, e.g. the largest SMB round observed).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `n` (possibly negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets: bucket `i` counts values `v` with
/// `2^(i−1) < v ≤ 2^i` (bucket 0 holds `v ≤ 1`); the last bucket
/// absorbs everything larger, playing Prometheus's `+Inf` role.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples with power-of-two bucket
/// boundaries.
///
/// Power-of-two buckets cost one `leading_zeros` per record — no
/// float math, no searches — and give ≤ 2× relative quantile error,
/// plenty for latency/occupancy monitoring. Quantiles interpolate
/// linearly inside the winning bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index whose upper bound `2^i` first covers `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` acts as +Inf).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum() as f64 / self.count() as f64
    }

    /// A point-in-time copy of the bucket counts and derived
    /// summaries. Concurrent recording may tear between cells; each
    /// cell is individually consistent, which is all a monitoring
    /// snapshot needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive totals from the copied cells so quantile ranks are
        // consistent with the buckets even under concurrent writes.
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let highest = counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
            .max(1);
        let mut cumulative = 0u64;
        let buckets: Vec<(u64, u64)> = counts[..highest]
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cumulative += c;
                (bucket_upper_bound(i), cumulative)
            })
            .collect();
        HistogramSnapshot {
            p50: quantile(&counts, count, 0.50),
            p95: quantile(&counts, count, 0.95),
            p99: quantile(&counts, count, 0.99),
            count,
            sum,
            buckets,
        }
    }
}

/// Quantile estimate from per-bucket counts: find the bucket holding
/// the target rank, interpolate linearly inside it.
///
/// Edge cases are deterministic so exporters and gates never see a
/// surprise value: an empty histogram reports `0.0` (not `NaN`, which
/// JSON cannot carry and threshold comparisons silently absorb), and
/// a histogram whose samples all landed in one bucket reports that
/// bucket's upper bound for every `q` — interpolating inside the only
/// occupied bucket would fabricate a spread the data never showed.
fn quantile(counts: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut occupied = counts.iter().enumerate().filter(|(_, &c)| c > 0);
    if let (Some((only, _)), None) = (occupied.next(), occupied.next()) {
        return bucket_upper_bound(only) as f64;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let prev = cumulative;
        cumulative += c;
        if cumulative >= rank {
            let lo = if i == 0 { 0.0 } else { bucket_upper_bound(i - 1) as f64 };
            let hi = bucket_upper_bound(i) as f64;
            let frac = (rank - prev) as f64 / c as f64;
            return lo + (hi - lo) * frac;
        }
    }
    bucket_upper_bound(HISTOGRAM_BUCKETS - 1) as f64
}

/// A point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(upper_bound, cumulative_count)` pairs up to the highest
    /// non-empty bucket (Prometheus `le` semantics); the final
    /// `u64::MAX` bound renders as `+Inf`.
    pub buckets: Vec<(u64, u64)>,
    /// Median estimate (`0.0` when empty; a single occupied bucket
    /// reports its upper bound — see the `quantile` edge cases).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean sample, `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add_release(8);
        assert_eq!(c.get_acquire(), 50);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.set_max(7);
        assert_eq!(g.get(), 12, "set_max never lowers");
        g.set_max(99);
        assert_eq!(g.get(), 99);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(10), 1024);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_count_sum_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        // Uniform 1..=1000: the true p50 is 500; power-of-two buckets
        // put it in (256, 512] — accept the bucket's span.
        assert!(snap.p50 > 256.0 && snap.p50 <= 512.0, "p50={}", snap.p50);
        assert!(snap.p95 > 512.0 && snap.p95 <= 1024.0, "p95={}", snap.p95);
        assert!(snap.p99 <= 1024.0, "p99={}", snap.p99);
        // Cumulative bucket counts end at the total.
        assert_eq!(snap.buckets.last().unwrap().1, 1000);
        // Cumulative counts are non-decreasing.
        for w in snap.buckets.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0.0);
        assert_eq!(snap.p95, 0.0);
        assert_eq!(snap.p99, 0.0);
        assert!(snap.mean().is_nan(), "mean keeps NaN: 0/0 has no answer");
        assert_eq!(snap.buckets.len(), 1, "one bucket row even when empty");
    }

    #[test]
    fn single_bucket_histogram_pins_quantiles_to_the_bucket_bound() {
        // Every sample in (512, 1024] — one occupied bucket. All
        // quantiles must report the bucket's upper bound, with no
        // fabricated spread from intra-bucket interpolation.
        let h = Histogram::new();
        for v in 513..=1024u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50, 1024.0);
        assert_eq!(snap.p95, 1024.0);
        assert_eq!(snap.p99, 1024.0);

        // Same for a single sample, and for the degenerate v ≤ 1
        // bucket whose upper bound is 1.
        let one = Histogram::new();
        one.record(0);
        let snap = one.snapshot();
        assert_eq!((snap.p50, snap.p95, snap.p99), (1.0, 1.0, 1.0));
    }

    #[test]
    fn quantile_boundary_interpolation_is_pinned() {
        // 100 samples in (1, 2] and 100 in (2, 4]: cumulative rank
        // crosses p50 exactly at the first bucket's last sample, so
        // p50 interpolates to that bucket's upper bound; p95 and p99
        // land at fractional positions inside the second bucket:
        // lo + (hi − lo) · (rank − prev)/c = 2 + 2·(rank − 100)/100.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(2);
            h.record(4);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50, 2.0, "rank 100 closes the first bucket");
        assert_eq!(snap.p95, 2.0 + 2.0 * 0.90, "rank 190 → 90% into (2,4]");
        assert_eq!(snap.p99, 2.0 + 2.0 * 0.98, "rank 198 → 98% into (2,4]");
    }

    #[test]
    fn histogram_is_shareable_across_threads() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
