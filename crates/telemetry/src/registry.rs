//! The [`Registry`]: a named collection of metric families with
//! Prometheus-style labels.
//!
//! A *family* is one metric name + help text + kind; each distinct
//! label set under the family is a *series* with its own atomic cell.
//! Registration is idempotent — asking for `("engine_queue_depth",
//! shard=3)` twice hands back the same `Arc` — so call sites never
//! coordinate. Registration takes a lock; the returned `Arc<Counter>`
//! (etc.) is then updated lock-free, so hot paths register once at
//! startup and only touch atomics afterwards.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Level that can move both ways.
    Gauge,
    /// Distribution of `u64` samples.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One label pair, e.g. `("shard", "3")`.
pub type Label = (String, String);

enum Cell {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<Label>,
    cell: Cell,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A named collection of metric families.
///
/// ```
/// use smb_telemetry::Registry;
/// let registry = Registry::new("smb_engine");
/// let drops = registry.counter_with(
///     "engine_items_dropped_total",
///     "Items dropped by backpressure",
///     &[("shard", "0")],
/// );
/// drops.add(3);
/// let snap = registry.snapshot();
/// assert_eq!(snap.metrics.len(), 1);
/// ```
pub struct Registry {
    name: String,
    families: Mutex<Vec<Family>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let families = self.families.lock().unwrap();
        f.debug_struct("Registry")
            .field("name", &self.name)
            .field("families", &families.len())
            .finish()
    }
}

/// `true` iff `s` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn is_valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` iff `s` is a legal Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`, no leading `__`).
pub fn is_valid_label_name(s: &str) -> bool {
    if s.starts_with("__") {
        return false;
    }
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry. `name` labels snapshots/exports (it is not a
    /// metric-name prefix) and must itself be a legal metric name.
    pub fn new(name: &str) -> Self {
        assert!(
            is_valid_metric_name(name),
            "invalid registry name {name:?}"
        );
        Registry {
            name: name.to_string(),
            families: Mutex::new(Vec::new()),
        }
    }

    /// The registry's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter under the given labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, MetricKind::Counter, labels) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge under the given labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, MetricKind::Gauge, labels) {
            Cell::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a histogram under the given labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, MetricKind::Histogram, labels) {
            Cell::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn series(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Cell {
        assert!(is_valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(is_valid_label_name(k), "invalid label name {k:?}");
        }
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} already registered as {:?}, requested {kind:?}",
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some(s) = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        }) {
            return clone_cell(&s.cell);
        }
        let cell = match kind {
            MetricKind::Counter => Cell::Counter(Arc::new(Counter::new())),
            MetricKind::Gauge => Cell::Gauge(Arc::new(Gauge::new())),
            MetricKind::Histogram => Cell::Histogram(Arc::new(Histogram::new())),
        };
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell: clone_cell(&cell),
        });
        cell
    }

    /// A point-in-time copy of every family and series, in
    /// registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().unwrap();
        RegistrySnapshot {
            registry: self.name.clone(),
            metrics: families
                .iter()
                .map(|f| MetricSnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|s| SeriesSnapshot {
                            labels: s.labels.clone(),
                            value: match &s.cell {
                                Cell::Counter(c) => MetricValue::Counter(c.get()),
                                Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                                Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn clone_cell(cell: &Cell) -> Cell {
    match cell {
        Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
        Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
        Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// The registry's name.
    pub registry: String,
    /// One entry per family, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The series value for `name` with exactly the given labels, if
    /// registered.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)?
            .series
            .iter()
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| &s.value)
    }

    /// Sum of a counter family across all its series (e.g. total
    /// drops over every shard).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .flat_map(|m| &m.series)
            .map(|s| match &s.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }
}

/// One family inside a [`RegistrySnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// One entry per label set, in registration order.
    pub series: Vec<SeriesSnapshot>,
}

/// One series inside a [`MetricSnapshot`].
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// The series' label pairs, in registration order.
    pub labels: Vec<Label>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A snapshotted metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The counter reading, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge reading, if this is a gauge.
    pub fn as_gauge(&self) -> Option<i64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram summary, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new("test");
        let a = r.counter("events_total", "events");
        let b = r.counter("events_total", "events");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying cell");
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    fn labels_split_series_within_one_family() {
        let r = Registry::new("test");
        let s0 = r.counter_with("drops_total", "drops", &[("shard", "0")]);
        let s1 = r.counter_with("drops_total", "drops", &[("shard", "1")]);
        s0.add(5);
        s1.add(7);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.metrics[0].series.len(), 2);
        assert_eq!(
            snap.get("drops_total", &[("shard", "0")])
                .unwrap()
                .as_counter(),
            Some(5)
        );
        assert_eq!(snap.counter_total("drops_total"), 12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new("test");
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_name_panics() {
        let r = Registry::new("test");
        r.counter("1bad-name", "x");
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_metric_name("engine_queue_depth"));
        assert!(is_valid_metric_name("ns:sub_total"));
        assert!(is_valid_metric_name("_private"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9lives"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(is_valid_label_name("shard"));
        assert!(!is_valid_label_name("__reserved"));
        assert!(!is_valid_label_name("le gal"));
        assert!(!is_valid_label_name(""));
    }

    #[test]
    fn snapshot_reflects_all_kinds() {
        let r = Registry::new("test");
        r.counter("c_total", "c").add(1);
        r.gauge("g", "g").set(-4);
        r.histogram("h", "h").record(100);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        assert_eq!(snap.get("c_total", &[]).unwrap().as_counter(), Some(1));
        assert_eq!(snap.get("g", &[]).unwrap().as_gauge(), Some(-4));
        let h = snap.get("h", &[]).unwrap().as_histogram().unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 100);
    }
}
