//! # smb-telemetry — in-tree observability for the SMB workspace
//!
//! A dependency-free telemetry layer:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] — lock-free atomic metric
//!   cells; histograms use power-of-two buckets with p50/p95/p99;
//! * [`Registry`] — named metric families with Prometheus-style
//!   labels; registration is idempotent, updates never lock;
//! * [`Registry::timer`] / [`Span`] — RAII scope timing into
//!   histograms, compiled to a no-op under the `telemetry-off`
//!   feature;
//! * [`MetricsObserver`] — an [`smb_core::SmbObserver`] folding morph
//!   / clear / saturation events into a registry;
//! * [`BatchedMetricsObserver`] — the same seven metric families fed
//!   through thread-local delta buffers, flushed on batch boundaries
//!   (the hot-path observer the sharded engine uses);
//! * [`FlightRecorder`] — a fixed-capacity lock-free ring retaining
//!   the last N morph / lifecycle events for `smbcount doctor` and
//!   `morphlog --last`;
//! * [`ExportFormat`] — render a [`RegistrySnapshot`] as compact JSON
//!   or Prometheus text exposition;
//! * [`Reporter`] — a background thread emitting snapshots on an
//!   interval.
//!
//! The `smb-engine` crate builds its per-shard statistics on these
//! primitives; the `smbcount` CLI exposes them via `serve --metrics`
//! and `morphlog`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod delta;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod observer;
pub mod registry;
pub mod reporter;
pub mod timer;

pub use delta::BatchedMetricsObserver;
pub use export::{snapshot_to_json, snapshot_to_prometheus, ExportFormat};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use metrics::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot};
pub use observer::{morph_event_to_json, MetricsObserver};
pub use registry::{
    is_valid_label_name, is_valid_metric_name, Label, MetricKind, MetricSnapshot, MetricValue,
    Registry, RegistrySnapshot, SeriesSnapshot,
};
pub use reporter::Reporter;
pub use timer::Span;
