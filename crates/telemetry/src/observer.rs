//! The bridge from `smb-core`'s estimator events to registry metrics:
//! attach a [`MetricsObserver`] to an estimator and every morph,
//! clear and saturation shows up as Prometheus-ready series.

use std::sync::Arc;

use smb_core::{EstimatorEvent, MorphEvent, ObserverHandle, SmbObserver};
use smb_devtools::Json;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::registry::Registry;

/// An [`SmbObserver`] that folds estimator lifecycle events into a
/// [`Registry`].
///
/// Series are resolved once at construction, so event delivery is
/// lock-free. All observers built against the same registry and
/// labels share cells — attach one per estimator or one for a whole
/// shard, whichever granularity the labels encode.
///
/// ```
/// use smb_core::CardinalityEstimator;
/// use smb_telemetry::{MetricsObserver, Registry};
/// use std::sync::Arc;
///
/// let registry = Arc::new(Registry::new("smb_engine"));
/// let observer = MetricsObserver::register(&registry, &[("shard", "0")]);
/// let mut smb = smb_core::Smb::new(4096, 400).unwrap();
/// smb.set_observer(Some(observer.into_handle()));
/// for i in 0..200_000u64 {
///     smb.record(&i.to_le_bytes());
/// }
/// let snap = registry.snapshot();
/// assert!(snap.counter_total("smb_morph_events_total") > 0);
/// ```
#[derive(Debug)]
pub struct MetricsObserver {
    morphs: Arc<Counter>,
    round: Arc<Gauge>,
    logical_size: Arc<Gauge>,
    items_between_morphs: Arc<Histogram>,
    estimate_at_close: Arc<Gauge>,
    cleared: Arc<Counter>,
    saturated: Arc<Counter>,
}

impl MetricsObserver {
    /// Register the morph-event metric families in `registry` (all
    /// carrying `labels`) and build an observer feeding them.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        MetricsObserver {
            morphs: registry.counter_with(
                "smb_morph_events_total",
                "SMB rounds closed (morphs performed)",
                labels,
            ),
            round: registry.gauge_with(
                "smb_round",
                "Highest SMB round reached (sampling probability is 2^-round)",
                labels,
            ),
            logical_size: registry.gauge_with(
                "smb_logical_size_bits",
                "Logical bitmap size m - r*T at the latest morph",
                labels,
            ),
            items_between_morphs: registry.histogram_with(
                "smb_items_between_morphs",
                "Items recorded between consecutive morphs",
                labels,
            ),
            estimate_at_close: registry.gauge_with(
                "smb_estimate_at_close",
                "Cardinality estimate at the latest round closure (rounded)",
                labels,
            ),
            cleared: registry.counter_with(
                "smb_cleared_total",
                "Estimator clear() calls observed",
                labels,
            ),
            saturated: registry.counter_with(
                "smb_saturated_total",
                "Estimators that reached saturation",
                labels,
            ),
        }
    }

    /// Wrap into the handle `CardinalityEstimator::set_observer`
    /// accepts.
    pub fn into_handle(self) -> ObserverHandle {
        ObserverHandle::from_observer(self)
    }
}

impl SmbObserver for MetricsObserver {
    fn on_event(&self, event: EstimatorEvent<'_>) {
        match event {
            EstimatorEvent::Morph(m) => {
                self.morphs.inc();
                self.round.set_max(m.round as i64 + 1);
                self.logical_size.set(m.logical_size as i64);
                self.items_between_morphs.record(m.items_since_last_morph);
                self.estimate_at_close
                    .set(m.estimate_at_close.round() as i64);
            }
            EstimatorEvent::Cleared { .. } => self.cleared.inc(),
            EstimatorEvent::Saturated { .. } => self.saturated.inc(),
        }
    }
}

/// A [`MorphEvent`] as one JSON object — the `smbcount morphlog`
/// line format.
pub fn morph_event_to_json(event: &MorphEvent) -> Json {
    Json::Obj(vec![
        ("round".into(), Json::Int(event.round as i128)),
        (
            "fresh_bits_at_close".into(),
            Json::Int(event.fresh_bits_at_close as i128),
        ),
        (
            "logical_size".into(),
            Json::Int(event.logical_size as i128),
        ),
        (
            "items_since_last_morph".into(),
            Json::Int(event.items_since_last_morph as i128),
        ),
        (
            "estimate_at_close".into(),
            Json::Float(event.estimate_at_close),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::{CardinalityEstimator, Smb};

    #[test]
    fn morph_events_feed_the_registry() {
        let registry = Registry::new("t");
        let observer = MetricsObserver::register(&registry, &[("shard", "0")]);
        let mut smb = Smb::new(2048, 256).unwrap();
        smb.set_observer(Some(observer.into_handle()));
        for i in 0..100_000u64 {
            smb.record(&i.to_le_bytes());
        }
        let morphs = smb.round() as u64;
        assert!(morphs > 0, "trace must morph for the test to bite");
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("smb_morph_events_total"), morphs);
        assert_eq!(
            snap.get("smb_round", &[("shard", "0")]).unwrap().as_gauge(),
            Some(morphs as i64)
        );
        let h = snap
            .get("smb_items_between_morphs", &[("shard", "0")])
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(h.count, morphs);
        let logical = snap
            .get("smb_logical_size_bits", &[("shard", "0")])
            .unwrap()
            .as_gauge()
            .unwrap();
        assert_eq!(logical, 2048 - 256 * (morphs as i64 - 1));
    }

    #[test]
    fn cleared_and_saturated_counted() {
        let registry = Registry::new("t");
        let observer = MetricsObserver::register(&registry, &[]);
        let mut smb = Smb::new(64, 8).unwrap();
        smb.set_observer(Some(observer.into_handle()));
        for i in 0..2_000_000u64 {
            smb.record(&i.to_le_bytes());
        }
        smb.clear();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("smb_cleared_total"), 1);
        assert_eq!(snap.counter_total("smb_saturated_total"), 1);
    }

    #[test]
    fn morph_event_json_shape() {
        let event = MorphEvent {
            round: 2,
            fresh_bits_at_close: 400,
            logical_size: 3296,
            items_since_last_morph: 12345,
            estimate_at_close: 67890.5,
        };
        let json = morph_event_to_json(&event);
        let text = json.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.field("round").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            parsed
                .field("items_since_last_morph")
                .unwrap()
                .as_u64()
                .unwrap(),
            12345
        );
        assert!(
            (parsed.field("estimate_at_close").unwrap().as_f64().unwrap() - 67890.5).abs()
                < 1e-9
        );
    }
}
