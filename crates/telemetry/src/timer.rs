//! RAII spans: time a scope into a histogram.
//!
//! ```
//! use smb_telemetry::Registry;
//! let registry = Registry::new("smb_engine");
//! {
//!     let _span = registry.timer("ingest.batch");
//!     // ... timed work ...
//! } // span drops here, recording elapsed nanoseconds
//! # #[cfg(not(feature = "telemetry-off"))]
//! # assert_eq!(registry.snapshot().metrics[0].name, "ingest_batch_ns");
//! ```
//!
//! With the `telemetry-off` feature enabled, [`Registry::timer`]
//! registers nothing, reads no clock, and [`Span`] is a zero-sized
//! no-op — the call compiles away entirely.

#[cfg(not(feature = "telemetry-off"))]
use std::sync::Arc;
#[cfg(not(feature = "telemetry-off"))]
use std::time::Instant;

#[cfg(not(feature = "telemetry-off"))]
use crate::metrics::Histogram;
use crate::registry::Registry;

/// Span names are free-form ("ingest.batch"); metric names are not.
/// Map every illegal character to `_` and suffix the unit.
pub(crate) fn span_metric_name(span: &str) -> String {
    let mut name: String = span
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if !name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
    {
        name.insert(0, '_');
    }
    name.push_str("_ns");
    name
}

/// A running timer that records its elapsed nanoseconds into a
/// histogram when dropped.
#[cfg(not(feature = "telemetry-off"))]
#[derive(Debug)]
pub struct Span {
    histogram: Option<Arc<Histogram>>,
    start: Instant,
}

#[cfg(not(feature = "telemetry-off"))]
impl Span {
    /// A span that times nothing and records nowhere.
    pub fn noop() -> Self {
        Span {
            histogram: None,
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stop now and record, instead of waiting for scope end.
    pub fn stop(self) {}

    /// Abandon the span without recording a sample.
    pub fn discard(mut self) {
        self.histogram = None;
    }
}

#[cfg(not(feature = "telemetry-off"))]
impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = &self.histogram {
            h.record(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// No-op span: the `telemetry-off` build compiles timing away.
#[cfg(feature = "telemetry-off")]
#[derive(Debug)]
pub struct Span;

#[cfg(feature = "telemetry-off")]
impl Span {
    /// A span that times nothing and records nowhere.
    pub fn noop() -> Self {
        Span
    }

    /// Always 0 in the `telemetry-off` build.
    pub fn elapsed_ns(&self) -> u64 {
        0
    }

    /// No-op.
    pub fn stop(self) {}

    /// No-op.
    pub fn discard(self) {}
}

impl Registry {
    /// Start a span timing into histogram `<sanitized-name>_ns`
    /// (`"ingest.batch"` → `ingest_batch_ns`). The histogram is
    /// registered on first use; afterwards each call is one clock
    /// read plus an RAII guard. A no-op under `telemetry-off`.
    #[cfg(not(feature = "telemetry-off"))]
    pub fn timer(&self, span_name: &str) -> Span {
        let metric = span_metric_name(span_name);
        let histogram = self.histogram(
            &metric,
            &format!("Elapsed nanoseconds of the {span_name:?} span"),
        );
        Span {
            histogram: Some(histogram),
            start: Instant::now(),
        }
    }

    /// `telemetry-off`: registers nothing, reads no clock.
    #[cfg(feature = "telemetry-off")]
    pub fn timer(&self, _span_name: &str) -> Span {
        Span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_names_sanitize_to_legal_metric_names() {
        assert_eq!(span_metric_name("ingest.batch"), "ingest_batch_ns");
        assert_eq!(span_metric_name("a-b c"), "a_b_c_ns");
        assert_eq!(span_metric_name("9lives"), "_9lives_ns");
        assert!(crate::registry::is_valid_metric_name(&span_metric_name(
            "99 red.balloons-go"
        )));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn timer_records_into_suffixed_histogram() {
        let r = Registry::new("test");
        {
            let _span = r.timer("ingest.batch");
            std::hint::black_box(0u64);
        }
        r.timer("ingest.batch").stop();
        r.timer("ingest.batch").discard();
        let snap = r.snapshot();
        let h = snap
            .get("ingest_batch_ns", &[])
            .expect("histogram registered")
            .as_histogram()
            .unwrap()
            .clone();
        assert_eq!(h.count, 2, "two recorded, one discarded");
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn timer_is_a_noop_when_disabled() {
        let r = Registry::new("test");
        {
            let _span = r.timer("ingest.batch");
        }
        assert!(r.snapshot().metrics.is_empty(), "nothing registered");
    }
}
