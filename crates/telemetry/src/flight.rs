//! The morph flight recorder: a fixed-capacity, lock-free ring buffer
//! retaining the last N estimator and engine lifecycle events for
//! post-hoc diagnostics (`smbcount doctor`, `morphlog --last`).
//!
//! ## Ring protocol (DESIGN.md §14)
//!
//! Writers claim a global ticket (`head.fetch_add`) and write into
//! slot `ticket % capacity`. Each slot carries its own sequence word
//! with a per-ticket encoding — for ticket `t`, `2t + 1` means "write
//! in progress", `2t + 2` means "complete":
//!
//! * a writer **claims** its slot by CAS-ing the sequence from the
//!   previous lap's completed value to `2t + 1`, which serializes
//!   writers that lap onto the same slot (a writer spins only while
//!   the slot's previous-lap writer is still mid-write);
//! * payload fields are plain atomic stores (`Relaxed`) — never torn,
//!   never UB;
//! * the writer **publishes** with a `Release` store of `2t + 2`.
//!
//! A reader walks tickets newest-to-oldest: it accepts a slot only if
//! the sequence reads `2t + 2` both before and after the payload loads
//! (with an `Acquire` fence between payload and re-check — the
//! classic seqlock validation). Any interleaving with a writer makes
//! the two sequence reads disagree and the slot is skipped, so a
//! racing reader can *miss* an event being overwritten but can never
//! observe a torn one.
//!
//! ## Loss semantics under overwrite
//!
//! The ring keeps the **newest** `capacity` events; recording event
//! `capacity + k` silently retires event `k`. `recorded_total()`
//! versus `len()` tells an operator how much history has been shed. A
//! reader racing an active writer may additionally skip the one slot
//! currently being rewritten — by then that slot's retained event is
//! already being replaced, so the reader only ever under-reports the
//! oldest end of the window, never the newest.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use smb_core::{EstimatorEvent, ObserverHandle, SmbObserver};
use smb_devtools::Json;

use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;

/// What kind of lifecycle moment a [`FlightEvent`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// An SMB round closed (the paper's morph).
    Morph,
    /// An estimator was cleared.
    Cleared,
    /// An estimator reached saturation.
    Saturated,
    /// The engine wrote a checkpoint epoch (`items` holds the epoch).
    Checkpoint,
    /// A batch was dropped under backpressure (`items` holds the
    /// dropped item count).
    DropBurst,
}

impl FlightEventKind {
    fn as_u64(self) -> u64 {
        match self {
            FlightEventKind::Morph => 0,
            FlightEventKind::Cleared => 1,
            FlightEventKind::Saturated => 2,
            FlightEventKind::Checkpoint => 3,
            FlightEventKind::DropBurst => 4,
        }
    }

    fn from_u64(raw: u64) -> Self {
        match raw {
            0 => FlightEventKind::Morph,
            1 => FlightEventKind::Cleared,
            2 => FlightEventKind::Saturated,
            3 => FlightEventKind::Checkpoint,
            _ => FlightEventKind::DropBurst,
        }
    }

    /// The kind's JSON / display name.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightEventKind::Morph => "morph",
            FlightEventKind::Cleared => "cleared",
            FlightEventKind::Saturated => "saturated",
            FlightEventKind::Checkpoint => "checkpoint",
            FlightEventKind::DropBurst => "drop_burst",
        }
    }
}

/// One retained lifecycle event. Morph events carry the full
/// [`smb_core::MorphEvent`] payload; other kinds use the fields they
/// need (see [`FlightEventKind`]) and zero the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightEventKind,
    /// Morph: the round that closed. Otherwise 0.
    pub round: u32,
    /// Morph: fresh bits at closure. Otherwise 0.
    pub fresh_bits: u32,
    /// Morph: logical bitmap size at closure. Otherwise 0.
    pub logical_size: u32,
    /// Morph: items since the previous morph. Checkpoint: the epoch.
    /// DropBurst: items dropped. Otherwise 0.
    pub items: u64,
    /// Morph/Saturated: the estimate at the event. Otherwise 0.
    pub estimate: f64,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
}

impl FlightEvent {
    /// This event as one JSON object (the `doctor` / `morphlog --last`
    /// line shape).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str(self.kind.as_str())),
            ("round".into(), Json::Int(self.round as i128)),
            ("fresh_bits".into(), Json::Int(self.fresh_bits as i128)),
            ("logical_size".into(), Json::Int(self.logical_size as i128)),
            ("items".into(), Json::Int(self.items as i128)),
            ("estimate".into(), Json::Float(self.estimate)),
            ("at_ns".into(), Json::Int(self.at_ns as i128)),
        ])
    }
}

/// One ring slot: a per-ticket sequence word plus the payload spread
/// over atomic words (`kind`/`round` and `fresh`/`logical` packed
/// pairwise). All-atomic payloads keep the racing reader free of
/// undefined behaviour without any `unsafe`.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    kind_round: AtomicU64,
    fresh_logical: AtomicU64,
    items: AtomicU64,
    estimate_bits: AtomicU64,
    at_ns: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            kind_round: AtomicU64::new(0),
            fresh_logical: AtomicU64::new(0),
            items: AtomicU64::new(0),
            estimate_bits: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
        }
    }
}

/// Optional registry cells mirroring the recorder's state, so the
/// flight window shows up in `serve --metrics` exports.
#[derive(Debug)]
struct FlightCells {
    events: Arc<Counter>,
    window: Arc<Gauge>,
}

/// A fixed-capacity, lock-free flight recorder for estimator and
/// engine lifecycle events — see the module docs for the ring
/// protocol and loss semantics.
///
/// Writers ([`FlightRecorder::record`], or estimator events via the
/// [`SmbObserver`] impl) never block each other except when lapping
/// onto a slot still being written; readers
/// ([`FlightRecorder::recent`]) never block writers at all.
///
/// ```
/// use smb_telemetry::{FlightEvent, FlightEventKind, FlightRecorder};
///
/// let recorder = FlightRecorder::new(64);
/// recorder.record(FlightEvent {
///     kind: FlightEventKind::Checkpoint,
///     round: 0, fresh_bits: 0, logical_size: 0,
///     items: 7, estimate: 0.0, at_ns: 0,
/// });
/// let window = recorder.recent(10);
/// assert_eq!(window.len(), 1);
/// assert_eq!(window[0].kind, FlightEventKind::Checkpoint);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    /// Total events ever recorded; the next ticket.
    head: AtomicU64,
    /// Timestamp origin for `FlightEvent::at_ns`.
    epoch: Instant,
    cells: Option<FlightCells>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
            cells: None,
        })
    }

    /// A recorder that also mirrors its state into `registry`:
    /// `smb_flight_events_total` (events ever recorded),
    /// `smb_flight_window_events` (events currently retained) and
    /// `smb_flight_capacity` (the fixed ring size).
    pub fn registered(
        capacity: usize,
        registry: &Registry,
        labels: &[(&str, &str)],
    ) -> Arc<Self> {
        let capacity = capacity.max(1);
        registry
            .gauge_with(
                "smb_flight_capacity",
                "Flight recorder ring capacity in events",
                labels,
            )
            .set(capacity as i64);
        Arc::new(FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
            cells: Some(FlightCells {
                events: registry.counter_with(
                    "smb_flight_events_total",
                    "Lifecycle events recorded into the flight recorder",
                    labels,
                ),
                window: registry.gauge_with(
                    "smb_flight_window_events",
                    "Lifecycle events currently retained in the flight window",
                    labels,
                ),
            }),
        })
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (monotone; exceeds
    /// [`FlightRecorder::capacity`] once the ring has wrapped).
    pub fn recorded_total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events currently retained: `min(recorded_total, capacity)`.
    pub fn len(&self) -> usize {
        (self.recorded_total() as usize).min(self.capacity())
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded_total() == 0
    }

    /// Record one event, stamping [`FlightEvent::at_ns`] from the
    /// recorder's clock. Lock-free; see the module docs.
    pub fn record(&self, mut event: FlightEvent) {
        event.at_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cap = self.slots.len() as u64;
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % cap) as usize];
        // Claim: CAS from the previous lap's completed value. This
        // serializes writers lapping onto the same slot; the spin only
        // lasts while the previous-lap writer is between its claim and
        // its publish (a handful of stores).
        let previous = if ticket < cap { 0 } else { 2 * (ticket - cap) + 2 };
        while slot
            .seq
            .compare_exchange_weak(
                previous,
                2 * ticket + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            std::hint::spin_loop();
        }
        slot.kind_round
            .store(event.kind.as_u64() << 32 | event.round as u64, Ordering::Relaxed);
        slot.fresh_logical.store(
            (event.fresh_bits as u64) << 32 | event.logical_size as u64,
            Ordering::Relaxed,
        );
        slot.items.store(event.items, Ordering::Relaxed);
        slot.estimate_bits
            .store(event.estimate.to_bits(), Ordering::Relaxed);
        slot.at_ns.store(event.at_ns, Ordering::Relaxed);
        // Publish: payload stores above become visible before the
        // completed sequence value.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
        if let Some(cells) = &self.cells {
            cells.events.inc();
            cells.window.set(self.len() as i64);
        }
    }

    /// The last `n` retained events, oldest first. Safe to call while
    /// writers are recording: slots caught mid-write are skipped (the
    /// seqlock validation), so the result may be shorter than `n` even
    /// with `n ≤ len()`, but never contains a torn event.
    pub fn recent(&self, n: usize) -> Vec<FlightEvent> {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let window = head.min(cap).min(n as u64);
        let mut out = Vec::with_capacity(window as usize);
        for ticket in (head - window..head).rev() {
            let slot = &self.slots[(ticket % cap) as usize];
            let expected = 2 * ticket + 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expected {
                // Overwritten by a later lap, or mid-write.
                continue;
            }
            let kind_round = slot.kind_round.load(Ordering::Relaxed);
            let fresh_logical = slot.fresh_logical.load(Ordering::Relaxed);
            let items = slot.items.load(Ordering::Relaxed);
            let estimate_bits = slot.estimate_bits.load(Ordering::Relaxed);
            let at_ns = slot.at_ns.load(Ordering::Relaxed);
            // Seqlock validation: the payload loads above must be
            // ordered before the re-check.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // a writer claimed the slot mid-read
            }
            out.push(FlightEvent {
                kind: FlightEventKind::from_u64(kind_round >> 32),
                round: (kind_round & 0xFFFF_FFFF) as u32,
                fresh_bits: (fresh_logical >> 32) as u32,
                logical_size: (fresh_logical & 0xFFFF_FFFF) as u32,
                items,
                estimate: f64::from_bits(estimate_bits),
                at_ns,
            });
        }
        out.reverse();
        out
    }

    /// Wrap into the handle `CardinalityEstimator::set_observer`
    /// accepts (recording every morph / clear / saturation).
    pub fn into_handle(self: Arc<Self>) -> ObserverHandle {
        ObserverHandle::new(self)
    }
}

impl SmbObserver for FlightRecorder {
    fn on_event(&self, event: EstimatorEvent<'_>) {
        let event = match event {
            EstimatorEvent::Morph(m) => FlightEvent {
                kind: FlightEventKind::Morph,
                round: m.round,
                fresh_bits: m.fresh_bits_at_close as u32,
                logical_size: m.logical_size as u32,
                items: m.items_since_last_morph,
                estimate: m.estimate_at_close,
                at_ns: 0,
            },
            EstimatorEvent::Cleared { .. } => FlightEvent {
                kind: FlightEventKind::Cleared,
                round: 0,
                fresh_bits: 0,
                logical_size: 0,
                items: 0,
                estimate: 0.0,
                at_ns: 0,
            },
            EstimatorEvent::Saturated { estimate, .. } => FlightEvent {
                kind: FlightEventKind::Saturated,
                round: 0,
                fresh_bits: 0,
                logical_size: 0,
                items: 0,
                estimate,
                at_ns: 0,
            },
        };
        self.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::CardinalityEstimator;
    use smb_devtools::{prop_assert, stress};

    fn event(i: u64) -> FlightEvent {
        FlightEvent {
            kind: FlightEventKind::Morph,
            round: (i % 16) as u32,
            fresh_bits: (i % 1000) as u32,
            logical_size: 2048,
            items: i,
            estimate: i as f64 * 1.5,
            at_ns: 0,
        }
    }

    #[test]
    fn retains_events_in_order_and_stamps_time() {
        let recorder = FlightRecorder::new(8);
        assert!(recorder.is_empty());
        assert!(recorder.recent(4).is_empty());
        for i in 0..5u64 {
            recorder.record(event(i));
        }
        assert_eq!(recorder.len(), 5);
        assert_eq!(recorder.recorded_total(), 5);
        let window = recorder.recent(3);
        assert_eq!(
            window.iter().map(|e| e.items).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "last 3, oldest first"
        );
        for pair in recorder.recent(5).windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns, "timestamps monotone");
        }
    }

    #[test]
    fn overwrite_keeps_the_newest_capacity_events() {
        let recorder = FlightRecorder::new(4);
        for i in 0..11u64 {
            recorder.record(event(i));
        }
        assert_eq!(recorder.recorded_total(), 11);
        assert_eq!(recorder.len(), 4);
        let window = recorder.recent(100);
        assert_eq!(
            window.iter().map(|e| e.items).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "only the newest capacity-many survive"
        );
    }

    #[test]
    fn payload_round_trips_every_field() {
        let recorder = FlightRecorder::new(2);
        let sent = FlightEvent {
            kind: FlightEventKind::DropBurst,
            round: 3,
            fresh_bits: 77,
            logical_size: 1024,
            items: u64::MAX - 5,
            estimate: -0.25,
            at_ns: 0,
        };
        recorder.record(sent);
        let got = recorder.recent(1)[0];
        assert_eq!(got.kind, sent.kind);
        assert_eq!(got.round, sent.round);
        assert_eq!(got.fresh_bits, sent.fresh_bits);
        assert_eq!(got.logical_size, sent.logical_size);
        assert_eq!(got.items, sent.items);
        assert_eq!(got.estimate, sent.estimate);
    }

    #[test]
    fn estimator_events_land_in_the_window() {
        let recorder = FlightRecorder::new(64);
        let mut smb = smb_core::Smb::new(2048, 256).unwrap();
        smb.set_observer(Some(Arc::clone(&recorder).into_handle()));
        for i in 0..100_000u64 {
            smb.record(&i.to_le_bytes());
        }
        smb.clear();
        let window = recorder.recent(64);
        let morphs = window
            .iter()
            .filter(|e| e.kind == FlightEventKind::Morph)
            .count();
        assert!(morphs > 0, "the stream must morph");
        assert!(window
            .iter()
            .any(|e| e.kind == FlightEventKind::Cleared));
        // Morph rounds arrive in closure order.
        let rounds: Vec<u32> = window
            .iter()
            .filter(|e| e.kind == FlightEventKind::Morph)
            .map(|e| e.round)
            .collect();
        for pair in rounds.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "rounds close in order: {rounds:?}");
        }
    }

    #[test]
    fn registered_recorder_mirrors_cells() {
        let registry = Registry::new("t");
        let recorder = FlightRecorder::registered(4, &registry, &[]);
        for i in 0..6u64 {
            recorder.record(event(i));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("smb_flight_events_total"), 6);
        assert_eq!(
            snap.get("smb_flight_window_events", &[]).unwrap().as_gauge(),
            Some(4)
        );
        assert_eq!(
            snap.get("smb_flight_capacity", &[]).unwrap().as_gauge(),
            Some(4)
        );
    }

    #[test]
    fn event_json_shape_parses() {
        let json = event(42).to_json().to_string();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.field("kind").unwrap().as_str().unwrap(), "morph");
        assert_eq!(parsed.field("items").unwrap().as_u64().unwrap(), 42);
        assert!(parsed.field("estimate").unwrap().as_f64().is_ok());
    }

    /// The acceptance-gate stress test: multi-producer writers lapping
    /// a small ring while a racing reader drains windows. Every event
    /// is written with fields derived from one generator value, so any
    /// torn read (fields from two different events) is detectable.
    #[test]
    fn concurrent_writers_and_reader_never_tear_events() {
        fn coherent(e: &FlightEvent) -> bool {
            // All fields are functions of `items`; a torn event mixes
            // two tickets and breaks at least one relation.
            e.round == (e.items % 16) as u32
                && e.fresh_bits == (e.items % 1000) as u32
                && e.estimate == e.items as f64 * 1.5
        }
        stress!(
            schedules = 8,
            threads = 4,
            setup = |_seed| FlightRecorder::new(8),
            body = |tid, ctx, recorder: &Arc<FlightRecorder>| {
                if tid == 0 {
                    // The racing reader: windows must always be
                    // coherent and ordered, mid-write slots skipped.
                    for _ in 0..300 {
                        let window = recorder.recent(8);
                        for e in &window {
                            assert!(coherent(e), "torn event read: {e:?}");
                        }
                        for pair in window.windows(2) {
                            assert!(
                                pair[0].at_ns <= pair[1].at_ns,
                                "window out of order: {window:?}"
                            );
                        }
                        ctx.interleave();
                    }
                } else {
                    // Writers lap the 8-slot ring many times over.
                    for i in 0..300u64 {
                        recorder.record(event(tid as u64 * 1_000_000 + i));
                        ctx.interleave();
                    }
                }
            },
            check = |recorder| {
                // 3 writer threads × 300 events each; the quiescent
                // ring holds exactly the newest 8, all coherent.
                prop_assert!(recorder.recorded_total() == 900);
                let window = recorder.recent(8);
                prop_assert!(window.len() == 8);
                for e in &window {
                    prop_assert!(coherent(e));
                }
                Ok(())
            },
        );
    }
}
