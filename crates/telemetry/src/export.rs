//! Render a [`RegistrySnapshot`] for the outside world: compact JSON
//! (via `smb-devtools`' writer) or Prometheus text exposition.

use std::fmt::Write as _;

use smb_devtools::Json;

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricValue, RegistrySnapshot};

/// The wire formats a snapshot can be rendered in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// Compact single-document JSON.
    Json,
    /// Prometheus text exposition (version 0.0.4).
    Prometheus,
}

impl ExportFormat {
    /// Parse a CLI-style format name (`json` / `prom` / `prometheus`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(ExportFormat::Json),
            "prom" | "prometheus" => Some(ExportFormat::Prometheus),
            _ => None,
        }
    }

    /// Render `snapshot` in this format.
    pub fn render(self, snapshot: &RegistrySnapshot) -> String {
        match self {
            ExportFormat::Json => snapshot_to_json(snapshot).to_string(),
            ExportFormat::Prometheus => snapshot_to_prometheus(snapshot),
        }
    }
}

/// The snapshot as a JSON document:
///
/// ```json
/// {"registry":"smb_engine","metrics":[
///   {"name":"engine_items_dropped_total","kind":"counter","help":"...",
///    "series":[{"labels":{"shard":"0"},"value":3}]}]}
/// ```
///
/// Histogram series values are objects with `count`, `sum`, `mean`,
/// `p50`/`p95`/`p99` and cumulative `buckets` (`[le, count]` pairs;
/// the final `le` is `null` for +Inf). Quantiles of an empty
/// histogram are a deterministic `0.0`; only `mean` can still be
/// `NaN` (0/0), which renders as `null`.
pub fn snapshot_to_json(snapshot: &RegistrySnapshot) -> Json {
    Json::Obj(vec![
        ("registry".into(), Json::str(&snapshot.registry)),
        (
            "metrics".into(),
            Json::Arr(
                snapshot
                    .metrics
                    .iter()
                    .map(|m| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(&m.name)),
                            ("kind".into(), Json::str(m.kind.as_str())),
                            ("help".into(), Json::str(&m.help)),
                            (
                                "series".into(),
                                Json::Arr(
                                    m.series
                                        .iter()
                                        .map(|s| {
                                            Json::Obj(vec![
                                                (
                                                    "labels".into(),
                                                    Json::Obj(
                                                        s.labels
                                                            .iter()
                                                            .map(|(k, v)| {
                                                                (k.clone(), Json::str(v))
                                                            })
                                                            .collect(),
                                                    ),
                                                ),
                                                ("value".into(), value_to_json(&s.value)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn value_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::Int(*v as i128),
        MetricValue::Gauge(v) => Json::Int(*v as i128),
        MetricValue::Histogram(h) => histogram_to_json(h),
    }
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Int(h.count as i128)),
        ("sum".into(), Json::Int(h.sum as i128)),
        ("mean".into(), Json::Float(h.mean())),
        ("p50".into(), Json::Float(h.p50)),
        ("p95".into(), Json::Float(h.p95)),
        ("p99".into(), Json::Float(h.p99)),
        (
            "buckets".into(),
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(le, cum)| {
                        let le_json = if le == u64::MAX {
                            Json::Null
                        } else {
                            Json::Int(le as i128)
                        };
                        Json::Arr(vec![le_json, Json::Int(cum as i128)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote and newline.
fn escape_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escape HELP text per the Prometheus text format: backslash and
/// newline (quotes are legal in HELP).
fn escape_help(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

/// The snapshot in the Prometheus text exposition format: one
/// `# HELP` / `# TYPE` pair per family (never repeated), then one
/// sample line per series; histograms expand to cumulative
/// `_bucket{le="..."}` lines plus `_sum` and `_count`.
pub fn snapshot_to_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for m in &snapshot.metrics {
        out.push_str("# HELP ");
        out.push_str(&m.name);
        out.push(' ');
        escape_help(&mut out, &m.help);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(m.kind.as_str());
        out.push('\n');
        for s in &m.series {
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&m.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&m.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Histogram(h) => {
                    let mut last_cum = 0;
                    for &(le, cum) in &h.buckets {
                        out.push_str(&m.name);
                        out.push_str("_bucket");
                        let le_text;
                        let le_str = if le == u64::MAX {
                            "+Inf"
                        } else {
                            le_text = le.to_string();
                            &le_text
                        };
                        write_labels(&mut out, &s.labels, Some(("le", le_str)));
                        let _ = writeln!(out, " {cum}");
                        last_cum = cum;
                    }
                    // The exposition format requires a terminal +Inf
                    // bucket equal to _count; our last stored bucket
                    // only plays that role when it is the 2^63 cell.
                    if h.buckets.last().map(|&(le, _)| le) != Some(u64::MAX) {
                        out.push_str(&m.name);
                        out.push_str("_bucket");
                        write_labels(&mut out, &s.labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, " {last_cum}");
                    }
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.sum);
                    out.push_str(&m.name);
                    out.push_str("_count");
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new("smb_test");
        r.counter_with("drops_total", "Dropped items", &[("shard", "0")])
            .add(3);
        r.counter_with("drops_total", "Dropped items", &[("shard", "1")])
            .add(4);
        r.gauge("queue_depth", "Queue depth").set(17);
        let h = r.histogram("latency_ns", "Latency");
        h.record(3);
        h.record(900);
        r
    }

    #[test]
    fn json_export_parses_back() {
        let snap = sample_registry().snapshot();
        let text = ExportFormat::Json.render(&snap);
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.field("registry").unwrap().as_str().unwrap(), "smb_test");
        let metrics = parsed.field("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 3);
        let drops = &metrics[0];
        assert_eq!(drops.field("kind").unwrap().as_str().unwrap(), "counter");
        let series = drops.field("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(
            series[1].field("value").unwrap().as_u64().unwrap(),
            4
        );
        let hist = metrics[2].field("series").unwrap().as_arr().unwrap()[0]
            .field("value")
            .unwrap()
            .clone();
        assert_eq!(hist.field("count").unwrap().as_u64().unwrap(), 2);
        assert_eq!(hist.field("sum").unwrap().as_u64().unwrap(), 903);
    }

    #[test]
    fn empty_histogram_json_is_still_valid() {
        let r = Registry::new("t");
        r.histogram("h", "h");
        let text = ExportFormat::Json.render(&r.snapshot());
        // Quantiles of an empty histogram are a deterministic 0.0;
        // only the NaN mean degrades to null.
        let parsed = Json::parse(&text).expect("valid JSON");
        let v = parsed.field("metrics").unwrap().as_arr().unwrap()[0]
            .field("series")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .field("value")
            .unwrap()
            .clone();
        assert_eq!(v.field("p50").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(v.field("p99").unwrap().as_f64().unwrap(), 0.0);
        assert!(matches!(v.field("mean").unwrap(), Json::Null));
    }

    #[test]
    fn prometheus_export_basics() {
        let text = ExportFormat::Prometheus.render(&sample_registry().snapshot());
        assert!(text.contains("# HELP drops_total Dropped items\n"));
        assert!(text.contains("# TYPE drops_total counter\n"));
        assert!(text.contains("drops_total{shard=\"0\"} 3\n"));
        assert!(text.contains("drops_total{shard=\"1\"} 4\n"));
        assert!(text.contains("queue_depth 17\n"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("latency_ns_sum 903\n"));
        assert!(text.contains("latency_ns_count 2\n"));
        // HELP/TYPE appear once per family even with two series.
        assert_eq!(text.matches("# HELP drops_total").count(), 1);
        assert_eq!(text.matches("# TYPE drops_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new("t");
        r.counter_with("c_total", "c", &[("path", "a\\b\"c\nd")]).inc();
        let text = snapshot_to_prometheus(&r.snapshot());
        assert!(text.contains("c_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"));
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(ExportFormat::from_name("json"), Some(ExportFormat::Json));
        assert_eq!(ExportFormat::from_name("prom"), Some(ExportFormat::Prometheus));
        assert_eq!(
            ExportFormat::from_name("prometheus"),
            Some(ExportFormat::Prometheus)
        );
        assert_eq!(ExportFormat::from_name("xml"), None);
    }
}
