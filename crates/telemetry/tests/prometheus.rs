//! Round-trip the Prometheus text exposition through a small
//! hand-written parser: every rendered document must have exactly one
//! `# HELP`/`# TYPE` pair per family, legal metric and label names,
//! correctly escaped label values, and cumulative histogram buckets
//! that terminate in a `+Inf` bucket equal to `_count`.

use std::collections::HashMap;

use smb_telemetry::{
    is_valid_label_name, is_valid_metric_name, snapshot_to_prometheus, FlightEvent,
    FlightEventKind, FlightRecorder, Registry,
};

/// One parsed sample line: `name{labels} value`.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Default)]
struct Exposition {
    helps: HashMap<String, String>,
    types: HashMap<String, String>,
    samples: Vec<Sample>,
}

impl Exposition {
    fn samples_named(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    fn sample_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }
}

/// Unescape a Prometheus label value (`\\`, `\"`, `\n`). Rejects any
/// other escape or a dangling backslash.
fn unescape_label_value(raw: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => return Err(format!("illegal escape \\{other} in {raw:?}")),
            None => return Err(format!("dangling backslash in {raw:?}")),
        }
    }
    Ok(out)
}

/// Parse a label block `k="v",k2="v2"` (without the surrounding
/// braces), honouring escapes inside quoted values.
fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find("=\"")
            .ok_or_else(|| format!("label without =\" in {block:?}"))?;
        let key = rest[..eq].to_string();
        rest = &rest[eq + 2..];
        // Find the closing quote, skipping escaped characters.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {block:?}"))?;
        labels.push((key, unescape_label_value(&rest[..end])?));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

/// Parse a full exposition document, enforcing the structural rules of
/// the text format along the way.
fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut doc = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: HELP without text"))?;
            if doc.helps.insert(name.to_string(), help.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: unknown TYPE {kind}"));
            }
            if doc.types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without value"))?;
        let value = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse::<f64>()
                .map_err(|_| format!("line {lineno}: bad value {value:?}"))?
        };
        let (name, labels) = match head.split_once('{') {
            Some((name, rest)) => {
                let block = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
                (name.to_string(), parse_labels(block)?)
            }
            None => (head.to_string(), Vec::new()),
        };
        if !is_valid_metric_name(&name) {
            return Err(format!("line {lineno}: illegal metric name {name:?}"));
        }
        for (k, _) in &labels {
            if *k != "le" && !is_valid_label_name(k) {
                return Err(format!("line {lineno}: illegal label name {k:?}"));
            }
        }
        doc.samples.push(Sample { name, labels, value });
    }
    Ok(doc)
}

/// Strip the exposition suffix (`_bucket`, `_sum`, `_count`) to find
/// the histogram family a sample belongs to.
fn histogram_family<'a>(doc: &'a Exposition, sample_name: &str) -> Option<&'a str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if doc.types.get(base).map(String::as_str) == Some("histogram") {
                return Some(doc.types.get_key_value(base).unwrap().0);
            }
        }
    }
    None
}

/// Build a registry exercising every metric kind, multiple labelled
/// series, an empty histogram, and hostile label values.
fn hostile_registry() -> Registry {
    let r = Registry::new("smb_roundtrip");
    for shard in 0..3 {
        r.counter_with("engine_items_total", "Items", &[("shard", &shard.to_string())])
            .add(100 + shard);
    }
    r.gauge_with("engine_queue_depth", "Depth", &[("shard", "0")]).set(-2);
    let h = r.histogram_with("enqueue_latency_ns", "Latency", &[("shard", "0")]);
    for v in [1u64, 2, 3, 700, 900, 65_000, u64::MAX] {
        h.record(v);
    }
    r.histogram("empty_hist", "Never recorded");
    r.counter_with(
        "weird_total",
        "Help with a \\ backslash\nand newline",
        &[("path", "a\\b\"c\nd"), ("plain", "ok")],
    )
    .inc();
    r
}

#[test]
fn exposition_parses_with_one_help_and_type_per_family() {
    let text = snapshot_to_prometheus(&hostile_registry().snapshot());
    let doc = parse_exposition(&text).expect("exposition must parse");
    // Every family has exactly one HELP and one TYPE (the parser
    // rejects duplicates), and every sample's family is declared.
    for sample in &doc.samples {
        let family = histogram_family(&doc, &sample.name)
            .map(str::to_string)
            .unwrap_or_else(|| sample.name.clone());
        assert!(doc.types.contains_key(&family), "undeclared family {family}");
        assert!(doc.helps.contains_key(&family), "family {family} missing HELP");
        assert!(is_valid_metric_name(&family));
    }
    assert_eq!(doc.types.get("engine_items_total").unwrap(), "counter");
    assert_eq!(doc.types.get("engine_queue_depth").unwrap(), "gauge");
    assert_eq!(doc.types.get("enqueue_latency_ns").unwrap(), "histogram");
}

#[test]
fn label_values_round_trip_through_escaping() {
    let text = snapshot_to_prometheus(&hostile_registry().snapshot());
    let doc = parse_exposition(&text).expect("exposition must parse");
    // The hostile value (backslash, quote, newline) must come back
    // byte-identical after escape + unescape.
    let value = doc
        .sample_value("weird_total", &[("path", "a\\b\"c\nd"), ("plain", "ok")])
        .expect("hostile series present");
    assert_eq!(value, 1.0);
    // Raw newlines must never leak into the wire format unescaped:
    // every physical line is a comment or a sample the parser accepted.
    assert!(!text.contains("c\nd\""), "unescaped newline leaked");
    // Per-shard counters keep their values and labels.
    for shard in 0..3u64 {
        let v = doc
            .sample_value("engine_items_total", &[("shard", &shard.to_string())])
            .expect("shard series present");
        assert_eq!(v, (100 + shard) as f64);
    }
    assert_eq!(doc.sample_value("engine_queue_depth", &[("shard", "0")]), Some(-2.0));
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_count() {
    let text = snapshot_to_prometheus(&hostile_registry().snapshot());
    let doc = parse_exposition(&text).expect("exposition must parse");
    for family in ["enqueue_latency_ns", "empty_hist"] {
        let buckets = doc.samples_named(&format!("{family}_bucket"));
        assert!(!buckets.is_empty(), "{family} has no buckets");
        // `le` bounds strictly increase and cumulative counts never
        // decrease.
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = 0.0;
        for b in &buckets {
            let le = b
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| if v == "+Inf" { f64::INFINITY } else { v.parse().unwrap() })
                .expect("bucket without le");
            assert!(le > last_le, "{family}: le not increasing");
            assert!(b.value >= last_cum, "{family}: cumulative count decreased");
            last_le = le;
            last_cum = b.value;
        }
        // The final bucket is +Inf and equals _count.
        assert_eq!(last_le, f64::INFINITY, "{family}: missing +Inf bucket");
        let count = doc
            .sample_value(&format!("{family}_count"), &[])
            .or_else(|| doc.sample_value(&format!("{family}_count"), &[("shard", "0")]))
            .expect("histogram _count present");
        assert_eq!(last_cum, count, "{family}: +Inf bucket != _count");
        let sum = doc
            .sample_value(&format!("{family}_sum"), &[])
            .or_else(|| doc.sample_value(&format!("{family}_sum"), &[("shard", "0")]))
            .expect("histogram _sum present");
        assert!(sum >= 0.0);
    }
    // The seven recorded samples all land somewhere.
    assert_eq!(
        doc.sample_value("enqueue_latency_ns_count", &[("shard", "0")]),
        Some(7.0)
    );
    assert_eq!(doc.sample_value("empty_hist_count", &[]), Some(0.0));
}

#[test]
fn stage_and_flight_families_round_trip() {
    let r = Registry::new("smb_roundtrip");
    // Per-stage span histograms exactly as the engine registers them,
    // plus one series with a hostile shard value to prove escaping
    // holds on the shard/stage label positions too.
    for (shard, stage) in [
        ("0", "producer_hash"),
        ("0", "enqueue"),
        ("0", "queue_wait"),
        ("all", "query_sweep"),
        ("sh\\ard\"1\n", "record_batch"),
    ] {
        let h = r.histogram_with(
            "engine_stage_duration_ns",
            "Nanoseconds per pipeline stage",
            &[("shard", shard), ("stage", stage)],
        );
        h.record(250);
        h.record(90_000);
    }
    // A flight recorder with a hostile producer label; six events over
    // a four-slot ring leaves events_total=6, window=capacity=4.
    let producer_label = "p\\0\"x\ny";
    let flight = FlightRecorder::registered(4, &r, &[("producer", producer_label)]);
    for round in 0..6u32 {
        flight.record(FlightEvent {
            kind: FlightEventKind::Morph,
            round,
            fresh_bits: 10,
            logical_size: 2048,
            items: 100,
            estimate: 1234.5,
            at_ns: 0,
        });
    }

    let text = snapshot_to_prometheus(&r.snapshot());
    let doc = parse_exposition(&text).expect("exposition must parse");
    assert_eq!(doc.types.get("engine_stage_duration_ns").unwrap(), "histogram");
    assert_eq!(doc.types.get("smb_flight_events_total").unwrap(), "counter");
    assert_eq!(doc.types.get("smb_flight_window_events").unwrap(), "gauge");
    assert_eq!(doc.types.get("smb_flight_capacity").unwrap(), "gauge");

    // Clean and hostile stage series both survive the round trip with
    // their two recorded samples.
    assert_eq!(
        doc.sample_value(
            "engine_stage_duration_ns_count",
            &[("shard", "0"), ("stage", "queue_wait")],
        ),
        Some(2.0)
    );
    assert_eq!(
        doc.sample_value(
            "engine_stage_duration_ns_count",
            &[("shard", "all"), ("stage", "query_sweep")],
        ),
        Some(2.0)
    );
    assert_eq!(
        doc.sample_value(
            "engine_stage_duration_ns_count",
            &[("shard", "sh\\ard\"1\n"), ("stage", "record_batch")],
        ),
        Some(2.0)
    );
    // The per-series sums stay separated despite the shared family.
    assert_eq!(
        doc.sample_value(
            "engine_stage_duration_ns_sum",
            &[("shard", "0"), ("stage", "enqueue")],
        ),
        Some(90_250.0)
    );

    // Flight-recorder cells, labelled with the hostile producer value.
    assert_eq!(
        doc.sample_value("smb_flight_events_total", &[("producer", producer_label)]),
        Some(6.0)
    );
    assert_eq!(
        doc.sample_value("smb_flight_window_events", &[("producer", producer_label)]),
        Some(4.0)
    );
    assert_eq!(
        doc.sample_value("smb_flight_capacity", &[("producer", producer_label)]),
        Some(4.0)
    );
}

#[test]
fn parser_rejects_malformed_documents() {
    // The parser itself must have teeth, or the round-trip proves
    // nothing.
    assert!(parse_exposition("# HELP a b\n# HELP a b\n").is_err(), "dup HELP");
    assert!(parse_exposition("# TYPE a counter\n# TYPE a counter\n").is_err(), "dup TYPE");
    assert!(parse_exposition("# TYPE a wibble\n").is_err(), "bad kind");
    assert!(parse_exposition("1bad_name 3\n").is_err(), "bad metric name");
    assert!(parse_exposition("a{__reserved=\"x\"} 3\n").is_err(), "bad label name");
    assert!(parse_exposition("a{k=\"x} 3\n").is_err(), "unterminated value");
    assert!(parse_exposition("a{k=\"\\q\"} 3\n").is_err(), "illegal escape");
    assert!(parse_exposition("a nope\n").is_err(), "bad value");
    assert!(unescape_label_value("x\\").is_err(), "dangling backslash");
}
