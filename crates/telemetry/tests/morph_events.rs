//! Property tests for the SMB morph-event stream: events fire exactly
//! when the fresh-bit counter `v` reaches the threshold `T`, rounds
//! close strictly in order, and `estimate_at_close` matches the
//! S-table reconstruction `S[r+1] = S[r] − 2ʳ·m_r·ln(1 − T/m_r)`.

use smb_core::{CardinalityEstimator, MorphCollector, ObserverHandle, Smb};
use smb_devtools::prop::gens;
use smb_devtools::{forall, prop_assert, prop_assert_eq};
use smb_hash::HashScheme;

/// The 15 (m, T) SMB configurations under test — every estimator
/// configuration in this workspace that exposes the observer hook.
/// Spans shallow (T = m/2, two rounds) to deep (T = m/16) morphing.
const CONFIGS: [(usize, usize); 15] = [
    (256, 32),
    (256, 64),
    (256, 128),
    (512, 64),
    (512, 128),
    (512, 256),
    (1024, 64),
    (1024, 128),
    (1024, 512),
    (2048, 128),
    (2048, 256),
    (2048, 1024),
    (4096, 256),
    (4096, 512),
    (4096, 2048),
];

/// Drive `items` distinct items through an observed SMB of shape
/// `(m, t)` and check every morph-event invariant along the way.
/// Returns the number of morphs so callers can assert coverage.
fn check_config(m: usize, t: usize, seed: u64, items: u64) -> Result<u32, String> {
    let collector = MorphCollector::shared();
    let mut smb = Smb::with_scheme(m, t, HashScheme::with_seed(seed))
        .map_err(|e| format!("config ({m},{t}): {e}"))?;
    smb.set_observer(Some(ObserverHandle::new(collector.clone())));

    let mut last_round_seen = smb.round();
    for i in 0..items {
        smb.record(&i.to_le_bytes());
        // The event fires exactly at the morph: at every point the
        // number of emitted events equals the number of closed rounds.
        let events = collector.events();
        if events.len() != smb.round() as usize {
            return Err(format!(
                "config ({m},{t}) item {i}: {} events but round is {}",
                events.len(),
                smb.round()
            ));
        }
        if smb.round() > last_round_seen {
            // A round just closed: v must have been reset below T.
            if smb.fresh_ones() >= t {
                return Err(format!(
                    "config ({m},{t}): v={} not reset after morph",
                    smb.fresh_ones()
                ));
            }
            last_round_seen = smb.round();
        } else if smb.round() + 1 < smb.max_rounds() && smb.fresh_ones() >= t {
            // Outside the final round (where the bitmap is allowed to
            // fill up), v reaching T must have produced an event.
            return Err(format!(
                "config ({m},{t}): v reached T={t} without an event"
            ));
        }
    }

    let events = collector.events();
    let mut items_accounted = 0u64;
    for (k, event) in events.iter().enumerate() {
        // Rounds close strictly in order, starting at 0.
        if event.round != k as u32 {
            return Err(format!(
                "config ({m},{t}): event {k} closed round {}",
                event.round
            ));
        }
        // A round closes exactly when v reaches T.
        if event.fresh_bits_at_close != t {
            return Err(format!(
                "config ({m},{t}): round {} closed at v={}, want T={t}",
                event.round, event.fresh_bits_at_close
            ));
        }
        let m_r = m - (event.round as usize) * t;
        if event.logical_size != m_r {
            return Err(format!(
                "config ({m},{t}): round {} logical size {} want {m_r}",
                event.round, event.logical_size
            ));
        }
        // estimate_at_close reconstructs as S[r] + (S[r+1] − S[r])
        // with the paper's per-round increment (Eq. 9): the round's
        // linear-counting term over the logical size m_r, scaled by
        // the physical m and the sampling factor 2ʳ.
        let delta =
            -(2f64.powi(event.round as i32)) * (m as f64) * (1.0 - t as f64 / m_r as f64).ln();
        let reconstructed = smb.s_value(event.round) + delta;
        let err = (event.estimate_at_close - reconstructed).abs()
            / reconstructed.abs().max(f64::EPSILON);
        if err > 1e-9 {
            return Err(format!(
                "config ({m},{t}): round {} estimate {} vs reconstruction {reconstructed}",
                event.round, event.estimate_at_close
            ));
        }
        // ... and equals the S-table's own next entry.
        if (event.estimate_at_close - smb.s_value(event.round + 1)).abs()
            > 1e-9 * smb.s_value(event.round + 1).abs().max(1.0)
        {
            return Err(format!(
                "config ({m},{t}): round {} estimate disagrees with S[{}]",
                event.round,
                event.round + 1
            ));
        }
        items_accounted += event.items_since_last_morph;
    }
    // Every recorded item lands in exactly one inter-morph interval.
    items_accounted += smb.items_since_last_morph();
    if items_accounted != items {
        return Err(format!(
            "config ({m},{t}): {items_accounted} items accounted, {items} recorded"
        ));
    }
    Ok(events.len() as u32)
}

#[test]
fn all_fifteen_configs_fire_in_order_and_reconstruct() {
    let mut total_morphs = 0;
    for &(m, t) in &CONFIGS {
        // Enough distinct items to close several rounds in each shape.
        let items = (4 * m) as u64;
        total_morphs += check_config(m, t, 0xC0FFEE ^ (m as u64) ^ (t as u64), items)
            .unwrap_or_else(|e| panic!("{e}"));
    }
    assert!(
        total_morphs >= 2 * CONFIGS.len() as u32,
        "the traces must actually morph for the test to bite ({total_morphs} morphs)"
    );
}

#[test]
fn morph_invariants_hold_for_random_seeds_and_loads() {
    forall!(cases = 24, (idx in gens::usizes(0..CONFIGS.len()),
                         seed in gens::u64s(0..u64::MAX),
                         load in gens::usizes(1..6)) => {
        let (m, t) = CONFIGS[idx];
        let items = (load * m) as u64;
        match check_config(m, t, seed, items) {
            Ok(_) => {}
            Err(e) => prop_assert!(false, "{e}"),
        }
    });
}

#[test]
fn cleared_estimator_restarts_its_event_stream() {
    forall!(cases = 12, (seed in gens::u64s(0..u64::MAX)) => {
        let collector = MorphCollector::shared();
        let mut smb = Smb::with_scheme(1024, 128, HashScheme::with_seed(seed)).unwrap();
        smb.set_observer(Some(ObserverHandle::new(collector.clone())));
        for i in 0..4096u64 {
            smb.record(&i.to_le_bytes());
        }
        let before = collector.events().len();
        smb.clear();
        prop_assert_eq!(collector.cleared_count(), 1);
        prop_assert_eq!(smb.round(), 0);
        for i in 0..4096u64 {
            smb.record(&i.to_le_bytes());
        }
        let after = collector.events();
        // The same trace after clear() replays the same morph schedule,
        // starting again from round 0.
        prop_assert_eq!(after.len(), 2 * before);
        if before > 0 {
            prop_assert_eq!(after[before].round, 0);
            prop_assert_eq!(after[before].round, after[0].round);
            prop_assert_eq!(after[before].fresh_bits_at_close, after[0].fresh_bits_at_close);
        }
    });
}
