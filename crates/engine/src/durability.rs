//! Durable shard checkpoints and crash recovery.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   epoch-0000000000/
//!     shard-0000.bin       one file per shard: sorted (flow, state)
//!     shard-0001.bin       pairs in the v2 compressed flow-block format
//!     MANIFEST.json        written last — the epoch's commit record
//!   epoch-0000000001/
//!     ...
//! ```
//!
//! Two shard formats exist, selected by [`CheckpointFormat`]:
//!
//! * **v2 (default)** — `shard-%04d.bin`, the compressed binary
//!   flow-block format of [`smb_sketch::codec`] (varint + zigzag delta
//!   hash lists, bit-packed bitmaps; see `PROTOCOL.md` §5). Typically
//!   well under half the JSON byte size.
//! * **v1** — `shard-%04d.json`, `[flow, state]` pairs as JSON. Every
//!   epoch written before the v2 format existed is v1, and v1 epochs
//!   restore forever: the manifest records which format an epoch uses
//!   (`"format"`, absent meaning v1) and the reader dispatches per
//!   epoch — both formats decode to the *same* canonical JSON states,
//!   so the entire restore/validation path below is shared and
//!   restores are bit-identical across formats.
//!
//! Every file is written atomically (write to a `.tmp` sibling, fsync,
//! rename into place) and the manifest is written **after** all shard
//! files, so an epoch directory without a valid manifest is by
//! definition torn and never restored from. The manifest records the
//! engine's [`AlgoSpec`], the shard count, and a CRC-32 plus byte
//! length for every shard file; it also carries a CRC-32 over its own
//! body, so recovery can detect corruption of the manifest itself.
//!
//! ## Epoch selection
//!
//! [`ShardedFlowEngine::restore`] scans the checkpoint directory and
//! walks epochs newest-first, accepting the first one that is fully
//! *consistent*: manifest present, both checksums clean, every shard
//! file present with the recorded length and CRC, every state
//! restorable through `smb_factory::restore_estimator` (which re-checks
//! each estimator's structural invariants). Inconsistent newer epochs
//! are skipped — degraded recovery to an older epoch, with the skips
//! reported in [`RestoreReport::skipped`] and counted in
//! `engine_restore_skipped_epochs_total`. The loss is bounded by the
//! checkpoint interval: at most `interval × skipped-epochs + interval`
//! of ingest is missing relative to the crash point.
//!
//! [`ShardedFlowEngine::restore`]: crate::ShardedFlowEngine::restore

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smb_core::Error;
use smb_devtools::{Json, Snapshot};
use smb_factory::{AlgoSpec, DynEstimator};
use smb_hash::crc32::crc32;
use smb_sketch::{FlowCell, FlowStore as _};
use smb_telemetry::{
    Counter, FlightEvent, FlightEventKind, FlightRecorder, Gauge, Histogram, Registry,
};

use crate::engine::ShardTable;

/// Rebuild one flow's cell from its checkpointed state. Tier-tagged
/// states become unmaterialized small/array cells; anything else goes
/// through [`smb_factory::restore_estimator`] into a full cell — which
/// also covers pre-tier checkpoints, where every state was a bare
/// estimator snapshot.
pub(crate) fn restore_cell(
    spec: AlgoSpec,
    state: &Json,
) -> smb_core::Result<FlowCell<DynEstimator>> {
    match FlowCell::<DynEstimator>::from_tier_json(state) {
        Ok(Some(cell)) => Ok(cell),
        Ok(None) => Ok(FlowCell::from_estimator(smb_factory::restore_estimator(
            spec, state,
        )?)),
        Err(e) => Err(Error::invalid("cell", e.to_string())),
    }
}

/// File name of the per-epoch commit record.
const MANIFEST: &str = "MANIFEST.json";

/// Which shard-file format new checkpoints are written in. Restore is
/// format-agnostic: the manifest records each epoch's format and the
/// reader dispatches per epoch, so changing this knob never strands an
/// existing checkpoint history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// `shard-%04d.json` — `[flow, state]` pairs as JSON text. The
    /// pre-v2 format; diffable, but several times larger on disk.
    V1Json,
    /// `shard-%04d.bin` — the compressed binary flow-block format of
    /// [`smb_sketch::codec`] (specified in `PROTOCOL.md` §5).
    #[default]
    V2Binary,
}

impl CheckpointFormat {
    /// The `"format"` code the manifest records (1 or 2).
    pub fn code(self) -> u64 {
        match self {
            CheckpointFormat::V1Json => 1,
            CheckpointFormat::V2Binary => 2,
        }
    }

    fn from_code(code: u64) -> Result<Self, String> {
        match code {
            1 => Ok(CheckpointFormat::V1Json),
            2 => Ok(CheckpointFormat::V2Binary),
            other => Err(format!("unknown checkpoint format {other}")),
        }
    }

    fn shard_file_name(self, shard: usize) -> String {
        match self {
            CheckpointFormat::V1Json => format!("shard-{shard:04}.json"),
            CheckpointFormat::V2Binary => format!("shard-{shard:04}.bin"),
        }
    }
}

/// How a checkpointing engine writes its epochs: where, how often, and
/// how stubbornly on IO failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the epoch subdirectories. Created on demand.
    pub dir: PathBuf,
    /// Pause between background checkpoints.
    pub interval: Duration,
    /// Extra attempts after a failed checkpoint write before the epoch
    /// is abandoned (counted in `engine_checkpoint_failures_total`).
    pub retries: u32,
    /// Pause before each retry.
    pub backoff: Duration,
    /// Completed epochs kept on disk; older ones are pruned after each
    /// successful checkpoint. At least 2 is recommended so recovery can
    /// fall back across a torn newest epoch.
    pub keep_epochs: usize,
    /// Shard-file format for *new* epochs (restore reads both).
    pub format: CheckpointFormat,
}

impl CheckpointConfig {
    /// Defaults: a 30 s interval, 3 retries with 200 ms backoff, the
    /// newest 2 epochs retained.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            interval: Duration::from_secs(30),
            retries: 3,
            backoff: Duration::from_millis(200),
            keep_epochs: 2,
            format: CheckpointFormat::default(),
        }
    }

    /// Set the background checkpoint interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Set the retry budget for failed checkpoint writes.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Set the pause before each retry.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Set how many completed epochs stay on disk.
    pub fn with_keep_epochs(mut self, keep_epochs: usize) -> Self {
        self.keep_epochs = keep_epochs;
        self
    }

    /// Set the shard-file format for new epochs.
    pub fn with_format(mut self, format: CheckpointFormat) -> Self {
        self.format = format;
        self
    }

    pub(crate) fn validate(&self) -> smb_core::Result<()> {
        if self.keep_epochs == 0 {
            return Err(Error::invalid("keep_epochs", "must be at least 1"));
        }
        if self.interval.is_zero() {
            return Err(Error::invalid("interval", "must be non-zero"));
        }
        Ok(())
    }
}

/// What recovery found: which epoch it restored, how much it holds,
/// and which newer epochs it had to skip (with the reason each failed
/// its consistency check).
#[derive(Debug, Clone)]
pub struct RestoreReport {
    /// The epoch that was restored.
    pub epoch: u64,
    /// Flows rebuilt into the engine.
    pub flows: u64,
    /// Shard count recorded in the checkpoint (the restored engine's
    /// own shard count may differ — flows are re-partitioned).
    pub checkpoint_shards: usize,
    /// Epochs newer than the restored one that failed their
    /// consistency check, newest first, each with the failure reason.
    /// Non-empty means bounded loss: everything ingested after the
    /// restored epoch's checkpoint is gone.
    pub skipped: Vec<(u64, String)>,
}

/// The durability metric cells, registered (unlabelled) in the engine
/// registry next to the per-shard series.
#[derive(Debug)]
pub(crate) struct CheckpointMetrics {
    /// Nanoseconds each successful checkpoint took end to end.
    pub duration: Arc<Histogram>,
    /// Bytes written per successful checkpoint (shard files + manifest).
    pub bytes: Arc<Histogram>,
    /// The newest epoch this engine has written or restored.
    pub epoch: Arc<Gauge>,
    /// Checkpoints completed.
    pub written: Arc<Counter>,
    /// Checkpoints abandoned after exhausting the retry budget.
    pub failures: Arc<Counter>,
    /// Individual retry attempts after failed checkpoint writes.
    pub retries: Arc<Counter>,
    /// Flows rebuilt by restore.
    pub restored_flows: Arc<Counter>,
    /// Inconsistent epochs skipped during restore.
    pub skipped_epochs: Arc<Counter>,
}

impl CheckpointMetrics {
    pub(crate) fn register(registry: &Registry) -> Self {
        CheckpointMetrics {
            duration: registry.histogram(
                "engine_checkpoint_duration_ns",
                "Nanoseconds per successful checkpoint write",
            ),
            bytes: registry.histogram(
                "engine_checkpoint_bytes",
                "Bytes written per successful checkpoint",
            ),
            epoch: registry.gauge(
                "engine_checkpoint_epoch",
                "Newest epoch written or restored by this engine",
            ),
            written: registry.counter("engine_checkpoints_written_total", "Checkpoints completed"),
            failures: registry.counter(
                "engine_checkpoint_failures_total",
                "Checkpoints abandoned after exhausting retries",
            ),
            retries: registry.counter(
                "engine_checkpoint_retries_total",
                "Retry attempts after failed checkpoint writes",
            ),
            restored_flows: registry
                .counter("engine_restore_flows_total", "Flows rebuilt by restore"),
            skipped_epochs: registry.counter(
                "engine_restore_skipped_epochs_total",
                "Inconsistent epochs skipped during restore",
            ),
        }
    }
}

fn epoch_dir_name(epoch: u64) -> String {
    format!("epoch-{epoch:010}")
}

fn parse_epoch_dir(name: &str) -> Option<u64> {
    name.strip_prefix("epoch-")?.parse().ok()
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::io(format!("{what} {}: {e}", path.display()))
}

/// Epoch numbers present under `dir` (directories only), ascending.
/// A missing checkpoint directory is simply an empty history.
pub(crate) fn list_epochs(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut epochs: Vec<u64> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            if !e.file_type().ok()?.is_dir() {
                return None;
            }
            parse_epoch_dir(e.file_name().to_str()?)
        })
        .collect();
    epochs.sort_unstable();
    epochs
}

/// Write `bytes` to `path` atomically: `.tmp` sibling → fsync → rename.
/// A crash at any point leaves either the old file or no file — never
/// a torn one (torn files come only from outside interference, which
/// the checksums catch).
fn write_atomic(path: &Path, bytes: &[u8]) -> smb_core::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))
}

/// Best-effort directory fsync so the renames above are durable. Some
/// filesystems cannot fsync directories; that only weakens durability
/// of the very last epoch, never consistency, so errors are ignored.
fn sync_dir(path: &Path) {
    if let Ok(d) = File::open(path) {
        let _ = d.sync_all();
    }
}

/// Snapshot one shard's flow table as `(flow, state)` pairs sorted by
/// flow key, so a given table always produces identical bytes (and
/// therefore an identical CRC) in either shard format. Each cell
/// serializes its own tier — unmaterialized cells as a
/// `{"tier", "hashes"}` wrapper, full cells as the estimator's bare
/// state (byte-identical to pre-tier checkpoints, so old epochs keep
/// restoring).
pub(crate) fn shard_flows(table: &ShardTable) -> smb_core::Result<Vec<(u64, Json)>> {
    let mut flows: Vec<(u64, Json)> = Vec::with_capacity(table.len());
    for (flow, state) in table.snapshot_cells() {
        let state = state.ok_or_else(|| {
            Error::invalid(
                "snapshot",
                format!("estimator for flow {flow} does not support snapshots"),
            )
        })?;
        flows.push((flow, state));
    }
    flows.sort_unstable_by_key(|&(flow, _)| flow);
    Ok(flows)
}

/// Serialize a shard's sorted flows in the chosen format: the v1 JSON
/// document or the v2 compressed flow block.
pub(crate) fn encode_shard(
    format: CheckpointFormat,
    shard: usize,
    flows: Vec<(u64, Json)>,
) -> smb_core::Result<Vec<u8>> {
    match format {
        CheckpointFormat::V1Json => {
            let json = Json::Obj(vec![
                ("shard".into(), Json::Int(shard as i128)),
                (
                    "flows".into(),
                    Json::Arr(
                        flows
                            .into_iter()
                            .map(|(flow, state)| {
                                Json::Arr(vec![Json::Int(flow as i128), state])
                            })
                            .collect(),
                    ),
                ),
            ]);
            Ok(json.to_string().into_bytes())
        }
        CheckpointFormat::V2Binary => smb_sketch::codec::encode_flow_block(&flows)
            .map_err(|e| Error::invalid("shard", e.to_string())),
    }
}

/// Write epoch `epoch`: every shard file, then the manifest as the
/// commit record. Returns the total bytes written. Each shard's table
/// lock is held only while that shard serializes, so ingest keeps
/// flowing on the other shards.
pub(crate) fn write_checkpoint(
    config: &CheckpointConfig,
    epoch: u64,
    spec: AlgoSpec,
    tables: &[Arc<Mutex<ShardTable>>],
) -> smb_core::Result<u64> {
    let edir = config.dir.join(epoch_dir_name(epoch));
    fs::create_dir_all(&edir).map_err(|e| io_err("create dir", &edir, e))?;
    let mut files: Vec<Json> = Vec::with_capacity(tables.len());
    let mut total = 0u64;
    for (shard, table) in tables.iter().enumerate() {
        let flows = {
            let table = table.lock().expect("shard table lock");
            shard_flows(&table)?
        };
        let bytes = encode_shard(config.format, shard, flows)?;
        let name = config.format.shard_file_name(shard);
        write_atomic(&edir.join(&name), &bytes)?;
        files.push(Json::Obj(vec![
            ("name".into(), Json::Str(name)),
            ("crc32".into(), Json::Int(crc32(&bytes) as i128)),
            ("bytes".into(), Json::Int(bytes.len() as i128)),
        ]));
        total += bytes.len() as u64;
    }
    let body = Json::Obj(vec![
        ("epoch".into(), Json::Int(epoch as i128)),
        ("format".into(), Json::Int(config.format.code() as i128)),
        ("spec".into(), spec.to_json()),
        ("shards".into(), Json::Int(tables.len() as i128)),
        ("files".into(), Json::Arr(files)),
    ]);
    // The manifest carries a CRC over its own body. The serializer is
    // deterministic (insertion-ordered objects, `{:?}`-exact floats),
    // so the reader can re-serialize the parsed body and compare.
    let body_text = body.to_string();
    let manifest = Json::Obj(vec![
        ("crc32".into(), Json::Int(crc32(body_text.as_bytes()) as i128)),
        ("body".into(), body),
    ]);
    let manifest_bytes = manifest.to_string().into_bytes();
    total += manifest_bytes.len() as u64;
    write_atomic(&edir.join(MANIFEST), &manifest_bytes)?;
    sync_dir(&edir);
    sync_dir(&config.dir);
    Ok(total)
}

/// Delete the oldest epoch directories until at most `keep` remain.
/// Best-effort: a prune failure never fails the checkpoint that
/// triggered it.
pub(crate) fn prune_epochs(dir: &Path, keep: usize) {
    let epochs = list_epochs(dir);
    if epochs.len() <= keep {
        return;
    }
    for &epoch in &epochs[..epochs.len() - keep] {
        let _ = fs::remove_dir_all(dir.join(epoch_dir_name(epoch)));
    }
}

/// A fully validated epoch, ready to rebuild estimators from.
pub(crate) struct LoadedEpoch {
    pub spec: AlgoSpec,
    pub shards: usize,
    /// Every `(flow, state)` pair across all shard files.
    pub flows: Vec<(u64, Json)>,
}

/// Validate and load one epoch. `Err` carries the human-readable
/// reason the epoch fails its consistency check.
fn load_epoch(dir: &Path, epoch: u64) -> Result<LoadedEpoch, String> {
    let edir = dir.join(epoch_dir_name(epoch));
    let manifest_path = edir.join(MANIFEST);
    let manifest_bytes = fs::read(&manifest_path)
        .map_err(|e| format!("manifest unreadable ({e}) — epoch torn before commit"))?;
    let manifest_text =
        String::from_utf8(manifest_bytes).map_err(|_| "manifest is not UTF-8".to_string())?;
    let manifest =
        Json::parse(&manifest_text).map_err(|e| format!("manifest does not parse: {e}"))?;
    let recorded_crc = manifest
        .field("crc32")
        .and_then(|v| v.as_u64())
        .map_err(|e| format!("manifest crc32 field: {e}"))?;
    let body = manifest
        .field("body")
        .map_err(|e| format!("manifest body field: {e}"))?;
    if crc32(body.to_string().as_bytes()) as u64 != recorded_crc {
        return Err("manifest checksum mismatch — manifest corrupted".into());
    }
    if body
        .field("epoch")
        .and_then(|v| v.as_u64())
        .map_err(|e| format!("manifest epoch field: {e}"))?
        != epoch
    {
        return Err("manifest epoch does not match its directory".into());
    }
    // Pre-v2 manifests carry no `format` field; absent means v1 JSON.
    let format = match body.field("format") {
        Ok(v) => CheckpointFormat::from_code(
            v.as_u64().map_err(|e| format!("manifest format field: {e}"))?,
        )?,
        Err(_) => CheckpointFormat::V1Json,
    };
    let spec = AlgoSpec::from_json(body.field("spec").map_err(|e| e.to_string())?)
        .map_err(|e| format!("manifest spec invalid: {e}"))?;
    let shards = body
        .field("shards")
        .and_then(|v| v.as_usize())
        .map_err(|e| format!("manifest shards field: {e}"))?;
    let Json::Arr(files) = body.field("files").map_err(|e| e.to_string())? else {
        return Err("manifest files field is not an array".into());
    };
    if files.len() != shards {
        return Err(format!(
            "manifest lists {} files for {shards} shards",
            files.len()
        ));
    }
    let mut flows: Vec<(u64, Json)> = Vec::new();
    for (shard, entry) in files.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_owned))
            .map_err(|e| format!("file entry {shard}: {e}"))?;
        if name != format.shard_file_name(shard) {
            return Err(format!("file entry {shard} names `{name}`"));
        }
        let want_crc = entry
            .field("crc32")
            .and_then(|v| v.as_u64())
            .map_err(|e| format!("{name} crc32: {e}"))?;
        let want_len = entry
            .field("bytes")
            .and_then(|v| v.as_usize())
            .map_err(|e| format!("{name} bytes: {e}"))?;
        let path = edir.join(&name);
        let bytes = fs::read(&path).map_err(|e| format!("{name} unreadable ({e}) — missing shard"))?;
        if bytes.len() != want_len {
            return Err(format!(
                "{name} is {} bytes, manifest records {want_len} — torn shard file",
                bytes.len()
            ));
        }
        if crc32(&bytes) as u64 != want_crc {
            return Err(format!("{name} checksum mismatch — shard file corrupted"));
        }
        match format {
            CheckpointFormat::V1Json => {
                let text =
                    String::from_utf8(bytes).map_err(|_| format!("{name} is not UTF-8"))?;
                let json =
                    Json::parse(&text).map_err(|e| format!("{name} does not parse: {e}"))?;
                let Json::Arr(pairs) = json
                    .field("flows")
                    .map_err(|e| format!("{name} flows field: {e}"))?
                else {
                    return Err(format!("{name} flows field is not an array"));
                };
                for pair in pairs {
                    let Json::Arr(kv) = pair else {
                        return Err(format!("{name} holds a non-pair flow entry"));
                    };
                    let [flow, state] = kv.as_slice() else {
                        return Err(format!("{name} holds a malformed flow pair"));
                    };
                    let flow =
                        flow.as_u64().map_err(|e| format!("{name} flow key: {e}"))?;
                    flows.push((flow, state.clone()));
                }
            }
            CheckpointFormat::V2Binary => {
                // The binary decoder rebuilds the same canonical JSON
                // states the v1 reader parses — everything downstream
                // (spec validation, estimator restore) is shared.
                let decoded = smb_sketch::codec::decode_flow_block(&bytes)
                    .map_err(|e| format!("{name} does not decode: {e}"))?;
                flows.extend(decoded);
            }
        }
    }
    Ok(LoadedEpoch { spec, shards, flows })
}

/// Walk epochs newest-first and return the first consistent one, plus
/// a [`RestoreReport`] (with `flows` still 0 — the caller fills it in
/// after rebuilding) listing every newer epoch that had to be skipped.
pub(crate) fn select_epoch(dir: &Path) -> smb_core::Result<(LoadedEpoch, RestoreReport)> {
    let epochs = list_epochs(dir);
    if epochs.is_empty() {
        return Err(Error::NoConsistentCheckpoint {
            detail: format!("{}: no epoch directories found", dir.display()),
        });
    }
    let mut skipped: Vec<(u64, String)> = Vec::new();
    for &epoch in epochs.iter().rev() {
        match load_epoch(dir, epoch) {
            Ok(loaded) => {
                let report = RestoreReport {
                    epoch,
                    flows: 0,
                    checkpoint_shards: loaded.shards,
                    skipped,
                };
                return Ok((loaded, report));
            }
            Err(reason) => skipped.push((epoch, reason)),
        }
    }
    let detail = skipped
        .iter()
        .map(|(epoch, reason)| format!("epoch {epoch}: {reason}"))
        .collect::<Vec<_>>()
        .join("; ");
    Err(Error::NoConsistentCheckpoint {
        detail: format!("{}: {detail}", dir.display()),
    })
}

/// Allocate the next epoch number: past everything on disk *and* past
/// everything this engine already wrote (the shared counter), so a
/// manual checkpoint and the background thread never collide.
pub(crate) fn alloc_epoch(dir: &Path, counter: &Mutex<u64>) -> u64 {
    let mut next = counter.lock().expect("epoch counter lock");
    let disk_next = list_epochs(dir).last().map_or(0, |&e| e + 1);
    let epoch = (*next).max(disk_next);
    *next = epoch + 1;
    epoch
}

/// One checkpoint attempt with the config's retry/backoff budget,
/// recording metrics either way. Returns the epoch written.
pub(crate) fn checkpoint_with_retries(
    config: &CheckpointConfig,
    counter: &Mutex<u64>,
    spec: AlgoSpec,
    tables: &[Arc<Mutex<ShardTable>>],
    metrics: &CheckpointMetrics,
    flight: Option<&FlightRecorder>,
) -> smb_core::Result<u64> {
    let epoch = alloc_epoch(&config.dir, counter);
    let mut attempt = 0u32;
    loop {
        let start = Instant::now();
        match write_checkpoint(config, epoch, spec, tables) {
            Ok(bytes) => {
                metrics
                    .duration
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                metrics.bytes.record(bytes);
                metrics.epoch.set(epoch as i64);
                metrics.written.inc();
                if let Some(flight) = flight {
                    flight.record(FlightEvent {
                        kind: FlightEventKind::Checkpoint,
                        round: 0,
                        fresh_bits: 0,
                        logical_size: 0,
                        // Field reuse: for checkpoint events `items`
                        // carries the epoch number written.
                        items: epoch,
                        estimate: 0.0,
                        at_ns: 0,
                    });
                }
                prune_epochs(&config.dir, config.keep_epochs);
                return Ok(epoch);
            }
            Err(e) => {
                if attempt >= config.retries {
                    metrics.failures.inc();
                    // Drop the partial epoch so recovery never has to
                    // wade through it (it would be skipped anyway — no
                    // manifest — but there is no reason to keep it).
                    let _ = fs::remove_dir_all(config.dir.join(epoch_dir_name(epoch)));
                    return Err(e);
                }
                attempt += 1;
                metrics.retries.inc();
                std::thread::sleep(config.backoff);
            }
        }
    }
}

/// The background checkpointer: a thread writing one epoch per
/// interval until stopped. Owned by the engine; stopping joins the
/// thread without a final write (the engine's `finish` handles that).
pub(crate) struct Checkpointer {
    pub(crate) config: CheckpointConfig,
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Checkpointer {
    pub(crate) fn spawn(
        config: CheckpointConfig,
        spec: AlgoSpec,
        tables: Vec<Arc<Mutex<ShardTable>>>,
        metrics: Arc<CheckpointMetrics>,
        counter: Arc<Mutex<u64>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_config = config.clone();
        let handle = std::thread::Builder::new()
            .name("smb-engine-checkpoint".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                loop {
                    // Deadline-based wait: spurious condvar wakeups go
                    // back to sleep for the remaining interval instead
                    // of checkpointing early.
                    let deadline = Instant::now() + thread_config.interval;
                    let mut stopped = lock.lock().expect("checkpointer stop lock");
                    loop {
                        if *stopped {
                            return;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, _) = cvar
                            .wait_timeout(stopped, deadline - now)
                            .expect("checkpointer stop lock");
                        stopped = guard;
                    }
                    drop(stopped);
                    // Failure is recorded in the metrics; the loop
                    // carries on and tries again next interval.
                    let _ = checkpoint_with_retries(
                        &thread_config,
                        &counter,
                        spec,
                        &tables,
                        &metrics,
                        flight.as_deref(),
                    );
                }
            })
            .expect("spawn checkpointer");
        Checkpointer {
            config,
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread and join it. No final checkpoint is written.
    pub(crate) fn stop(mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("checkpointer stop lock") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_names_round_trip_and_sort() {
        assert_eq!(epoch_dir_name(0), "epoch-0000000000");
        assert_eq!(epoch_dir_name(42), "epoch-0000000042");
        assert_eq!(parse_epoch_dir("epoch-0000000042"), Some(42));
        assert_eq!(parse_epoch_dir("epoch-x"), None);
        assert_eq!(parse_epoch_dir("shard-0000.json"), None);
        // Zero-padding keeps lexicographic and numeric order aligned
        // through ten digits.
        assert!(epoch_dir_name(9) < epoch_dir_name(10));
        assert!(epoch_dir_name(999_999_999) < epoch_dir_name(1_000_000_000));
    }

    #[test]
    fn config_defaults_and_validation() {
        let c = CheckpointConfig::new("/tmp/x");
        assert_eq!(c.interval, Duration::from_secs(30));
        assert_eq!(c.retries, 3);
        assert_eq!(c.keep_epochs, 2);
        assert!(c.validate().is_ok());
        assert!(c.clone().with_keep_epochs(0).validate().is_err());
        assert!(c.with_interval(Duration::ZERO).validate().is_err());
    }

    #[test]
    fn list_epochs_of_missing_dir_is_empty() {
        assert!(list_epochs(Path::new("/nonexistent/smb-ckpt")).is_empty());
    }

    #[test]
    fn alloc_epoch_is_monotone_and_disk_aware() {
        let dir = std::env::temp_dir().join(format!("smb-alloc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let counter = Mutex::new(0u64);
        assert_eq!(alloc_epoch(&dir, &counter), 0);
        assert_eq!(alloc_epoch(&dir, &counter), 1);
        // Epochs already on disk (e.g. from a previous process) push
        // the counter forward.
        fs::create_dir_all(dir.join(epoch_dir_name(7))).unwrap();
        assert_eq!(alloc_epoch(&dir, &counter), 8);
        fs::remove_dir_all(&dir).unwrap();
    }
}
