//! The sharded flow-estimation engine.
//!
//! ## Architecture
//!
//! ```text
//!             ingest(flow, item)             worker 0 ── FlowTable 0
//!  caller ──► hash once ──► shard = f(flow) ─┤  ...          ...
//!             batch per shard ──► bounded ───┘ worker N ── FlowTable N
//!                                 queues
//! ```
//!
//! * **Hash once.** The producer computes the 64-bit [`ItemHash`] under
//!   the engine's single [`HashScheme`]; workers never touch item
//!   bytes.
//! * **Partition by flow.** A flow's packets always land on the same
//!   shard, so per-flow estimates are **bit-identical for any shard
//!   count** (each estimator sees the same items in the same order) and
//!   workers need no cross-shard coordination.
//! * **Batch.** Items travel in fixed-size batches over bounded
//!   queues; the producer touches a queue lock once per batch and each
//!   worker locks its table once per batch, so the per-item hot path on
//!   both sides is lock-free.
//! * **Backpressure.** When a shard queue is full the engine either
//!   blocks the producer ([`BackpressurePolicy::Block`], losslessly
//!   pacing ingest to the workers) or counts the batch into
//!   `dropped_items` and moves on ([`BackpressurePolicy::DropNewest`],
//!   bounding producer latency as a router would under overload).
//!   Either way `queue_full_events` records every time a full queue
//!   was observed.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use smb_factory::{AlgoSpec, DynEstimator};
use smb_hash::{mix, HashScheme, ItemHash};
use smb_sketch::FlowTable;

use crate::channel::{bounded, Sender, TrySendError};
use crate::stats::{EngineStats, ShardCounters};

/// Factory shared by all shards; must be callable from worker threads.
pub type EstimatorFactory = dyn Fn(u64) -> DynEstimator + Send + Sync;

/// The concrete table type a shard worker owns. This is where the
/// `Send` requirement on flow-table factories lives — single-threaded
/// [`FlowTable`] users are free of it.
pub type ShardTable = FlowTable<DynEstimator, Box<dyn Fn(u64) -> DynEstimator + Send>>;

/// One (flow key, pre-computed hash) pair in flight.
type Entry = (u64, ItemHash);
type Batch = Vec<Entry>;

/// What to do when a shard's queue is full at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the worker frees queue space. Lossless;
    /// ingest throughput degrades to worker throughput.
    #[default]
    Block,
    /// Drop the just-completed batch and count it in `dropped_items`.
    /// Bounded producer latency; estimates undercount under overload.
    DropNewest,
}

impl BackpressurePolicy {
    /// Parse a CLI name (`block` / `drop`).
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(BackpressurePolicy::Block),
            "drop" => Ok(BackpressurePolicy::DropNewest),
            other => Err(format!("unknown backpressure policy `{other}` (block|drop)")),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// What estimator each flow gets (also fixes the hash scheme).
    pub spec: AlgoSpec,
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Items per batch (≥ 1).
    pub batch: usize,
    /// Per-shard queue capacity, in batches (≥ 1).
    pub queue_batches: usize,
    /// Full-queue behaviour.
    pub policy: BackpressurePolicy,
}

impl EngineConfig {
    /// Defaults sized for the host: one shard per available core,
    /// 256-item batches, 8 batches of queue per shard, blocking
    /// backpressure.
    pub fn new(spec: AlgoSpec) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineConfig {
            spec,
            shards: cores,
            batch: 256,
            queue_batches: 8,
            policy: BackpressurePolicy::Block,
        }
    }

    /// Set the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Set the per-shard queue capacity in batches.
    pub fn with_queue_batches(mut self, queue_batches: usize) -> Self {
        self.queue_batches = queue_batches;
        self
    }

    /// Set the backpressure policy.
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn validate(&self) -> smb_core::Result<()> {
        if self.shards == 0 {
            return Err(smb_core::Error::invalid("shards", "must be at least 1"));
        }
        if self.batch == 0 {
            return Err(smb_core::Error::invalid("batch", "must be at least 1"));
        }
        if self.queue_batches == 0 {
            return Err(smb_core::Error::invalid(
                "queue_batches",
                "must be at least 1",
            ));
        }
        Ok(())
    }
}

struct Shard {
    tx: Sender<Batch>,
    table: Arc<Mutex<ShardTable>>,
    counters: Arc<ShardCounters>,
    worker: Option<JoinHandle<()>>,
}

/// A multi-core, sharded per-flow cardinality-estimation pipeline.
///
/// ```
/// use smb_engine::{EngineConfig, ShardedFlowEngine};
/// use smb_factory::{Algo, AlgoSpec};
///
/// let spec = AlgoSpec::new(Algo::Smb, 2048).with_n_max(1e5).with_seed(7);
/// let mut engine = ShardedFlowEngine::new(EngineConfig::new(spec).with_shards(2)).unwrap();
/// for i in 0..10_000u32 {
///     engine.ingest(i as u64 % 4, &i.to_le_bytes());
/// }
/// engine.flush();
/// assert_eq!(engine.stats().total_flows(), 4);
/// assert!(engine.query(0).unwrap() > 1000.0);
/// ```
pub struct ShardedFlowEngine {
    config: EngineConfig,
    scheme: HashScheme,
    shards: Vec<Shard>,
    /// Producer-side accumulation, one partial batch per shard.
    pending: Vec<Batch>,
}

/// Salt decorrelating shard selection from the estimators' item hashing
/// (both see the flow key; the item hash additionally sees the bytes).
const SHARD_SALT: u64 = 0x5348_4152_445F_534D;

impl ShardedFlowEngine {
    /// Spawn an engine whose per-flow estimators come from
    /// `config.spec`. Fails fast if the spec's parameters are invalid
    /// (workers never build a broken estimator mid-stream).
    pub fn new(config: EngineConfig) -> smb_core::Result<Self> {
        // Probe the spec once so errors surface here, not in a worker.
        config.spec.build()?;
        let spec = config.spec;
        let factory: Arc<EstimatorFactory> =
            Arc::new(move |_flow| spec.build().expect("spec validated at engine construction"));
        Self::with_factory(config, spec.scheme(), factory)
    }

    /// Spawn an engine with a custom estimator factory. `scheme` must
    /// be the hash scheme the factory's estimators record under — the
    /// producer hashes items exactly once, through this scheme.
    pub fn with_factory(
        config: EngineConfig,
        scheme: HashScheme,
        factory: Arc<EstimatorFactory>,
    ) -> smb_core::Result<Self> {
        config.validate()?;
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = bounded::<Batch>(config.queue_batches);
            let counters = Arc::new(ShardCounters::default());
            let shard_factory = Arc::clone(&factory);
            let table: Arc<Mutex<ShardTable>> = Arc::new(Mutex::new(FlowTable::with_factory(
                Box::new(move |flow| (shard_factory)(flow)),
            )));
            let worker_table = Arc::clone(&table);
            let worker_counters = Arc::clone(&counters);
            let worker = std::thread::Builder::new()
                .name("smb-engine-shard".into())
                .spawn(move || {
                    let mut run: Vec<ItemHash> = Vec::new();
                    while let Some(batch) = rx.recv() {
                        let mut table = worker_table.lock().expect("shard table lock");
                        // Record consecutive same-flow runs through the
                        // batched estimator path; per-flow order is
                        // preserved, so estimates are unaffected.
                        let mut i = 0;
                        while i < batch.len() {
                            let flow = batch[i].0;
                            let mut j = i + 1;
                            while j < batch.len() && batch[j].0 == flow {
                                j += 1;
                            }
                            if j - i == 1 {
                                table.record_hash(flow, batch[i].1);
                            } else {
                                run.clear();
                                run.extend(batch[i..j].iter().map(|&(_, h)| h));
                                table.record_hashes(flow, &run);
                            }
                            i = j;
                        }
                        drop(table);
                        worker_counters
                            .items_recorded
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        worker_counters
                            .batches_processed
                            .fetch_add(1, Ordering::Release);
                    }
                })
                .expect("spawn shard worker");
            shards.push(Shard {
                tx,
                table,
                counters,
                worker: Some(worker),
            });
        }
        Ok(ShardedFlowEngine {
            pending: vec![Vec::with_capacity(config.batch); config.shards],
            config,
            scheme,
            shards,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The scheme the producer hashes items under. Pre-hashed ingest
    /// ([`ShardedFlowEngine::ingest_hash`]) must use exactly this.
    pub fn scheme(&self) -> HashScheme {
        self.scheme
    }

    /// Which shard owns `flow`. Deterministic in the flow key alone.
    #[inline]
    pub fn shard_of(&self, flow: u64) -> usize {
        (mix::moremur(flow ^ SHARD_SALT) % self.shards.len() as u64) as usize
    }

    /// Ingest one item for `flow`: hash once, stage into the owning
    /// shard's batch, dispatch when the batch fills. No locks unless a
    /// batch is dispatched.
    #[inline]
    pub fn ingest(&mut self, flow: u64, item: &[u8]) {
        self.ingest_hash(flow, self.scheme.item_hash(item));
    }

    /// Ingest an item already hashed under [`ShardedFlowEngine::scheme`].
    #[inline]
    pub fn ingest_hash(&mut self, flow: u64, hash: ItemHash) {
        let shard = self.shard_of(flow);
        self.pending[shard].push((flow, hash));
        if self.pending[shard].len() >= self.config.batch {
            self.dispatch(shard);
        }
    }

    /// Ingest a sequence of `(flow, item)` pairs.
    pub fn ingest_batch<'a>(&mut self, items: impl IntoIterator<Item = (u64, &'a [u8])>) {
        for (flow, item) in items {
            self.ingest(flow, item);
        }
    }

    /// Hand shard `shard`'s pending batch to its queue, applying the
    /// backpressure policy.
    fn dispatch(&mut self, shard: usize) {
        let batch = std::mem::replace(
            &mut self.pending[shard],
            Vec::with_capacity(self.config.batch),
        );
        if batch.is_empty() {
            return;
        }
        let s = &self.shards[shard];
        let n = batch.len() as u64;
        s.counters.batched_items.fetch_add(n, Ordering::Relaxed);
        // Optimistically count the batch as sent; the drop path undoes
        // this. Single producer, so flush (same thread) never observes
        // the intermediate state.
        s.counters.batches_sent.fetch_add(1, Ordering::Release);
        s.counters.items_enqueued.fetch_add(n, Ordering::Relaxed);
        match s.tx.try_send(batch) {
            Ok(()) => {}
            Err(TrySendError::Full(batch)) => {
                s.counters.queue_full_events.fetch_add(1, Ordering::Relaxed);
                match self.config.policy {
                    BackpressurePolicy::Block => {
                        if s.tx.send(batch).is_err() {
                            unreachable!("engine closes queues only on drop");
                        }
                    }
                    BackpressurePolicy::DropNewest => {
                        s.counters.batches_sent.fetch_sub(1, Ordering::Relaxed);
                        s.counters.items_enqueued.fetch_sub(n, Ordering::Relaxed);
                        s.counters.dropped_items.fetch_add(n, Ordering::Relaxed);
                    }
                }
            }
            Err(TrySendError::Closed(_)) => {
                unreachable!("engine closes queues only on drop")
            }
        }
    }

    /// Deliver all partial batches and wait until every shard has
    /// processed everything enqueued so far. After `flush`, queries
    /// and stats reflect every ingested (non-dropped) item.
    ///
    /// Partial batches are delivered with blocking sends under either
    /// policy: flush is a delivery point, not a load-shedding one.
    ///
    /// # Panics
    /// If a shard worker died (estimator panic), since its queue can
    /// then never drain.
    pub fn flush(&mut self) {
        for shard in 0..self.shards.len() {
            if self.pending[shard].is_empty() {
                continue;
            }
            let batch = std::mem::replace(
                &mut self.pending[shard],
                Vec::with_capacity(self.config.batch),
            );
            let s = &self.shards[shard];
            let n = batch.len() as u64;
            s.counters.batched_items.fetch_add(n, Ordering::Relaxed);
            s.counters.batches_sent.fetch_add(1, Ordering::Release);
            s.counters.items_enqueued.fetch_add(n, Ordering::Relaxed);
            if s.tx.send(batch).is_err() {
                unreachable!("engine closes queues only on drop");
            }
        }
        for s in &self.shards {
            loop {
                let sent = s.counters.batches_sent.load(Ordering::Acquire);
                let done = s.counters.batches_processed.load(Ordering::Acquire);
                if done >= sent {
                    break;
                }
                if s.worker.as_ref().is_some_and(|w| w.is_finished()) {
                    panic!("shard worker died with {} batches unprocessed", sent - done);
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Estimate the cardinality of `flow`; `None` if never seen.
    /// Reflects data already processed by the owning worker — call
    /// [`ShardedFlowEngine::flush`] first for an up-to-date answer.
    pub fn query(&self, flow: u64) -> Option<f64> {
        let shard = self.shard_of(flow);
        self.shards[shard]
            .table
            .lock()
            .expect("shard table lock")
            .estimate(flow)
    }

    /// The `k` flows with the largest estimates, descending — the
    /// engine-wide version of [`FlowTable::flows_over`].
    pub fn snapshot_top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = Vec::new();
        for s in &self.shards {
            all.extend(s.table.lock().expect("shard table lock").estimates());
        }
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("estimates are finite"));
        all.truncate(k);
        all
    }

    /// Every `(flow, estimate)` pair across all shards, in unspecified
    /// order.
    pub fn all_estimates(&self) -> Vec<(u64, f64)> {
        let mut all = Vec::new();
        for s in &self.shards {
            all.extend(s.table.lock().expect("shard table lock").estimates());
        }
        all
    }

    /// Per-shard counters plus flow counts — the engine's
    /// observability surface.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let flows = s.table.lock().expect("shard table lock").len() as u64;
                    s.counters.snapshot(i, flows)
                })
                .collect(),
        }
    }

    /// Total memory held by per-flow estimators across all shards, in
    /// bits.
    pub fn total_memory_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.table
                    .lock()
                    .expect("shard table lock")
                    .total_memory_bits()
            })
            .sum()
    }

    /// Flush, stop the workers, and return the final statistics.
    pub fn finish(mut self) -> EngineStats {
        self.flush();
        let stats = self.stats();
        self.close_and_join();
        stats
    }

    fn close_and_join(&mut self) {
        for s in &mut self.shards {
            s.tx.close();
        }
        for s in &mut self.shards {
            if let Some(worker) = s.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ShardedFlowEngine {
    /// Stops the workers. Pending (undispatched) partial batches are
    /// discarded — call [`ShardedFlowEngine::flush`] or
    /// [`ShardedFlowEngine::finish`] first if you need them counted.
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl std::fmt::Debug for ShardedFlowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFlowEngine")
            .field("shards", &self.shards.len())
            .field("batch", &self.config.batch)
            .field("queue_batches", &self.config.queue_batches)
            .field("policy", &self.config.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_factory::Algo;

    fn spec() -> AlgoSpec {
        AlgoSpec::new(Algo::Smb, 2048).with_n_max(1e5).with_seed(3)
    }

    #[test]
    fn config_validation() {
        assert!(ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(0)).is_err());
        assert!(ShardedFlowEngine::new(EngineConfig::new(spec()).with_batch(0)).is_err());
        assert!(ShardedFlowEngine::new(EngineConfig::new(spec()).with_queue_batches(0)).is_err());
        let bad = AlgoSpec::new(Algo::Smb, 0);
        assert!(ShardedFlowEngine::new(EngineConfig::new(bad)).is_err());
    }

    #[test]
    fn flows_partition_stably() {
        let engine = ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(4)).unwrap();
        for flow in 0..100u64 {
            assert_eq!(engine.shard_of(flow), engine.shard_of(flow));
            assert!(engine.shard_of(flow) < 4);
        }
    }

    #[test]
    fn ingest_flush_query_roundtrip() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(3).with_batch(64),
        )
        .unwrap();
        for i in 0..5000u32 {
            engine.ingest(7, &i.to_le_bytes());
            engine.ingest(8, &(i % 50).to_le_bytes());
        }
        engine.flush();
        let e7 = engine.query(7).expect("flow 7 exists");
        let e8 = engine.query(8).expect("flow 8 exists");
        assert!((e7 - 5000.0).abs() / 5000.0 < 0.3, "{e7}");
        assert!((e8 - 50.0).abs() / 50.0 < 0.5, "{e8}");
        assert_eq!(engine.query(9), None);
        let top = engine.snapshot_top_k(1);
        assert_eq!(top[0].0, 7);
        let stats = engine.stats();
        assert_eq!(stats.total_enqueued(), 10_000);
        assert_eq!(stats.total_recorded(), 10_000);
        assert_eq!(stats.total_dropped(), 0);
        assert_eq!(stats.total_flows(), 2);
    }

    #[test]
    fn finish_returns_complete_stats() {
        let mut engine =
            ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(2).with_batch(16))
                .unwrap();
        for i in 0..1000u32 {
            engine.ingest(i as u64 % 10, &i.to_le_bytes());
        }
        let stats = engine.finish();
        assert_eq!(stats.total_recorded(), 1000);
        assert_eq!(stats.total_flows(), 10);
        // 1000 items over 10 flows × 2 shards: occupancy is meaningful.
        for s in &stats.shards {
            if s.batches_sent > 0 {
                assert!(s.mean_batch_occupancy > 0.0);
            }
        }
    }

    #[test]
    fn matches_unsharded_flow_table() {
        let sp = spec();
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(sp).with_shards(3).with_batch(32),
        )
        .unwrap();
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        for i in 0..3000u32 {
            let flow = (i % 17) as u64;
            let item = i.to_le_bytes();
            engine.ingest(flow, &item);
            reference.record(flow, &item);
        }
        engine.flush();
        for flow in 0..17u64 {
            assert_eq!(engine.query(flow), reference.estimate(flow), "flow {flow}");
        }
    }
}
