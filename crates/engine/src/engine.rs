//! The sharded flow-estimation engine.
//!
//! ## Architecture
//!
//! ```text
//!             ingest(flow, item)             worker 0 ── FlowTable 0
//!  caller ──► hash once ──► shard = f(flow) ─┤  ...          ...
//!             batch per shard ──► bounded ───┘ worker N ── FlowTable N
//!                                 queues
//! ```
//!
//! * **Hash once.** The producer computes the 64-bit [`ItemHash`] under
//!   the engine's single [`HashScheme`]; workers never touch item
//!   bytes.
//! * **Partition by flow.** A flow's packets always land on the same
//!   shard, so per-flow estimates are **bit-identical for any shard
//!   count** (each estimator sees the same items in the same order) and
//!   workers need no cross-shard coordination.
//! * **Batch.** Items travel in fixed-size batches over bounded
//!   queues; the producer touches a queue lock once per batch and each
//!   worker locks its table once per batch, so the per-item hot path on
//!   both sides is lock-free.
//! * **Backpressure.** When a shard queue is full the engine either
//!   blocks the producer ([`BackpressurePolicy::Block`], losslessly
//!   pacing ingest to the workers) or counts the batch into
//!   `dropped_items` and moves on ([`BackpressurePolicy::DropNewest`],
//!   bounding producer latency as a router would under overload).
//!   Either way `queue_full_events` records every time a full queue
//!   was observed.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use smb_core::{CardinalityEstimator, EstimatorEvent, ObserverHandle, SmbObserver as _};
use smb_factory::{AlgoSpec, DynEstimator};
use smb_hash::{mix, HashScheme, ItemHash};
use smb_sketch::{FlowStore, FlowTable, TierStats};
use smb_telemetry::{
    BatchedMetricsObserver, FlightEvent, FlightEventKind, FlightRecorder, Histogram, Registry,
    RegistrySnapshot,
};

use crate::channel::{bounded, Sender, TrySendError};
use crate::durability::{
    checkpoint_with_retries, select_epoch, CheckpointConfig, CheckpointMetrics, Checkpointer,
    LoadedEpoch, RestoreReport,
};
use crate::stats::{EngineStats, ProducerMetrics, ProducerStats, ShardMetrics, STAGE_HELP};

/// Factory shared by all shards; must be callable from worker threads.
pub type EstimatorFactory = dyn Fn(u64) -> DynEstimator + Send + Sync;

/// The concrete table type a shard worker owns. This is where the
/// `Send` requirement on flow-table factories lives — single-threaded
/// [`FlowTable`] users are free of it.
pub type ShardTable = FlowTable<DynEstimator, Box<dyn Fn(u64) -> DynEstimator + Send>>;

/// One (flow key, pre-computed hash) pair in flight.
type Entry = (u64, ItemHash);

/// Timestamps a traced batch carries across the pipeline. Only
/// batches picked by the `trace_sample` knob allocate one, so the
/// untraced hot path pays a single `Option` check per batch.
#[derive(Debug, Clone, Copy)]
struct BatchTrace {
    /// When the batch's first item was staged — the start of the
    /// `producer_hash` stage.
    staged: Instant,
    /// When the batch was offered to the shard queue, set just before
    /// the (possibly blocking) send. The worker's `queue_wait` stage
    /// is measured from here, so it deliberately includes time the
    /// producer spent blocked on a full queue — that wait *is* queue
    /// backpressure, the thing the stage exists to show.
    offered: Option<Instant>,
}

/// The unit of transfer over a shard queue: staged entries plus the
/// optional trace context.
#[derive(Debug)]
struct Batch {
    entries: Vec<Entry>,
    trace: Option<BatchTrace>,
}

impl Batch {
    fn with_capacity(cap: usize) -> Self {
        Batch {
            entries: Vec::with_capacity(cap),
            trace: None,
        }
    }
}

/// What to do when a shard's queue is full at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the worker frees queue space. Lossless;
    /// ingest throughput degrades to worker throughput.
    #[default]
    Block,
    /// Drop the just-completed batch and count it in `dropped_items`.
    /// Bounded producer latency; estimates undercount under overload.
    DropNewest,
}

impl BackpressurePolicy {
    /// Parse a CLI name (`block` / `drop`).
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(BackpressurePolicy::Block),
            "drop" => Ok(BackpressurePolicy::DropNewest),
            other => Err(format!("unknown backpressure policy `{other}` (block|drop)")),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// What estimator each flow gets (also fixes the hash scheme).
    pub spec: AlgoSpec,
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Items per batch (≥ 1).
    pub batch: usize,
    /// Per-shard queue capacity, in batches (≥ 1).
    pub queue_batches: usize,
    /// Full-queue behaviour.
    pub policy: BackpressurePolicy,
    /// Expected number of distinct flows across the whole run
    /// (0 = unknown). When set, each shard's flow table is pre-sized
    /// at construction so steady-state ingest never rehashes
    /// mid-stream.
    pub expected_flows: usize,
    /// Pipeline-stage trace sampling: every `trace_sample`-th batch
    /// carries timestamps through producer-hash → enqueue →
    /// queue-wait → record-batch, landing in the per-shard
    /// `engine_stage_duration_ns{stage}` histograms. `0` (the
    /// default) disables tracing entirely; `1` traces every batch.
    pub trace_sample: u32,
}

impl EngineConfig {
    /// Defaults sized for the host: one shard per available core,
    /// 256-item batches, 8 batches of queue per shard, blocking
    /// backpressure.
    pub fn new(spec: AlgoSpec) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineConfig {
            spec,
            shards: cores,
            batch: 256,
            queue_batches: 8,
            policy: BackpressurePolicy::Block,
            expected_flows: 0,
            trace_sample: 0,
        }
    }

    /// Set the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Set the per-shard queue capacity in batches.
    pub fn with_queue_batches(mut self, queue_batches: usize) -> Self {
        self.queue_batches = queue_batches;
        self
    }

    /// Set the backpressure policy.
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Hint the expected number of distinct flows so shard tables are
    /// pre-sized up front (0 = unknown, grow on demand).
    pub fn with_expected_flows(mut self, expected_flows: usize) -> Self {
        self.expected_flows = expected_flows;
        self
    }

    /// Trace one batch in `trace_sample` through the pipeline stages
    /// (0 disables, 1 traces everything) — the `--trace-sample` knob.
    pub fn with_trace_sample(mut self, trace_sample: u32) -> Self {
        self.trace_sample = trace_sample;
        self
    }

    fn validate(&self) -> smb_core::Result<()> {
        if self.shards == 0 {
            return Err(smb_core::Error::invalid("shards", "must be at least 1"));
        }
        if self.batch == 0 {
            return Err(smb_core::Error::invalid("batch", "must be at least 1"));
        }
        if self.queue_batches == 0 {
            return Err(smb_core::Error::invalid(
                "queue_batches",
                "must be at least 1",
            ));
        }
        Ok(())
    }
}

struct Shard {
    tx: Sender<Batch>,
    table: Arc<Mutex<ShardTable>>,
    metrics: Arc<ShardMetrics>,
    worker: Option<JoinHandle<()>>,
}

/// Scratch buffers reused across [`record_batch_grouped`] calls so the
/// per-batch hot path allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct GroupScratch {
    /// `(flow, position)` pairs for the sort-based grouping path.
    order: Vec<(u64, u32)>,
    /// One flow's hashes, contiguous, for `record_hashes`.
    run: Vec<ItemHash>,
}

/// Decide whether grouping an interleaved batch pays off: grouping
/// buys long `record_hashes` runs when few distinct flows share the
/// batch, but the `(flow, position)` sort is pure overhead when nearly
/// every item belongs to a different flow (runs of one or two items).
/// Sixteen evenly spaced samples give a coarse distinct-flow read:
/// half or more repeated samples means runs will be long enough to
/// amortise the sort.
fn few_flows_dominate(batch: &[(u64, ItemHash)]) -> bool {
    const SAMPLE: usize = 16;
    if batch.len() < 4 * SAMPLE {
        // Tiny batches: the sort is cheap either way; grouping wins
        // whenever any flow repeats, so just try it.
        return true;
    }
    let step = batch.len() / SAMPLE;
    let mut seen = [0u64; SAMPLE];
    let mut distinct = 0;
    for i in 0..SAMPLE {
        let flow = batch[i * step].0;
        if !seen[..distinct].contains(&flow) {
            seen[distinct] = flow;
            distinct += 1;
        }
    }
    distinct <= SAMPLE / 2
}

/// Record one batch of `(flow, hash)` pairs into any [`FlowStore`],
/// resolving each distinct flow once per run of same-flow items
/// instead of once per item.
///
/// Per-flow arrival order is preserved exactly, so the resulting
/// per-flow states are bit-identical to recording the batch one item
/// at a time — the store's tiering (and each estimator's batched
/// path) already guarantees batch/item equivalence, and this function
/// only changes *which* items are presented together, never their
/// per-flow order. Three regimes, picked per batch by a cheap
/// two-level dispatch (one counting scan, then one 16-point sample):
///
/// * **run slicing** — the batch is cut into maximal same-flow runs in
///   arrival order and each run feeds one `record_hashes` call. This
///   covers sorted batches and bursty traffic (packet trains) without
///   any reordering;
/// * **sort grouping** — when runs are short *but* few distinct flows
///   share the batch (round-robin traffic), a `(flow, position)` sort
///   rebuilds long per-flow runs; the position component keeps each
///   flow's items in arrival order;
/// * **batched probe** — when runs are short *and* flows are diverse
///   (adversarial run-length-1 interleaves, uniform traffic), neither
///   slicing nor sorting can amortise flow resolution, so the whole
///   batch goes to the store's [`FlowStore::record_batch`]:
///   [`smb_sketch::FlowTable`] overrides it with a prefetch-pipelined
///   probe pass plus inline-tier recording, and the trait default is
///   the sequential per-item model itself — either way, item order is
///   exactly batch order.
pub fn record_batch_grouped<S: FlowStore>(
    store: &mut S,
    batch: &[(u64, ItemHash)],
    scratch: &mut GroupScratch,
) {
    if batch.is_empty() {
        return;
    }
    // Sorted batches slice perfectly with no reordering (early-exiting
    // scan: ~2 compares on unsorted data). Unsorted batches count
    // their maximal same-flow runs: bursty traffic still slices well,
    // and only short-run batches dominated by few flows are worth the
    // reordering sort.
    let sorted = batch.windows(2).all(|w| w[0].0 <= w[1].0);
    let sliced_runs_amortise = sorted || {
        let runs = 1 + batch.windows(2).filter(|w| w[0].0 != w[1].0).count();
        2 * runs <= batch.len()
    };
    if sliced_runs_amortise {
        let mut i = 0;
        while i < batch.len() {
            let flow = batch[i].0;
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == flow {
                j += 1;
            }
            // One store resolution per run; the store (and, once
            // materialized, the estimator's own `record_hashes`)
            // decides per-item vs batched recording for the slice.
            scratch.run.clear();
            scratch.run.extend(batch[i..j].iter().map(|&(_, h)| h));
            store.record_hashes(flow, &scratch.run);
            i = j;
        }
        return;
    }
    if !few_flows_dominate(batch) {
        // Short runs over diverse flows: slicing would degrade to
        // per-item resolution and sorting could never rebuild long
        // runs, so hand the whole batch to the store's batched-probe
        // path (no GroupScratch involvement at all).
        store.record_batch(batch);
        return;
    }
    scratch.order.clear();
    scratch
        .order
        .extend(batch.iter().enumerate().map(|(i, &(flow, _))| (flow, i as u32)));
    // Unstable sort of a totally ordered key set is order-stable: the
    // position component breaks every tie, keeping per-flow arrival
    // order.
    scratch.order.sort_unstable();
    let order = &scratch.order;
    let mut i = 0;
    while i < order.len() {
        let flow = order[i].0;
        let mut j = i + 1;
        while j < order.len() && order[j].0 == flow {
            j += 1;
        }
        scratch.run.clear();
        scratch
            .run
            .extend(order[i..j].iter().map(|&(_, pos)| batch[pos as usize].1));
        store.record_hashes(flow, &scratch.run);
        i = j;
    }
}

/// The pinned cross-shard ordering for estimate lists: estimate
/// descending, flow key ascending as the tie-break.
fn by_estimate_desc(a: &(u64, f64), b: &(u64, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .expect("estimates are finite")
        .then(a.0.cmp(&b.0))
}

/// Keep the `k` largest entries of `all`, sorted by
/// [`by_estimate_desc`]. Partitions first so the O(n log n) sort only
/// ever runs over k entries, not every flow.
fn top_k_in_place(all: &mut Vec<(u64, f64)>, k: usize) {
    if k > 0 && k < all.len() {
        all.select_nth_unstable_by(k - 1, by_estimate_desc);
        all.truncate(k);
    }
    all.sort_unstable_by(by_estimate_desc);
    all.truncate(k);
}

/// One multi-facet read against the engine's shard tables. Build with
/// the `with_*` setters and run through [`QueryHandle::run`] (or the
/// convenience [`ShardedFlowEngine::run_query`]); every requested
/// facet is answered from a single pass that locks each shard exactly
/// once, so one query costs one sweep no matter how many facets it
/// asks for. This is the one aggregate query surface — it subsumes
/// the former `snapshot_top_k` and the per-table `flows_over`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineQuery {
    /// Estimate this flow's cardinality.
    pub estimate: Option<u64>,
    /// The `k` flows with the largest estimates, in pinned
    /// (estimate desc, flow asc) order.
    pub top_k: Option<usize>,
    /// Every flow whose estimate is at least this threshold, in pinned
    /// (estimate desc, flow asc) order.
    pub flows_over: Option<f64>,
    /// Count the flows tracked across all shards.
    pub flow_count: bool,
    /// Sum resident per-flow bytes (slot arrays plus cell heap state)
    /// across all shards.
    pub memory_bytes: bool,
}

impl EngineQuery {
    /// An empty query; add facets with the `with_*` setters. Running
    /// it still reports [`QueryReport::tier_stats`], which every query
    /// carries for free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask for `flow`'s cardinality estimate.
    pub fn with_estimate(mut self, flow: u64) -> Self {
        self.estimate = Some(flow);
        self
    }

    /// Ask for the `k` largest-estimate flows.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Ask for every flow whose estimate is at least `threshold`.
    pub fn with_flows_over(mut self, threshold: f64) -> Self {
        self.flows_over = Some(threshold);
        self
    }

    /// Ask for the engine-wide flow count.
    pub fn with_flow_count(mut self) -> Self {
        self.flow_count = true;
        self
    }

    /// Ask for the engine-wide resident per-flow bytes.
    pub fn with_memory_bytes(mut self) -> Self {
        self.memory_bytes = true;
        self
    }
}

/// What an [`EngineQuery`] found. Each field is `Some`/non-default
/// only if the corresponding facet was requested; `tier_stats` is
/// always filled (reading the incremental counters is free).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryReport {
    /// The requested flow's estimate; `None` if the facet was not
    /// requested **or** the flow was never seen.
    pub estimate: Option<f64>,
    /// The top-k flows, if requested.
    pub top_k: Option<Vec<(u64, f64)>>,
    /// The flows over the threshold, if requested.
    pub flows_over: Option<Vec<(u64, f64)>>,
    /// Engine-wide flow count, if requested.
    pub flow_count: Option<usize>,
    /// Engine-wide resident bytes, if requested.
    pub memory_bytes: Option<usize>,
    /// Tier occupancy and lifetime promotion counters summed across
    /// shards, as of this query's sweep.
    pub tier_stats: TierStats,
}

/// A cheap, cloneable read handle over the engine's shard tables.
///
/// Queries run against the shared tables directly (each shard locked
/// briefly, one at a time) **without borrowing the engine**, so a
/// monitoring thread can hold a handle and query concurrently while
/// the owning thread keeps calling `&mut self` ingest methods — the
/// read-while-ingest pattern the old engine-borrowing accessors could
/// not express. The handle stays valid after the engine is dropped;
/// it then reads the tables' final state.
#[derive(Clone)]
pub struct QueryHandle {
    shards: Vec<Arc<Mutex<ShardTable>>>,
    /// The `query_sweep` stage histogram
    /// (`engine_stage_duration_ns{shard="all",stage="query_sweep"}`);
    /// every full sweep records its wall time here.
    sweep: Option<Arc<Histogram>>,
}

impl QueryHandle {
    /// Run `query`, locking each shard exactly once. Results reflect
    /// batches the workers have already processed; flush the engine
    /// first for a read of everything ingested. The sweep's wall time
    /// lands in `engine_stage_duration_ns{stage="query_sweep"}`.
    pub fn run(&self, query: &EngineQuery) -> QueryReport {
        let start = Instant::now();
        let mut report = QueryReport::default();
        let estimate_shard = query
            .estimate
            .map(|flow| shard_of_key(flow, self.shards.len()));
        let needs_estimates = query.top_k.is_some() || query.flows_over.is_some();
        let mut all: Vec<(u64, f64)> = Vec::new();
        for (i, table) in self.shards.iter().enumerate() {
            let table = table.lock().expect("shard table lock");
            if estimate_shard == Some(i) {
                report.estimate =
                    table.estimate(query.estimate.expect("estimate facet requested"));
            }
            if needs_estimates {
                all.extend(table.estimates());
            }
            if query.flow_count {
                *report.flow_count.get_or_insert(0) += table.len();
            }
            if query.memory_bytes {
                *report.memory_bytes.get_or_insert(0) += table.memory_bytes();
            }
            let t = table.tier_stats();
            report.tier_stats.small += t.small;
            report.tier_stats.array += t.array;
            report.tier_stats.full += t.full;
            report.tier_stats.promotions_to_array += t.promotions_to_array;
            report.tier_stats.promotions_to_full += t.promotions_to_full;
        }
        if let Some(threshold) = query.flows_over {
            let mut over: Vec<(u64, f64)> = all
                .iter()
                .copied()
                .filter(|&(_, estimate)| estimate >= threshold)
                .collect();
            over.sort_unstable_by(by_estimate_desc);
            report.flows_over = Some(over);
        }
        if let Some(k) = query.top_k {
            top_k_in_place(&mut all, k);
            report.top_k = Some(all);
        }
        if let Some(sweep) = &self.sweep {
            sweep.record(duration_ns(start.elapsed()));
        }
        report
    }

    /// Snapshot every flow's serialized cell state, sorted by flow
    /// key — unmaterialized cells as `{"tier", "hashes"}` wrappers,
    /// materialized ones as the estimator's own state. This is the
    /// payload of a wire `SNAPSHOT` response (encoded with
    /// [`smb_sketch::codec::encode_flow_block`]) and is exactly what a
    /// checkpoint shard holds, so a transferred snapshot restores
    /// bit-identically. Locks each shard briefly, one at a time;
    /// results reflect batches the workers have already processed.
    ///
    /// # Errors
    /// When a materialized estimator does not support snapshots.
    pub fn snapshot_cells(&self) -> smb_core::Result<Vec<(u64, smb_devtools::Json)>> {
        let mut all: Vec<(u64, smb_devtools::Json)> = Vec::new();
        for table in &self.shards {
            let table = table.lock().expect("shard table lock");
            all.extend(crate::durability::shard_flows(&table)?);
        }
        all.sort_unstable_by_key(|&(flow, _)| flow);
        Ok(all)
    }
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// A multi-core, sharded per-flow cardinality-estimation pipeline.
///
/// ```
/// use smb_engine::{EngineConfig, ShardedFlowEngine};
/// use smb_factory::{Algo, AlgoSpec};
///
/// let spec = AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(7);
/// let mut engine = ShardedFlowEngine::new(EngineConfig::new(spec).with_shards(2)).unwrap();
/// for i in 0..10_000u32 {
///     engine.ingest(i as u64 % 4, &i.to_le_bytes());
/// }
/// engine.flush();
/// assert_eq!(engine.stats().total_flows(), 4);
/// assert!(engine.query(0).unwrap() > 1000.0);
/// ```
pub struct ShardedFlowEngine {
    config: EngineConfig,
    scheme: HashScheme,
    shards: Vec<Shard>,
    /// Producer-side accumulation, one partial batch per shard.
    pending: Vec<Batch>,
    /// All engine metrics (per-shard series plus SMB morph counters)
    /// live here; export via [`ShardedFlowEngine::metrics_snapshot`].
    registry: Arc<Registry>,
    /// Durability series (checkpoint duration/bytes/epoch, restore
    /// counters), registered up front so exports always carry them.
    checkpoint_metrics: Arc<CheckpointMetrics>,
    /// Next epoch number this engine will write — shared with the
    /// background checkpointer so manual and background checkpoints
    /// never collide.
    next_epoch: Arc<Mutex<u64>>,
    /// The background checkpointer, if started.
    checkpointer: Option<Checkpointer>,
    /// Allocator for producer-handle ids, shared with every handle so
    /// clones made after the engine is gone still get unique ids.
    producer_ids: Arc<AtomicU32>,
    /// Batches staged by the engine front-end, for trace sampling.
    trace_seq: u64,
    /// The `query_sweep` stage histogram
    /// (`engine_stage_duration_ns{shard="all",stage="query_sweep"}`),
    /// shared with every [`QueryHandle`].
    query_sweep: Arc<Histogram>,
    /// Estimator-event telemetry (engines built via
    /// [`ShardedFlowEngine::new`] / restore): the batched observer the
    /// workers flush plus the flight recorder. `None` for custom
    /// factories ([`ShardedFlowEngine::with_factory`] /
    /// [`ShardedFlowEngine::with_registry`]), where estimator
    /// observation is the caller's business.
    telemetry: Option<EngineTelemetry>,
}

/// How many lifecycle events the engine's flight recorder retains.
const FLIGHT_CAPACITY: usize = 256;

/// The estimator-event half of engine telemetry: one
/// [`BatchedMetricsObserver`] (morph/clear/saturation counters folded
/// thread-locally, flushed by each worker per batch) and one
/// [`FlightRecorder`] (the last [`FLIGHT_CAPACITY`] lifecycle events),
/// both behind a single composite [`ObserverHandle`] attached to every
/// estimator the engine builds.
struct EngineTelemetry {
    batched: Arc<BatchedMetricsObserver>,
    flight: Arc<FlightRecorder>,
    handle: ObserverHandle,
}

impl EngineTelemetry {
    fn register(registry: &Registry) -> Self {
        let batched = BatchedMetricsObserver::register(registry, &[]);
        let flight = FlightRecorder::registered(FLIGHT_CAPACITY, registry, &[]);
        let handle = {
            let batched = Arc::clone(&batched);
            let flight = Arc::clone(&flight);
            ObserverHandle::from_observer(move |event: EstimatorEvent<'_>| {
                batched.on_event(event);
                flight.on_event(event);
            })
        };
        EngineTelemetry {
            batched,
            flight,
            handle,
        }
    }
}

/// Salt decorrelating shard selection from the estimators' item hashing
/// (both see the flow key; the item hash additionally sees the bytes).
const SHARD_SALT: u64 = 0x5348_4152_445F_534D;

/// The one shard-selection function, shared by the engine and every
/// [`EngineProducer`]: all ingest paths must agree on flow placement
/// or per-flow ordering (and estimates) would break.
#[inline]
fn shard_of_key(flow: u64, shards: usize) -> usize {
    (mix::moremur(flow ^ SHARD_SALT) % shards as u64) as usize
}

/// How a batch is handed to a shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeliveryMode {
    /// Dispatch-path delivery: try without blocking, apply the
    /// backpressure policy on a full queue, sample enqueue latency.
    Policy(BackpressurePolicy),
    /// Flush-path delivery: block until the queue accepts. Flush is a
    /// delivery point, not a load-shedding one, so the policy does not
    /// apply and no latency sample is taken (it would only measure the
    /// flush barrier itself).
    ForceBlock,
}

/// What [`deliver_batch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Delivery {
    /// The queue accepted the batch; the shard's delivered counters
    /// (`queue_depth`, `batches_sent`, `items_enqueued`) were updated.
    delivered: bool,
    /// The queue was observed full (possible on the policy path only).
    queue_full: bool,
    /// The channel was closed: the batch was discarded undelivered.
    /// The engine itself never sees this (it closes queues only on
    /// drop); a [`EngineProducer`] outliving its engine does.
    closed: bool,
}

/// Hand one batch to a shard queue, updating the shard's metric cells
/// exactly as the single-producer dispatch/flush paths always have:
/// occupancy first, queue-full and drop accounting per policy, and the
/// delivered counters only after the queue accepts (so a scrape never
/// sees them exceed reality). All cells are atomics, so any number of
/// producers may deliver to the same shard concurrently.
fn deliver_batch(
    metrics: &ShardMetrics,
    tx: &Sender<Batch>,
    mode: DeliveryMode,
    mut batch: Batch,
    flight: Option<&FlightRecorder>,
) -> Delivery {
    let n = batch.entries.len() as u64;
    metrics.batch_occupancy.record(n);
    // Traced batch: the producer_hash stage (staging the entries)
    // ends here; stamp the queue offer before the possibly-blocking
    // send so the worker can measure queue_wait from it.
    let offered = batch.trace.as_mut().map(|trace| {
        let now = Instant::now();
        metrics
            .stage_producer_hash
            .record(duration_ns(now.duration_since(trace.staged)));
        trace.offered = Some(now);
        now
    });
    let mut outcome = Delivery {
        delivered: false,
        queue_full: false,
        closed: false,
    };
    match mode {
        DeliveryMode::ForceBlock => {
            if tx.send(batch).is_ok() {
                outcome.delivered = true;
            } else {
                outcome.closed = true;
            }
        }
        DeliveryMode::Policy(policy) => {
            let start = Instant::now();
            match tx.try_send(batch) {
                Ok(()) => outcome.delivered = true,
                Err(TrySendError::Full(batch)) => {
                    outcome.queue_full = true;
                    metrics.queue_full_events.inc();
                    match policy {
                        BackpressurePolicy::Block => {
                            if tx.send(batch).is_ok() {
                                outcome.delivered = true;
                            } else {
                                outcome.closed = true;
                            }
                        }
                        BackpressurePolicy::DropNewest => {
                            metrics.dropped_items.add(n);
                            if let Some(flight) = flight {
                                flight.record(FlightEvent {
                                    kind: FlightEventKind::DropBurst,
                                    round: 0,
                                    fresh_bits: 0,
                                    logical_size: 0,
                                    // Field reuse: for drop bursts
                                    // `items` is the dropped count.
                                    items: n,
                                    estimate: 0.0,
                                    at_ns: 0,
                                });
                            }
                        }
                    }
                }
                Err(TrySendError::Closed(_)) => outcome.closed = true,
            }
            metrics
                .enqueue_latency
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    if outcome.delivered {
        if let Some(offered) = offered {
            metrics.stage_enqueue.record(duration_ns(offered.elapsed()));
        }
        metrics.queue_depth.add(1);
        metrics.batches_sent.add_release(1);
        metrics.items_enqueued.add(n);
    }
    outcome
}

/// A span duration as saturating nanoseconds.
#[inline]
fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl ShardedFlowEngine {
    /// Spawn an engine whose per-flow estimators come from
    /// `config.spec`. Fails fast if the spec's parameters are invalid
    /// (workers never build a broken estimator mid-stream).
    ///
    /// Estimators are built with a [`BatchedMetricsObserver`] and the
    /// engine's [`FlightRecorder`] attached, so SMB
    /// morph/clear/saturation events land in the engine registry
    /// alongside the shard counters (engine-wide series — flows are
    /// too numerous to label individually) and in the flight window
    /// `smbcount doctor` dumps. The batched observer folds events into
    /// thread-local deltas; each shard worker flushes them on every
    /// batch boundary, so per-event cost is a thread-local write, not
    /// an atomic RMW.
    pub fn new(config: EngineConfig) -> smb_core::Result<Self> {
        // Probe the spec once so errors surface here, not in a worker.
        config.spec.build()?;
        let spec = config.spec;
        let registry = Arc::new(Registry::new("smb_engine"));
        let telemetry = EngineTelemetry::register(&registry);
        let observer = telemetry.handle.clone();
        let factory: Arc<EstimatorFactory> = Arc::new(move |_flow| {
            spec.build_observed(Some(observer.clone()))
                .expect("spec validated at engine construction")
        });
        Self::build(config, spec.scheme(), factory, registry, Some(telemetry))
    }

    /// Spawn an engine with a custom estimator factory. `scheme` must
    /// be the hash scheme the factory's estimators record under — the
    /// producer hashes items exactly once, through this scheme.
    pub fn with_factory(
        config: EngineConfig,
        scheme: HashScheme,
        factory: Arc<EstimatorFactory>,
    ) -> smb_core::Result<Self> {
        Self::with_registry(config, scheme, factory, Arc::new(Registry::new("smb_engine")))
    }

    /// Spawn an engine that registers its metrics in a caller-supplied
    /// registry — use this to aggregate several engines (or an engine
    /// plus application metrics) into one export surface.
    pub fn with_registry(
        config: EngineConfig,
        scheme: HashScheme,
        factory: Arc<EstimatorFactory>,
        registry: Arc<Registry>,
    ) -> smb_core::Result<Self> {
        Self::build(config, scheme, factory, registry, None)
    }

    fn build(
        config: EngineConfig,
        scheme: HashScheme,
        factory: Arc<EstimatorFactory>,
        registry: Arc<Registry>,
        telemetry: Option<EngineTelemetry>,
    ) -> smb_core::Result<Self> {
        config.validate()?;
        let mut shards = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<Batch>(config.queue_batches);
            let metrics = Arc::new(ShardMetrics::register(&registry, shard));
            let shard_factory = Arc::clone(&factory);
            // Tiered tables: tiny flows stay as inline hash cells and
            // only materialize a spec-built estimator once they prove
            // they need one. Estimates are bit-identical either way.
            let mut shard_table: ShardTable = FlowTable::with_factory_tiered(
                scheme,
                Box::new(move |flow| (shard_factory)(flow)),
            );
            if config.expected_flows > 0 {
                // Flows partition ~evenly across shards; the extra 1/8
                // absorbs hash-placement skew so the common case still
                // avoids a mid-stream rehash.
                let share = config.expected_flows.div_ceil(config.shards);
                shard_table.reserve(share + share / 8);
            }
            let table: Arc<Mutex<ShardTable>> = Arc::new(Mutex::new(shard_table));
            let worker_table = Arc::clone(&table);
            let worker_metrics = Arc::clone(&metrics);
            let worker_observer = telemetry.as_ref().map(|t| Arc::clone(&t.batched));
            let worker = std::thread::Builder::new()
                .name("smb-engine-shard".into())
                .spawn(move || {
                    let mut scratch = GroupScratch::default();
                    let mut last_tiers = TierStats::default();
                    while let Some(batch) = rx.recv() {
                        let start = Instant::now();
                        if let Some(trace) = &batch.trace {
                            if let Some(offered) = trace.offered {
                                worker_metrics
                                    .stage_queue_wait
                                    .record(duration_ns(start.duration_since(offered)));
                            }
                        }
                        let mut table = worker_table.lock().expect("shard table lock");
                        record_batch_grouped(&mut *table, &batch.entries, &mut scratch);
                        let flows = table.len() as i64;
                        let tiers = table.tier_stats();
                        drop(table);
                        // Estimator events folded during this batch go
                        // into the shared cells now, before the release
                        // increment below publishes them to flush().
                        if let Some(observer) = &worker_observer {
                            observer.flush_local();
                        }
                        worker_metrics.sync_tiers(&mut last_tiers, tiers);
                        let elapsed = duration_ns(start.elapsed());
                        worker_metrics.record_latency.record(elapsed);
                        if batch.trace.is_some() {
                            worker_metrics.stage_record_batch.record(elapsed);
                        }
                        worker_metrics.flows.set(flows);
                        worker_metrics.items_recorded.add(batch.entries.len() as u64);
                        worker_metrics.queue_depth.sub(1);
                        // Release publishes the table writes above to
                        // flush()'s acquire load.
                        worker_metrics.batches_processed.add_release(1);
                    }
                })
                .expect("spawn shard worker");
            shards.push(Shard {
                tx,
                table,
                metrics,
                worker: Some(worker),
            });
        }
        let checkpoint_metrics = Arc::new(CheckpointMetrics::register(&registry));
        let query_sweep = registry.histogram_with(
            "engine_stage_duration_ns",
            STAGE_HELP,
            &[("shard", "all"), ("stage", "query_sweep")],
        );
        Ok(ShardedFlowEngine {
            pending: (0..config.shards)
                .map(|_| Batch::with_capacity(config.batch))
                .collect(),
            config,
            scheme,
            shards,
            registry,
            checkpoint_metrics,
            next_epoch: Arc::new(Mutex::new(0)),
            checkpointer: None,
            producer_ids: Arc::new(AtomicU32::new(0)),
            trace_seq: 0,
            query_sweep,
            telemetry,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The scheme the producer hashes items under. Pre-hashed ingest
    /// ([`ShardedFlowEngine::ingest_hash`]) must use exactly this.
    pub fn scheme(&self) -> HashScheme {
        self.scheme
    }

    /// Which shard owns `flow`. Deterministic in the flow key alone.
    #[inline]
    pub fn shard_of(&self, flow: u64) -> usize {
        shard_of_key(flow, self.shards.len())
    }

    /// Ingest one item for `flow`: hash once, stage into the owning
    /// shard's batch, dispatch when the batch fills. No locks unless a
    /// batch is dispatched.
    #[inline]
    pub fn ingest(&mut self, flow: u64, item: &[u8]) {
        self.ingest_hash(flow, self.scheme.item_hash(item));
    }

    /// Ingest an item already hashed under [`ShardedFlowEngine::scheme`].
    #[inline]
    pub fn ingest_hash(&mut self, flow: u64, hash: ItemHash) {
        let shard = self.shard_of(flow);
        let pending = &mut self.pending[shard];
        // Trace sampling is decided when a batch starts: the span must
        // cover the whole producer_hash stage, i.e. from first staged
        // item to queue offer.
        if pending.entries.is_empty() && self.config.trace_sample != 0 {
            self.trace_seq += 1;
            if self.trace_seq % self.config.trace_sample as u64 == 0 {
                pending.trace = Some(BatchTrace {
                    staged: Instant::now(),
                    offered: None,
                });
            }
        }
        pending.entries.push((flow, hash));
        if pending.entries.len() >= self.config.batch {
            self.dispatch(shard);
        }
    }

    /// Ingest a sequence of `(flow, item)` pairs.
    pub fn ingest_batch<'a>(&mut self, items: impl IntoIterator<Item = (u64, &'a [u8])>) {
        for (flow, item) in items {
            self.ingest(flow, item);
        }
    }

    /// Hand shard `shard`'s pending batch to its queue, applying the
    /// backpressure policy.
    fn dispatch(&mut self, shard: usize) {
        let batch = std::mem::replace(
            &mut self.pending[shard],
            Batch::with_capacity(self.config.batch),
        );
        if batch.entries.is_empty() {
            return;
        }
        let s = &self.shards[shard];
        let outcome = deliver_batch(
            &s.metrics,
            &s.tx,
            DeliveryMode::Policy(self.config.policy),
            batch,
            self.telemetry.as_ref().map(|t| &*t.flight),
        );
        if outcome.closed {
            unreachable!("engine closes queues only on drop");
        }
    }

    /// Hand out a cloneable multi-producer ingest handle. Each handle
    /// (and each clone) hashes once, batches per shard and feeds the
    /// same shard queues as [`ShardedFlowEngine::ingest`], but through
    /// `&mut self` on the *handle* — so N threads each owning a handle
    /// ingest concurrently with no producer-side serialization beyond
    /// the per-batch queue lock. Flow placement is identical across
    /// all handles and the engine (the shard hash is shared), so
    /// per-flow ordering within one producer is preserved and a flow
    /// ingested by exactly one producer gets bit-identical estimates
    /// to single-producer ingest.
    ///
    /// Every handle carries its own telemetry series
    /// (`engine_producer_*_total{producer="<id>"}`) in the engine
    /// registry.
    ///
    /// **Flush protocol.** [`EngineProducer::flush`] (or dropping the
    /// handle) delivers its pending partial batches; the engine's
    /// [`ShardedFlowEngine::flush`] barrier covers exactly the batches
    /// enqueued before it runs. Flush or drop producers first, then
    /// `engine.flush()`, and queries reflect everything they ingested.
    /// A handle that outlives the engine discards sends into closed
    /// queues, counting them in its `dropped` series — never panicking.
    pub fn producer_handle(&self) -> EngineProducer {
        let id = self.producer_ids.fetch_add(1, Ordering::Relaxed);
        EngineProducer {
            scheme: self.scheme,
            batch: self.config.batch,
            policy: self.config.policy,
            shards: self
                .shards
                .iter()
                .map(|s| (s.tx.clone(), Arc::clone(&s.metrics)))
                .collect(),
            pending: (0..self.shards.len())
                .map(|_| Batch::with_capacity(self.config.batch))
                .collect(),
            metrics: ProducerMetrics::register(&self.registry, id),
            id,
            ids: Arc::clone(&self.producer_ids),
            registry: Arc::clone(&self.registry),
            trace_sample: self.config.trace_sample,
            trace_seq: 0,
            flight: self.telemetry.as_ref().map(|t| Arc::clone(&t.flight)),
        }
    }

    /// Deliver all partial batches and wait until every shard has
    /// processed everything enqueued so far. After `flush`, queries
    /// and stats reflect every ingested (non-dropped) item.
    ///
    /// Partial batches are delivered with blocking sends under either
    /// policy: flush is a delivery point, not a load-shedding one.
    ///
    /// With [`ShardedFlowEngine::producer_handle`] producers in play,
    /// the barrier covers batches those producers delivered *before*
    /// this call — flush or drop them first (see the flush protocol on
    /// [`ShardedFlowEngine::producer_handle`]).
    ///
    /// # Panics
    /// If a shard worker died (estimator panic), since its queue can
    /// then never drain.
    pub fn flush(&mut self) {
        let _span = self.registry.timer("engine.flush");
        for shard in 0..self.shards.len() {
            if self.pending[shard].entries.is_empty() {
                continue;
            }
            let batch = std::mem::replace(
                &mut self.pending[shard],
                Batch::with_capacity(self.config.batch),
            );
            let s = &self.shards[shard];
            let outcome = deliver_batch(
                &s.metrics,
                &s.tx,
                DeliveryMode::ForceBlock,
                batch,
                self.telemetry.as_ref().map(|t| &*t.flight),
            );
            if outcome.closed {
                unreachable!("engine closes queues only on drop");
            }
        }
        for s in &self.shards {
            loop {
                let sent = s.metrics.batches_sent.get_acquire();
                // Acquire pairs with the worker's release increment,
                // making its table writes visible to this thread.
                let done = s.metrics.batches_processed.get_acquire();
                if done >= sent {
                    break;
                }
                if s.worker.as_ref().is_some_and(|w| w.is_finished()) {
                    panic!("shard worker died with {} batches unprocessed", sent - done);
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Estimate the cardinality of `flow`; `None` if never seen.
    /// Reflects data already processed by the owning worker — call
    /// [`ShardedFlowEngine::flush`] first for an up-to-date answer.
    pub fn query(&self, flow: u64) -> Option<f64> {
        let shard = self.shard_of(flow);
        self.shards[shard]
            .table
            .lock()
            .expect("shard table lock")
            .estimate(flow)
    }

    /// A cloneable, engine-independent read handle for running
    /// [`EngineQuery`]s — hand it to monitoring threads so they can
    /// query while this thread keeps ingesting.
    pub fn query_handle(&self) -> QueryHandle {
        QueryHandle {
            shards: self.shards.iter().map(|s| Arc::clone(&s.table)).collect(),
            sweep: Some(Arc::clone(&self.query_sweep)),
        }
    }

    /// Run one multi-facet [`EngineQuery`] against the current tables
    /// (one brief lock per shard). Convenience for
    /// `self.query_handle().run(query)`.
    pub fn run_query(&self, query: &EngineQuery) -> QueryReport {
        self.query_handle().run(query)
    }

    /// The `k` flows with the largest estimates, descending.
    #[deprecated(
        note = "run an EngineQuery instead: \
                engine.run_query(&EngineQuery::new().with_top_k(k))"
    )]
    #[doc(hidden)]
    pub fn snapshot_top_k(&self, k: usize) -> Vec<(u64, f64)> {
        self.run_query(&EngineQuery::new().with_top_k(k))
            .top_k
            .expect("top_k facet was requested")
    }

    /// Every `(flow, estimate)` pair across all shards, in unspecified
    /// order.
    pub fn all_estimates(&self) -> Vec<(u64, f64)> {
        let mut all = Vec::new();
        for s in &self.shards {
            all.extend(s.table.lock().expect("shard table lock").estimates());
        }
        all
    }

    /// Per-shard counters plus flow counts — the engine's
    /// programmatic observability surface. For the exportable view
    /// (labels, histograms, morph counters) use
    /// [`ShardedFlowEngine::metrics_snapshot`].
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let flows = s.table.lock().expect("shard table lock").len() as u64;
                    // The worker only refreshes its flows gauge after a
                    // batch; sync it to the exact count while we hold it.
                    s.metrics.flows.set(flows as i64);
                    s.metrics.snapshot(i, flows)
                })
                .collect(),
        }
    }

    /// The registry holding every engine metric: per-shard queue /
    /// drop / batch series plus the SMB morph counters (engines built
    /// via [`ShardedFlowEngine::new`]).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time copy of all engine metrics, ready for
    /// [`smb_telemetry::ExportFormat`] rendering.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        // Refresh the flow and tier gauges so the export matches
        // reality even if no batch has landed since the last table
        // change. (Promotion counters stay worker-owned: they advance
        // by per-batch deltas, so touching them here would double
        // count.)
        for s in &self.shards {
            let table = s.table.lock().expect("shard table lock");
            let flows = table.len() as i64;
            let tiers = table.tier_stats();
            drop(table);
            s.metrics.flows.set(flows);
            s.metrics.set_tier_gauges(tiers);
        }
        // Fold in any estimator events this thread produced (e.g. a
        // clear through a direct table handle); worker threads flush
        // their own deltas on every batch boundary.
        if let Some(telemetry) = &self.telemetry {
            telemetry.batched.flush_local();
        }
        self.registry.snapshot()
    }

    /// The engine's flight recorder — the last `FLIGHT_CAPACITY` (256)
    /// morph / clear / saturation / checkpoint / drop-burst events,
    /// for diagnostics (`smbcount doctor`, `morphlog --last`). `None`
    /// for engines built with a custom factory
    /// ([`ShardedFlowEngine::with_factory`] /
    /// [`ShardedFlowEngine::with_registry`]).
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.telemetry.as_ref().map(|t| &t.flight)
    }

    /// Total memory held by per-flow estimator state across all
    /// shards, in bits (the paper's logical accounting: estimator
    /// `memory_bits` once materialized, 64 bits per stored hash for
    /// tiered cells).
    pub fn total_memory_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.table
                    .lock()
                    .expect("shard table lock")
                    .total_memory_bits()
            })
            .sum()
    }

    /// Total resident bytes of per-flow storage across all shards:
    /// slot arrays plus every cell's heap state.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.lock().expect("shard table lock").memory_bytes())
            .sum()
    }

    /// Tier occupancy and lifetime promotion counters summed across
    /// all shards.
    pub fn tier_stats(&self) -> TierStats {
        let mut total = TierStats::default();
        for s in &self.shards {
            let t = s.table.lock().expect("shard table lock").tier_stats();
            total.small += t.small;
            total.array += t.array;
            total.full += t.full;
            total.promotions_to_array += t.promotions_to_array;
            total.promotions_to_full += t.promotions_to_full;
        }
        total
    }

    /// Start the background checkpointer: one durable epoch per
    /// `config.interval` under `config.dir`, with `config.retries`
    /// retry attempts (after `config.backoff` each) on IO failure and
    /// the oldest epochs pruned down to `config.keep_epochs` after
    /// each success. [`ShardedFlowEngine::finish`] writes one final
    /// checkpoint after its flush; a plain drop stops the thread
    /// without one.
    ///
    /// # Errors
    /// [`smb_core::Error::InvalidParameter`] if the config is invalid
    /// or a checkpointer is already running; [`smb_core::Error::Io`]
    /// if the checkpoint directory cannot be created.
    pub fn start_checkpointer(&mut self, config: CheckpointConfig) -> smb_core::Result<()> {
        config.validate()?;
        if self.checkpointer.is_some() {
            return Err(smb_core::Error::invalid(
                "checkpointer",
                "already running — stop it before starting another",
            ));
        }
        std::fs::create_dir_all(&config.dir).map_err(|e| {
            smb_core::Error::io(format!("create dir {}: {e}", config.dir.display()))
        })?;
        let tables: Vec<Arc<Mutex<ShardTable>>> =
            self.shards.iter().map(|s| Arc::clone(&s.table)).collect();
        self.checkpointer = Some(Checkpointer::spawn(
            config,
            self.config.spec,
            tables,
            Arc::clone(&self.checkpoint_metrics),
            Arc::clone(&self.next_epoch),
            self.telemetry.as_ref().map(|t| Arc::clone(&t.flight)),
        ));
        Ok(())
    }

    /// Stop the background checkpointer (joining its thread) without
    /// writing a final epoch. No-op if none is running.
    pub fn stop_checkpointer(&mut self) {
        if let Some(checkpointer) = self.checkpointer.take() {
            checkpointer.stop();
        }
    }

    /// Flush and write one checkpoint epoch immediately, with the
    /// config's retry budget. Returns the epoch number written. Safe
    /// alongside a running background checkpointer — epoch numbers are
    /// allocated from one shared counter.
    ///
    /// # Errors
    /// [`smb_core::Error::Io`] when every attempt failed; the partial
    /// epoch directory is removed and
    /// `engine_checkpoint_failures_total` incremented.
    pub fn checkpoint_now(&mut self, config: &CheckpointConfig) -> smb_core::Result<u64> {
        config.validate()?;
        self.flush();
        let tables: Vec<Arc<Mutex<ShardTable>>> =
            self.shards.iter().map(|s| Arc::clone(&s.table)).collect();
        checkpoint_with_retries(
            config,
            &self.next_epoch,
            self.config.spec,
            &tables,
            &self.checkpoint_metrics,
            self.telemetry.as_ref().map(|t| &*t.flight),
        )
    }

    /// Recover an engine from the newest *consistent* checkpoint epoch
    /// under `dir`, with the engine configuration (shard count, batch
    /// sizing) taken from [`EngineConfig::new`] applied to the spec
    /// recorded in the checkpoint manifest. Use
    /// [`ShardedFlowEngine::restore_with`] to control the
    /// configuration.
    ///
    /// Torn or corrupted newer epochs are skipped with their reasons
    /// in [`RestoreReport::skipped`] (also counted in
    /// `engine_restore_skipped_epochs_total` and warned to stderr):
    /// recovery degrades to the newest epoch that passes every check —
    /// manifest present, checksums clean, all shard files intact —
    /// rather than failing outright. Restored per-flow estimates are
    /// bit-identical to the originals at checkpoint time, for any
    /// shard count (flows are re-partitioned on the way in).
    ///
    /// # Errors
    /// [`smb_core::Error::NoConsistentCheckpoint`] when no epoch
    /// passes validation.
    pub fn restore(dir: impl AsRef<Path>) -> smb_core::Result<(Self, RestoreReport)> {
        let (loaded, report) = select_epoch(dir.as_ref())?;
        let config = EngineConfig::new(loaded.spec);
        Self::restore_internal(config, loaded, report)
    }

    /// [`ShardedFlowEngine::restore`] with an explicit engine
    /// configuration. `config.spec` must equal the spec in the
    /// checkpoint manifest — restoring SMB state into, say, an HLL
    /// engine (or the same algorithm with a different seed) is an
    /// error, not a silent re-interpretation.
    pub fn restore_with(
        config: EngineConfig,
        dir: impl AsRef<Path>,
    ) -> smb_core::Result<(Self, RestoreReport)> {
        let (loaded, report) = select_epoch(dir.as_ref())?;
        if config.spec != loaded.spec {
            return Err(smb_core::Error::invalid(
                "spec",
                format!(
                    "checkpoint was written by {:?}, engine configured for {:?}",
                    loaded.spec, config.spec
                ),
            ));
        }
        Self::restore_internal(config, loaded, report)
    }

    fn restore_internal(
        config: EngineConfig,
        loaded: LoadedEpoch,
        mut report: RestoreReport,
    ) -> smb_core::Result<(Self, RestoreReport)> {
        let engine = Self::new(config)?;
        // Reattach the engine's own observer bundle (batched metrics +
        // flight recorder) to every restored estimator, so
        // morph/saturation events keep flowing after recovery exactly
        // as they did before the crash. Tiered cells come back
        // unmaterialized and pick the observer up from the engine's
        // factory if they ever promote.
        let observer = engine
            .telemetry
            .as_ref()
            .map(|t| t.handle.clone())
            .expect("Self::new always builds the telemetry bundle");
        let mut flows = 0u64;
        for (flow, state) in &loaded.flows {
            let mut cell = crate::durability::restore_cell(config.spec, state)?;
            if let Some(estimator) = cell.estimator_mut() {
                estimator.set_observer(Some(observer.clone()));
            }
            let shard = engine.shard_of(*flow);
            engine.shards[shard]
                .table
                .lock()
                .expect("shard table lock")
                .insert_cell(*flow, cell);
            flows += 1;
        }
        report.flows = flows;
        engine.checkpoint_metrics.restored_flows.add(flows);
        engine
            .checkpoint_metrics
            .skipped_epochs
            .add(report.skipped.len() as u64);
        engine.checkpoint_metrics.epoch.set(report.epoch as i64);
        *engine.next_epoch.lock().expect("epoch counter lock") = report.epoch + 1;
        for (epoch, reason) in &report.skipped {
            eprintln!(
                "smb-engine: skipped inconsistent checkpoint epoch {epoch} ({reason}); \
                 restored epoch {} — ingest after it is lost",
                report.epoch
            );
        }
        Ok((engine, report))
    }

    /// Flush, stop the workers, and return the final statistics. When
    /// a background checkpointer is running, one final epoch is
    /// written after the flush (best-effort: a failure is counted in
    /// `engine_checkpoint_failures_total`, not panicked on) so a clean
    /// shutdown loses nothing.
    pub fn finish(mut self) -> EngineStats {
        self.flush();
        if let Some(checkpointer) = &self.checkpointer {
            let tables: Vec<Arc<Mutex<ShardTable>>> =
                self.shards.iter().map(|s| Arc::clone(&s.table)).collect();
            let _ = checkpoint_with_retries(
                &checkpointer.config,
                &self.next_epoch,
                self.config.spec,
                &tables,
                &self.checkpoint_metrics,
                self.telemetry.as_ref().map(|t| &*t.flight),
            );
        }
        let stats = self.stats();
        self.stop_checkpointer();
        self.close_and_join();
        stats
    }

    fn close_and_join(&mut self) {
        for s in &mut self.shards {
            s.tx.close();
        }
        for s in &mut self.shards {
            if let Some(worker) = s.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// A cloneable multi-producer ingest handle — see
/// [`ShardedFlowEngine::producer_handle`].
///
/// Owns its own per-shard partial batches and its own telemetry
/// series; shares only the shard queues (MPSC channels) and the atomic
/// metric cells with the engine and its sibling handles. Send a
/// handle to each ingest thread (`EngineProducer: Send`), or clone
/// one per thread — a clone is a *new* producer with a fresh id and
/// empty batches, not a shared view.
///
/// ```
/// use smb_engine::{EngineConfig, ShardedFlowEngine};
/// use smb_factory::{Algo, AlgoSpec};
///
/// let spec = AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(7);
/// let mut engine = ShardedFlowEngine::new(EngineConfig::new(spec).with_shards(2)).unwrap();
/// let producer = engine.producer_handle();
/// std::thread::scope(|s| {
///     for t in 0u64..4 {
///         let mut p = producer.clone();
///         s.spawn(move || {
///             for i in 0..1000u32 {
///                 p.ingest(t, &i.to_le_bytes());
///             }
///             // flush-on-drop delivers the partial batches
///         });
///     }
/// });
/// drop(producer);
/// engine.flush();
/// assert_eq!(engine.stats().total_flows(), 4);
/// ```
pub struct EngineProducer {
    scheme: HashScheme,
    batch: usize,
    policy: BackpressurePolicy,
    /// Queue handle + shared metric cells per shard, same order as the
    /// engine's shard vector.
    shards: Vec<(Sender<Batch>, Arc<ShardMetrics>)>,
    /// This producer's own partial batch per shard.
    pending: Vec<Batch>,
    metrics: ProducerMetrics,
    id: u32,
    ids: Arc<AtomicU32>,
    registry: Arc<Registry>,
    /// The engine's `trace_sample` knob, applied independently to this
    /// producer's own batch sequence.
    trace_sample: u32,
    /// Batches staged by this producer, for trace sampling.
    trace_seq: u64,
    /// The engine's flight recorder, for drop-burst events on this
    /// producer's dispatch path.
    flight: Option<Arc<FlightRecorder>>,
}

impl EngineProducer {
    /// This handle's producer id (the `producer` label on its series).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The scheme items are hashed under — identical to the engine's.
    pub fn scheme(&self) -> HashScheme {
        self.scheme
    }

    /// Which shard owns `flow` — identical to the engine's placement.
    #[inline]
    pub fn shard_of(&self, flow: u64) -> usize {
        shard_of_key(flow, self.shards.len())
    }

    /// Ingest one item for `flow`: hash once, stage, dispatch when the
    /// batch fills — the producer-handle version of
    /// [`ShardedFlowEngine::ingest`].
    #[inline]
    pub fn ingest(&mut self, flow: u64, item: &[u8]) {
        self.ingest_hash(flow, self.scheme.item_hash(item));
    }

    /// Ingest an item already hashed under [`EngineProducer::scheme`].
    #[inline]
    pub fn ingest_hash(&mut self, flow: u64, hash: ItemHash) {
        let shard = self.shard_of(flow);
        let pending = &mut self.pending[shard];
        if pending.entries.is_empty() && self.trace_sample != 0 {
            self.trace_seq += 1;
            if self.trace_seq % self.trace_sample as u64 == 0 {
                pending.trace = Some(BatchTrace {
                    staged: Instant::now(),
                    offered: None,
                });
            }
        }
        pending.entries.push((flow, hash));
        if pending.entries.len() >= self.batch {
            self.dispatch(shard, DeliveryMode::Policy(self.policy));
        }
    }

    /// Ingest a sequence of `(flow, item)` pairs.
    pub fn ingest_batch<'a>(&mut self, items: impl IntoIterator<Item = (u64, &'a [u8])>) {
        for (flow, item) in items {
            self.ingest(flow, item);
        }
    }

    /// Deliver this producer's pending partial batches (blocking until
    /// the queues accept them). Does **not** wait for workers to
    /// process anything — that barrier is [`ShardedFlowEngine::flush`].
    /// Also runs on drop.
    pub fn flush(&mut self) {
        for shard in 0..self.shards.len() {
            if !self.pending[shard].entries.is_empty() {
                self.dispatch(shard, DeliveryMode::ForceBlock);
            }
        }
    }

    /// A point-in-time snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.metrics.snapshot(self.id)
    }

    /// Deliver this producer's pending batches, then wait until the
    /// shard workers have processed every batch *delivered so far* —
    /// the producer-side equivalent of [`ShardedFlowEngine::flush`],
    /// available without `&mut` access to the engine. After `barrier()`
    /// returns, a query through a [`QueryHandle`] reflects everything
    /// this producer ingested (the per-shard sent/processed counters
    /// are engine-global, so it may also wait out other producers'
    /// in-flight batches — a stronger, never weaker, guarantee).
    ///
    /// Liveness matches `flush`: if the engine has been dropped, its
    /// workers drained every delivered batch on shutdown, so the wait
    /// still terminates.
    ///
    /// [`ShardedFlowEngine::flush`]: crate::ShardedFlowEngine::flush
    pub fn barrier(&mut self) {
        self.flush();
        for (_, metrics) in &self.shards {
            loop {
                let sent = metrics.batches_sent.get_acquire();
                // Acquire pairs with the worker's release increment,
                // making its table writes visible to this thread.
                let done = metrics.batches_processed.get_acquire();
                if done >= sent {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    fn dispatch(&mut self, shard: usize, mode: DeliveryMode) {
        let batch = std::mem::replace(&mut self.pending[shard], Batch::with_capacity(self.batch));
        if batch.entries.is_empty() {
            return;
        }
        let n = batch.entries.len() as u64;
        let (tx, metrics) = &self.shards[shard];
        let outcome = deliver_batch(metrics, tx, mode, batch, self.flight.as_deref());
        if outcome.queue_full {
            self.metrics.queue_full.inc();
        }
        if outcome.delivered {
            self.metrics.items.add(n);
            self.metrics.batches.inc();
        } else {
            // Dropped by policy (already in the shard's dropped_items)
            // or the engine is gone and the queue is closed; either
            // way this producer's items went nowhere.
            self.metrics.dropped.add(n);
        }
    }
}

impl Clone for EngineProducer {
    /// A new producer with a fresh id, empty partial batches and its
    /// own telemetry series, feeding the same engine.
    fn clone(&self) -> Self {
        let id = self.ids.fetch_add(1, Ordering::Relaxed);
        EngineProducer {
            scheme: self.scheme,
            batch: self.batch,
            policy: self.policy,
            shards: self.shards.clone(),
            pending: (0..self.shards.len())
                .map(|_| Batch::with_capacity(self.batch))
                .collect(),
            metrics: ProducerMetrics::register(&self.registry, id),
            id,
            ids: Arc::clone(&self.ids),
            registry: Arc::clone(&self.registry),
            trace_sample: self.trace_sample,
            trace_seq: 0,
            flight: self.flight.clone(),
        }
    }
}

impl Drop for EngineProducer {
    /// Delivers pending partial batches (counting them dropped if the
    /// engine is already gone) so no staged item is silently lost.
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for EngineProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineProducer")
            .field("id", &self.id)
            .field("shards", &self.shards.len())
            .field("batch", &self.batch)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Drop for ShardedFlowEngine {
    /// Stops the checkpointer (without a final epoch) and the workers.
    /// Pending (undispatched) partial batches are discarded — call
    /// [`ShardedFlowEngine::flush`] or [`ShardedFlowEngine::finish`]
    /// first if you need them counted.
    fn drop(&mut self) {
        self.stop_checkpointer();
        self.close_and_join();
    }
}

impl std::fmt::Debug for ShardedFlowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFlowEngine")
            .field("shards", &self.shards.len())
            .field("batch", &self.config.batch)
            .field("queue_batches", &self.config.queue_batches)
            .field("policy", &self.config.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_factory::Algo;

    fn spec() -> AlgoSpec {
        AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(3)
    }

    #[test]
    fn config_validation() {
        assert!(ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(0)).is_err());
        assert!(ShardedFlowEngine::new(EngineConfig::new(spec()).with_batch(0)).is_err());
        assert!(ShardedFlowEngine::new(EngineConfig::new(spec()).with_queue_batches(0)).is_err());
        let bad = AlgoSpec::new(Algo::Smb).memory_bits(0);
        assert!(ShardedFlowEngine::new(EngineConfig::new(bad)).is_err());
    }

    #[test]
    fn flows_partition_stably() {
        let engine = ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(4)).unwrap();
        for flow in 0..100u64 {
            assert_eq!(engine.shard_of(flow), engine.shard_of(flow));
            assert!(engine.shard_of(flow) < 4);
        }
    }

    #[test]
    fn ingest_flush_query_roundtrip() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(3).with_batch(64),
        )
        .unwrap();
        for i in 0..5000u32 {
            engine.ingest(7, &i.to_le_bytes());
            engine.ingest(8, &(i % 50).to_le_bytes());
        }
        engine.flush();
        let e7 = engine.query(7).expect("flow 7 exists");
        let e8 = engine.query(8).expect("flow 8 exists");
        assert!((e7 - 5000.0).abs() / 5000.0 < 0.3, "{e7}");
        assert!((e8 - 50.0).abs() / 50.0 < 0.5, "{e8}");
        assert_eq!(engine.query(9), None);
        let top = engine
            .run_query(&EngineQuery::new().with_top_k(1))
            .top_k
            .unwrap();
        assert_eq!(top[0].0, 7);
        let stats = engine.stats();
        assert_eq!(stats.total_enqueued(), 10_000);
        assert_eq!(stats.total_recorded(), 10_000);
        assert_eq!(stats.total_dropped(), 0);
        assert_eq!(stats.total_flows(), 2);
    }

    #[test]
    fn finish_returns_complete_stats() {
        let mut engine =
            ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(2).with_batch(16))
                .unwrap();
        for i in 0..1000u32 {
            engine.ingest(i as u64 % 10, &i.to_le_bytes());
        }
        let stats = engine.finish();
        assert_eq!(stats.total_recorded(), 1000);
        assert_eq!(stats.total_flows(), 10);
        // 1000 items over 10 flows × 2 shards: occupancy is meaningful.
        for s in &stats.shards {
            if s.batches_sent > 0 {
                assert!(s.mean_batch_occupancy > 0.0);
            }
        }
    }

    #[test]
    fn metrics_snapshot_mirrors_stats_and_counts_morphs() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(2).with_batch(32),
        )
        .unwrap();
        for i in 0..60_000u32 {
            engine.ingest(i as u64 % 3, &i.to_le_bytes());
        }
        engine.flush();
        let stats = engine.stats();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.registry, "smb_engine");
        assert_eq!(
            snap.counter_total("engine_items_enqueued_total"),
            stats.total_enqueued()
        );
        assert_eq!(
            snap.counter_total("engine_items_recorded_total"),
            stats.total_recorded()
        );
        for s in &stats.shards {
            let shard = s.shard.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard)];
            assert_eq!(
                snap.get("engine_items_enqueued_total", labels)
                    .unwrap()
                    .as_counter(),
                Some(s.items_enqueued)
            );
            assert_eq!(
                snap.get("engine_flows", labels).unwrap().as_gauge(),
                Some(s.flows as i64)
            );
            // Flushed: the backlog gauge must have drained to zero.
            assert_eq!(
                snap.get("engine_queue_depth", labels).unwrap().as_gauge(),
                Some(0)
            );
            let occupancy = snap
                .get("engine_batch_occupancy", labels)
                .unwrap()
                .as_histogram()
                .unwrap();
            assert!(occupancy.count >= s.batches_sent);
        }
        // 20k items per flow into a 2048-bit SMB must morph, and the
        // engine-built estimators carry the registry observer.
        assert!(snap.counter_total("smb_morph_events_total") > 0);
        // Enqueue latency was sampled once per delivered or dropped batch.
        let latency: u64 = (0..2)
            .map(|i| {
                let shard = i.to_string();
                snap.get("engine_enqueue_latency_ns", &[("shard", shard.as_str())])
                    .map_or(0, |v| v.as_histogram().unwrap().count)
            })
            .sum();
        assert!(latency > 0);
    }

    #[test]
    fn trace_sampling_fills_stage_histograms() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec())
                .with_shards(1)
                .with_batch(32)
                .with_trace_sample(1),
        )
        .unwrap();
        for i in 0..5_000u32 {
            engine.ingest(i as u64 % 7, &i.to_le_bytes());
        }
        engine.flush();
        engine.query_handle().run(&EngineQuery::new().with_flow_count());
        let snap = engine.metrics_snapshot();
        for stage in ["producer_hash", "enqueue", "queue_wait", "record_batch"] {
            let h = snap
                .get("engine_stage_duration_ns", &[("shard", "0"), ("stage", stage)])
                .unwrap_or_else(|| panic!("stage {stage} missing"))
                .as_histogram()
                .unwrap();
            assert!(h.count > 0, "stage {stage} recorded no spans");
        }
        let sweep = snap
            .get(
                "engine_stage_duration_ns",
                &[("shard", "all"), ("stage", "query_sweep")],
            )
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(sweep.count, 1, "one query sweep ran");
    }

    #[test]
    fn tracing_off_by_default_records_no_stage_spans() {
        let mut engine =
            ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(1).with_batch(32))
                .unwrap();
        for i in 0..5_000u32 {
            engine.ingest(i as u64 % 7, &i.to_le_bytes());
        }
        engine.flush();
        let snap = engine.metrics_snapshot();
        for stage in ["producer_hash", "enqueue", "queue_wait", "record_batch"] {
            let h = snap
                .get("engine_stage_duration_ns", &[("shard", "0"), ("stage", stage)])
                .unwrap()
                .as_histogram()
                .unwrap();
            assert_eq!(h.count, 0, "stage {stage} sampled with tracing off");
        }
    }

    #[test]
    fn trace_sampling_covers_producer_handles() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec())
                .with_shards(1)
                .with_batch(32)
                .with_trace_sample(4),
        )
        .unwrap();
        let producer = engine.producer_handle();
        std::thread::scope(|s| {
            for t in 0u64..2 {
                let mut p = producer.clone();
                s.spawn(move || {
                    for i in 0..4_000u32 {
                        p.ingest(t, &i.to_le_bytes());
                    }
                });
            }
        });
        drop(producer);
        engine.flush();
        let snap = engine.metrics_snapshot();
        let staged = snap
            .get(
                "engine_stage_duration_ns",
                &[("shard", "0"), ("stage", "producer_hash")],
            )
            .unwrap()
            .as_histogram()
            .unwrap();
        // 2 producers × 4000 items / 32 per batch = 250 batches; 1/4
        // sampling must trace roughly a quarter of them.
        assert!(staged.count >= 30, "only {} traced batches", staged.count);
        assert!(staged.count <= 80, "{} traced batches", staged.count);
    }

    #[test]
    fn flight_recorder_captures_lifecycle_events() {
        let dir = std::env::temp_dir().join(format!(
            "smb-flight-engine-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Block policy: nothing is dropped, so the window holds every
        // lifecycle event (2 flows morph far fewer than 256 times) and
        // the assertions are schedule-independent.
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec())
                .with_shards(1)
                .with_batch(8)
                .with_queue_batches(1)
                .with_policy(BackpressurePolicy::Block),
        )
        .unwrap();
        for i in 0..200_000u32 {
            engine.ingest(i as u64 % 2, &i.to_le_bytes());
        }
        engine.flush();
        let epoch = engine
            .checkpoint_now(&CheckpointConfig::new(&dir))
            .expect("checkpoint");
        let flight = engine.flight_recorder().expect("built via new()");
        let window = flight.recent(FLIGHT_CAPACITY);
        use smb_telemetry::FlightEventKind as K;
        assert!(
            window.iter().any(|e| e.kind == K::Morph),
            "100k items into a 2048-bit SMB must morph"
        );
        let checkpoint = window
            .iter()
            .rev()
            .find(|e| e.kind == K::Checkpoint)
            .expect("checkpoint event recorded");
        assert_eq!(checkpoint.items, epoch, "checkpoint event carries the epoch");
        // The registry mirrors the recorder.
        let snap = engine.metrics_snapshot();
        assert_eq!(
            snap.counter_total("smb_flight_events_total"),
            flight.recorded_total()
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);

        // A second engine with the drop policy and a 1-batch queue: if
        // any batch was shed, its burst must appear in the window with
        // a non-zero dropped-item count. (Whether drops happen at all
        // depends on worker scheduling, so the check is conditional —
        // but when they flood the ring, evicting morphs is exactly the
        // documented overwrite-oldest behaviour, not a failure.)
        let mut dropper = ShardedFlowEngine::new(
            EngineConfig::new(spec())
                .with_shards(1)
                .with_batch(8)
                .with_queue_batches(1)
                .with_policy(BackpressurePolicy::DropNewest),
        )
        .unwrap();
        for i in 0..200_000u32 {
            dropper.ingest(i as u64 % 2, &i.to_le_bytes());
        }
        dropper.flush();
        if dropper.stats().total_dropped() > 0 {
            let window = dropper
                .flight_recorder()
                .expect("built via new()")
                .recent(FLIGHT_CAPACITY);
            let dropped: u64 = window
                .iter()
                .filter(|e| e.kind == K::DropBurst)
                .map(|e| e.items)
                .sum();
            assert!(dropped > 0, "drop bursts missing from flight window");
        }
    }

    #[test]
    fn counters_stay_monotone_under_drop_policy() {
        // A tiny queue with the drop policy forces queue-full events;
        // dropped batches must not decrement any counter.
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec())
                .with_shards(1)
                .with_batch(8)
                .with_queue_batches(1)
                .with_policy(BackpressurePolicy::DropNewest),
        )
        .unwrap();
        let mut last_enqueued = 0u64;
        let mut last_sent = 0u64;
        for i in 0..50_000u32 {
            engine.ingest(i as u64 % 5, &i.to_le_bytes());
            if i % 1000 == 0 {
                let s = &engine.stats().shards[0];
                assert!(s.items_enqueued >= last_enqueued, "enqueued went down");
                assert!(s.batches_sent >= last_sent, "batches_sent went down");
                last_enqueued = s.items_enqueued;
                last_sent = s.batches_sent;
            }
        }
        let stats = engine.finish();
        let s = &stats.shards[0];
        assert_eq!(s.items_recorded, s.items_enqueued);
        assert_eq!(
            s.items_enqueued + s.dropped_items,
            50_000,
            "every item is either enqueued or dropped"
        );
    }

    #[test]
    fn shared_registry_hosts_multiple_engines() {
        let registry = Arc::new(smb_telemetry::Registry::new("smb_fleet"));
        let sp = spec();
        let factory: Arc<EstimatorFactory> = Arc::new(move |_| sp.build().unwrap());
        let mut a = ShardedFlowEngine::with_registry(
            EngineConfig::new(sp).with_shards(1).with_batch(16),
            sp.scheme(),
            Arc::clone(&factory),
            Arc::clone(&registry),
        )
        .unwrap();
        let mut b = ShardedFlowEngine::with_registry(
            EngineConfig::new(sp).with_shards(1).with_batch(16),
            sp.scheme(),
            factory,
            Arc::clone(&registry),
        )
        .unwrap();
        for i in 0..1000u32 {
            a.ingest(1, &i.to_le_bytes());
            b.ingest(2, &i.to_le_bytes());
        }
        a.flush();
        b.flush();
        // Both engines share shard-0 series in the common registry.
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("engine_items_enqueued_total"), 2000);
    }

    #[test]
    fn grouped_recording_matches_per_item_on_interleaved_batches() {
        // Four flows deliberately interleaved so the contiguity fast
        // path never triggers but few_flows_dominate approves the
        // sort: the grouping must still replay every flow's items in
        // arrival order.
        let sp = spec();
        let scheme = sp.scheme();
        let mut grouped = FlowTable::new(move |_| sp.build().unwrap());
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        let mut scratch = GroupScratch::default();
        let mut state = 0x9E37_79B9_u64;
        for round in 0..50u64 {
            let batch: Vec<(u64, ItemHash)> = (0..257u64)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state % 4, scheme.item_hash(&(round * 1000 + i).to_le_bytes()))
                })
                .collect();
            record_batch_grouped(&mut grouped, &batch, &mut scratch);
            for &(flow, hash) in &batch {
                reference.record_hash(flow, hash);
            }
        }
        assert!(!scratch.order.is_empty(), "four-flow batches must take the sort path");
        assert_eq!(grouped.len(), reference.len());
        for flow in 0..4u64 {
            assert_eq!(grouped.estimate(flow), reference.estimate(flow), "flow {flow}");
        }
    }

    #[test]
    fn grouped_recording_matches_per_item_on_flow_dense_batches() {
        // Nearly every item from a different flow: the density check
        // must route around the sort, and results must still match.
        let sp = spec();
        let scheme = sp.scheme();
        let mut grouped = FlowTable::new(move |_| sp.build().unwrap());
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        let mut scratch = GroupScratch::default();
        let batch: Vec<(u64, ItemHash)> = (0..1024u64)
            .map(|i| {
                // moremur-spread flows, shuffled order, ~700 distinct.
                (mix::moremur(i) % 700, scheme.item_hash(&i.to_le_bytes()))
            })
            .collect();
        record_batch_grouped(&mut grouped, &batch, &mut scratch);
        for &(flow, hash) in &batch {
            reference.record_hash(flow, hash);
        }
        assert!(scratch.order.is_empty(), "flow-dense batches must skip the sort path");
        assert_eq!(grouped.len(), reference.len());
        for (flow, _) in &batch {
            assert_eq!(grouped.estimate(*flow), reference.estimate(*flow), "flow {flow}");
        }
    }

    #[test]
    fn grouped_recording_batched_probe_matches_per_item_on_tiered_stores() {
        // The third regime (short runs, diverse flows → batched probe)
        // on *tiered* tables: the inline-tier fast path must record
        // into Small/Array cells, promote at the exact same items as
        // the per-item model, and leave a bit-identical tier census.
        let sp = spec();
        let scheme = sp.scheme();
        let sp2 = sp.clone();
        let mut grouped = FlowTable::with_factory_tiered(scheme.clone(), move |_| sp.build().unwrap());
        let mut reference = FlowTable::with_factory_tiered(scheme.clone(), move |_| sp2.build().unwrap());
        let mut scratch = GroupScratch::default();
        let mut state = 0x5EED_u64;
        for round in 0..40u64 {
            // Run-length-1 interleave: a wide tail of ~20k flows (most
            // stay Small, some reach Array) plus 8 hot flows (~1/8 of
            // items) that promote to Full mid-run. The hot fraction is
            // kept small so the 16-point density sample stays diverse
            // and every round takes the batched-probe regime.
            let batch: Vec<(u64, ItemHash)> = (0..1024u64)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    // High bits only: the LCG's low bits are periodic
                    // and would alias with the sampler's stride.
                    let flow = if state >> 61 == 0 { (state >> 33) % 8 } else { (state >> 33) % 20_000 };
                    (flow, scheme.item_hash(&(round * 100_000 + i).to_le_bytes()))
                })
                .collect();
            record_batch_grouped(&mut grouped, &batch, &mut scratch);
            for &(flow, hash) in &batch {
                reference.record_hash(flow, hash);
            }
        }
        assert!(scratch.order.is_empty(), "diverse-flow batches must take the batched-probe path");
        assert_eq!(grouped.len(), reference.len());
        assert_eq!(grouped.tier_stats(), reference.tier_stats(), "tier censuses must match");
        for flow in 0..20_000u64 {
            assert_eq!(grouped.estimate(flow), reference.estimate(flow), "flow {flow}");
        }
    }

    #[test]
    fn grouped_recording_matches_per_item_on_bursty_batches() {
        // Unsorted packet trains (runs of 2..=20 items per flow, flows
        // revisited out of order): run slicing must engage without any
        // sort, covering both the short-run direct path and the long-run
        // `record_hashes` path, and replay arrival order exactly.
        let sp = spec();
        let scheme = sp.scheme();
        let mut grouped = FlowTable::new(move |_| sp.build().unwrap());
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        let mut scratch = GroupScratch::default();
        let mut state = 0xB0A7_u64;
        let mut item = 0u64;
        let mut batch: Vec<(u64, ItemHash)> = Vec::new();
        while batch.len() < 2048 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let flow = (state >> 33) % 50;
            let train = 2 + (state % 19) as usize + if state % 7 == 0 { 40 } else { 0 };
            for _ in 0..train {
                item += 1;
                batch.push((flow, scheme.item_hash(&item.to_le_bytes())));
            }
        }
        record_batch_grouped(&mut grouped, &batch, &mut scratch);
        for &(flow, hash) in &batch {
            reference.record_hash(flow, hash);
        }
        assert!(scratch.order.is_empty(), "train-shaped batches must slice runs, not sort");
        assert_eq!(grouped.len(), reference.len());
        for flow in 0..50u64 {
            assert_eq!(grouped.estimate(flow), reference.estimate(flow), "flow {flow}");
        }
    }

    #[test]
    fn grouped_recording_uses_fast_path_on_contiguous_batches() {
        let sp = spec();
        let scheme = sp.scheme();
        let mut grouped = FlowTable::new(move |_| sp.build().unwrap());
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        let mut scratch = GroupScratch::default();
        // Sorted by flow: single flows, runs, and a trailing singleton.
        let batch: Vec<(u64, ItemHash)> = [1u64, 2, 2, 2, 5, 5, 9]
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, scheme.item_hash(&(i as u64).to_le_bytes())))
            .collect();
        record_batch_grouped(&mut grouped, &batch, &mut scratch);
        for &(flow, hash) in &batch {
            reference.record_hash(flow, hash);
        }
        for flow in [1u64, 2, 5, 9] {
            assert_eq!(grouped.estimate(flow), reference.estimate(flow), "flow {flow}");
        }
        assert!(scratch.order.is_empty(), "fast path must not populate the sort buffer");
    }

    #[test]
    fn expected_flows_pre_sizing_changes_nothing_observable() {
        let run = |expected| {
            let mut engine = ShardedFlowEngine::new(
                EngineConfig::new(spec())
                    .with_shards(2)
                    .with_batch(32)
                    .with_expected_flows(expected),
            )
            .unwrap();
            for i in 0..4000u32 {
                engine.ingest(i as u64 % 40, &i.to_le_bytes());
            }
            engine.flush();
            let mut all = engine.all_estimates();
            all.sort_by_key(|&(flow, _)| flow);
            all
        };
        let unsized_ = run(0);
        let presized = run(40);
        let oversized = run(100_000);
        assert_eq!(unsized_.len(), 40);
        assert_eq!(unsized_, presized);
        assert_eq!(unsized_, oversized);
    }

    #[test]
    fn query_top_k_is_descending_and_complete() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(3).with_batch(16),
        )
        .unwrap();
        for flow in 0..30u64 {
            // Flow f carries f+1 distinct items: distinct ranks.
            for i in 0..=flow {
                engine.ingest(flow, &(flow * 1000 + i).to_le_bytes());
            }
        }
        engine.flush();
        let top_k = |k| {
            engine
                .run_query(&EngineQuery::new().with_top_k(k))
                .top_k
                .unwrap()
        };
        let top = top_k(10);
        assert_eq!(top.len(), 10);
        for pair in top.windows(2) {
            assert!(
                pair[0].1 > pair[1].1
                    || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "top-k not in pinned (estimate desc, flow asc) order: {top:?}"
            );
        }
        // k beyond the flow count returns everything, still ordered.
        let all = top_k(1000);
        assert_eq!(all.len(), 30);
        assert_eq!(&all[..10], &top[..]);
        assert!(top_k(0).is_empty());
        // The deprecated shim answers identically, one release.
        #[allow(deprecated)]
        let shim = engine.snapshot_top_k(10);
        assert_eq!(shim, top);
    }

    #[test]
    fn multi_facet_query_answers_everything_in_one_sweep() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(2).with_batch(16),
        )
        .unwrap();
        for flow in 0..20u64 {
            for i in 0..=flow * 10 {
                engine.ingest(flow, &(flow * 100_000 + i).to_le_bytes());
            }
        }
        engine.flush();
        let report = engine.run_query(
            &EngineQuery::new()
                .with_estimate(19)
                .with_top_k(5)
                .with_flows_over(50.0)
                .with_flow_count()
                .with_memory_bytes(),
        );
        assert_eq!(report.estimate, engine.query(19));
        assert!(report.estimate.is_some());
        let top = report.top_k.unwrap();
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].0, 19, "largest flow leads: {top:?}");
        let over = report.flows_over.unwrap();
        assert!(!over.is_empty() && over.len() < 20, "{over:?}");
        for pair in over.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "not descending: {over:?}");
        }
        for &(_, estimate) in &over {
            assert!(estimate >= 50.0);
        }
        assert_eq!(report.flow_count, Some(20));
        assert_eq!(report.memory_bytes, Some(engine.memory_bytes()));
        assert_eq!(report.tier_stats.flows(), 20);
        // An empty query still carries the tier census and nothing else.
        let empty = engine.run_query(&EngineQuery::new());
        assert_eq!(empty.estimate, None);
        assert_eq!(empty.top_k, None);
        assert_eq!(empty.flows_over, None);
        assert_eq!(empty.flow_count, None);
        assert_eq!(empty.memory_bytes, None);
        assert_eq!(empty.tier_stats, report.tier_stats);
    }

    #[test]
    fn query_handle_reads_while_the_owner_ingests() {
        // The handle must answer queries without borrowing the engine:
        // a monitor thread queries concurrently while this thread
        // keeps calling `&mut self` ingest methods.
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(2).with_batch(8),
        )
        .unwrap();
        let handle = engine.query_handle();
        let monitor = handle.clone();
        std::thread::scope(|s| {
            let reader = s.spawn(move || {
                let mut last_flows = 0;
                for _ in 0..200 {
                    let report = monitor.run(
                        &EngineQuery::new().with_flow_count().with_top_k(3),
                    );
                    let flows = report.flow_count.unwrap();
                    assert!(flows >= last_flows, "flow count went backwards");
                    last_flows = flows;
                }
                last_flows
            });
            for i in 0..20_000u32 {
                engine.ingest(i as u64 % 64, &i.to_le_bytes());
            }
            engine.flush();
            let seen = reader.join().unwrap();
            assert!(seen <= 64);
        });
        // After the flush the handle reads the complete state.
        let report = handle.run(&EngineQuery::new().with_flow_count());
        assert_eq!(report.flow_count, Some(64));
    }

    #[test]
    fn tiered_shards_census_and_promote_exactly() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(4).with_batch(32),
        )
        .unwrap();
        // 60 singleton flows, 20 mid flows (8 distinct each: array
        // tier), 10 heavy flows (200 distinct each: materialized).
        for flow in 0..60u64 {
            engine.ingest(flow, b"lonely");
        }
        for flow in 100..120u64 {
            for i in 0..8u64 {
                engine.ingest(flow, &(flow * 1000 + i).to_le_bytes());
            }
        }
        for flow in 200..210u64 {
            for i in 0..200u64 {
                engine.ingest(flow, &(flow * 1000 + i).to_le_bytes());
            }
        }
        engine.flush();
        let tiers = engine.tier_stats();
        assert_eq!(tiers.small, 60);
        assert_eq!(tiers.array, 20);
        assert_eq!(tiers.full, 10);
        assert_eq!(tiers.promotions_to_array, 30);
        assert_eq!(tiers.promotions_to_full, 10);
        // The per-shard telemetry mirrors the same census.
        let snap = engine.metrics_snapshot();
        let gauge_total = |tier: &str| -> i64 {
            (0..4)
                .map(|i| {
                    let shard = i.to_string();
                    snap.get(
                        "engine_tier_flows",
                        &[("shard", shard.as_str()), ("tier", tier)],
                    )
                    .and_then(|v| v.as_gauge())
                    .unwrap_or(0)
                })
                .sum()
        };
        assert_eq!(gauge_total("small"), 60);
        assert_eq!(gauge_total("array"), 20);
        assert_eq!(gauge_total("full"), 10);
        assert_eq!(snap.counter_total("engine_tier_promotions_total"), 40);
        // Querying a tiered flow is bit-identical to an eager table.
        let sp = spec();
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        for i in 0..8u64 {
            reference.record_hash(100, engine.scheme().item_hash(&(100_000 + i).to_le_bytes()));
        }
        assert_eq!(engine.query(100), reference.estimate(100));
    }

    #[test]
    fn producer_partitioned_flows_match_single_producer_ingest() {
        // Each flow ingested by exactly one producer thread must give
        // estimates bit-identical to the engine's own ingest path.
        let sp = spec();
        let run_multi = || {
            let mut engine = ShardedFlowEngine::new(
                EngineConfig::new(sp).with_shards(2).with_batch(32),
            )
            .unwrap();
            let producer = engine.producer_handle();
            std::thread::scope(|s| {
                for t in 0u64..4 {
                    let mut p = producer.clone();
                    s.spawn(move || {
                        for flow in (t..12).step_by(4) {
                            for i in 0..500u32 {
                                p.ingest(flow, &(flow * 10_000 + i as u64).to_le_bytes());
                            }
                        }
                    });
                }
            });
            drop(producer);
            engine.flush();
            let mut all = engine.all_estimates();
            all.sort_by_key(|&(flow, _)| flow);
            all
        };
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(sp).with_shards(2).with_batch(32),
        )
        .unwrap();
        for flow in 0u64..12 {
            for i in 0..500u32 {
                engine.ingest(flow, &(flow * 10_000 + i as u64).to_le_bytes());
            }
        }
        engine.flush();
        let mut reference = engine.all_estimates();
        reference.sort_by_key(|&(flow, _)| flow);
        assert_eq!(run_multi(), reference);
    }

    #[test]
    fn producer_counters_attribute_and_conserve_items() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(2).with_batch(16),
        )
        .unwrap();
        let p0 = engine.producer_handle();
        let mut handles = vec![p0.clone(), p0.clone()];
        assert_eq!(p0.id(), 0);
        assert_eq!(handles[0].id(), 1);
        assert_eq!(handles[1].id(), 2);
        for (k, p) in handles.iter_mut().enumerate() {
            for i in 0..1000u32 {
                p.ingest((k as u64) * 100 + i as u64 % 7, &i.to_le_bytes());
            }
            p.flush();
        }
        let per_producer: Vec<_> = handles.iter().map(|p| p.stats()).collect();
        drop(handles);
        drop(p0);
        engine.flush();
        for (k, s) in per_producer.iter().enumerate() {
            assert_eq!(s.producer, (k + 1) as u32);
            assert_eq!(s.items, 1000, "producer {k} delivered everything");
            assert!(s.batches >= 1000 / 16);
            assert_eq!(s.dropped_items, 0);
        }
        // Shard counters hold the union; engine stats stay consistent.
        let stats = engine.stats();
        assert_eq!(stats.total_enqueued(), 2000);
        assert_eq!(stats.total_recorded(), 2000);
        assert_eq!(stats.total_flows(), 14);
        // The registry export carries the per-producer series.
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter_total("engine_producer_items_total"), 2000);
        assert_eq!(
            snap.get("engine_producer_items_total", &[("producer", "1")])
                .unwrap()
                .as_counter(),
            Some(1000)
        );
    }

    #[test]
    fn producer_flush_on_drop_delivers_partials() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(1).with_batch(1024),
        )
        .unwrap();
        {
            let mut p = engine.producer_handle();
            for i in 0..10u32 {
                p.ingest(1, &i.to_le_bytes());
            }
            // 10 items staged in a 1024-item batch: nothing delivered
            // yet; the drop below must hand them over.
        }
        engine.flush();
        assert_eq!(engine.stats().total_recorded(), 10);
        assert!(engine.query(1).is_some());
    }

    #[test]
    fn producer_outliving_engine_counts_drops_without_panicking() {
        let mut p = {
            let engine = ShardedFlowEngine::new(
                EngineConfig::new(spec()).with_shards(1).with_batch(4),
            )
            .unwrap();
            engine.producer_handle()
            // engine drops here, closing the shard queues
        };
        for i in 0..10u32 {
            p.ingest(1, &i.to_le_bytes());
        }
        p.flush();
        let s = p.stats();
        assert_eq!(s.items, 0);
        assert_eq!(s.dropped_items, 10, "closed-queue sends count as drops");
    }

    #[test]
    fn shared_flows_across_producers_conserve_counts() {
        // All producers hammer the SAME flows: arrival interleaving is
        // nondeterministic, but every item must be recorded exactly
        // once and the distinct-item estimate must stay sane.
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(2).with_batch(32),
        )
        .unwrap();
        let producer = engine.producer_handle();
        std::thread::scope(|s| {
            for t in 0u64..3 {
                let mut p = producer.clone();
                s.spawn(move || {
                    for i in 0..2000u32 {
                        // Distinct items per producer, shared flow keys.
                        p.ingest(i as u64 % 4, &(t * 1_000_000 + i as u64).to_le_bytes());
                    }
                });
            }
        });
        drop(producer);
        engine.flush();
        let stats = engine.stats();
        assert_eq!(stats.total_enqueued(), 6000);
        assert_eq!(stats.total_recorded(), 6000);
        assert_eq!(stats.total_flows(), 4);
        let est = engine.query(0).unwrap();
        // 1500 distinct items per flow; SMB at m=2048 stays well within
        // a loose factor-of-two sanity band.
        assert!(est > 750.0 && est < 3000.0, "{est}");
    }

    #[test]
    fn matches_unsharded_flow_table() {
        let sp = spec();
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(sp).with_shards(3).with_batch(32),
        )
        .unwrap();
        let mut reference = FlowTable::new(move |_| sp.build().unwrap());
        for i in 0..3000u32 {
            let flow = (i % 17) as u64;
            let item = i.to_le_bytes();
            engine.ingest(flow, &item);
            reference.record(flow, &item);
        }
        engine.flush();
        for flow in 0..17u64 {
            assert_eq!(engine.query(flow), reference.estimate(flow), "flow {flow}");
        }
    }

    /// A producer-side barrier makes the producer's own ingest visible
    /// to a query handle without touching the engine — the server
    /// session pattern (one producer + one query handle per
    /// connection, the engine owned elsewhere).
    #[test]
    fn producer_barrier_makes_ingest_visible_to_query_handle() {
        let mut engine = ShardedFlowEngine::new(
            EngineConfig::new(spec()).with_shards(2).with_batch(64),
        )
        .unwrap();
        let queries = engine.query_handle();
        let mut producer = engine.producer_handle();
        for i in 0..5_000u32 {
            producer.ingest(u64::from(i % 8), &i.to_le_bytes());
        }
        producer.barrier();
        let report = queries.run(&EngineQuery::new().with_flow_count());
        assert_eq!(report.flow_count, Some(8));
        // Barrier on an already-drained producer returns immediately.
        producer.barrier();

        // snapshot_cells: sorted, one entry per flow, every state
        // serializable — and identical whether taken through the
        // handle or a checkpoint's shard sweep.
        let cells = queries.snapshot_cells().unwrap();
        assert_eq!(cells.len(), 8);
        assert!(cells.windows(2).all(|w| w[0].0 < w[1].0), "sorted by flow");
        drop(engine);
        // Handles stay valid after the engine is gone; the barrier
        // still terminates because shutdown drained the queues.
        producer.barrier();
        assert_eq!(queries.snapshot_cells().unwrap().len(), 8);
    }
}
