//! A bounded blocking channel, the engine's shard queue.
//!
//! One or more producers (the engine's own ingest front-end plus any
//! number of cloned [`Sender`] handles held by
//! `ShardedFlowEngine::producer_handle` producers) and one consumer
//! (the shard worker) per channel — the implementation is safe under
//! any number of handles. The queue is bounded in *batches*;
//! combined with the engine's fixed batch size this caps the number of
//! in-flight items per shard, which is what gives the engine explicit
//! backpressure instead of unbounded buffering.
//!
//! Built on `Mutex` + `Condvar` from `std` only (offline-dependency
//! policy: no crossbeam). The producer touches the lock once per
//! *batch*, not per item, so the synchronisation cost is amortised over
//! the batch size.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Why a [`Sender::try_send`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the value is handed back.
    Full(T),
    /// The receiver side is gone; the value is handed back.
    Closed(T),
}

/// Producer handle of a bounded channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Sender<T> {
    /// Another handle to the same queue — the channel is MPSC-safe, so
    /// clones may send from different threads concurrently. (Manual
    /// impl: `derive(Clone)` would needlessly require `T: Clone`.)
    fn clone(&self) -> Self {
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Consumer handle of a bounded channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a bounded channel holding at most `capacity` values.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity),
            closed: false,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the queue is full. Returns the
    /// value back if the channel is closed.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.inner.state.lock().expect("channel lock");
        loop {
            if state.closed {
                return Err(value);
            }
            if state.buf.len() < self.inner.capacity {
                state.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("channel lock");
        }
    }

    /// Enqueue `value` without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.state.lock().expect("channel lock");
        if state.closed {
            return Err(TrySendError::Closed(value));
        }
        if state.buf.len() >= self.inner.capacity {
            return Err(TrySendError::Full(value));
        }
        state.buf.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Close the channel: the receiver drains what is buffered, then
    /// observes end-of-stream. Idempotent.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().expect("channel lock");
        state.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next value, blocking while the queue is empty.
    /// `None` once the channel is closed **and** drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("channel lock");
        loop {
            if let Some(v) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Some(v);
            }
            if state.closed {
                return None;
            }
            state = self.inner.not_empty.wait(state).expect("channel lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
    }

    #[test]
    fn try_send_reports_full_deterministically() {
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Some(1));
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn close_drains_then_ends() {
        let (tx, rx) = bounded(4);
        tx.send("a").unwrap();
        tx.close();
        assert_eq!(tx.try_send("b"), Err(TrySendError::Closed("b")));
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn blocking_send_resumes_after_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the consumer drains
            tx.close();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
        producer.join().unwrap();
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = bounded(8);
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let mut got = Vec::with_capacity(400);
        for _ in 0..400 {
            got.push(rx.recv().expect("senders still open"));
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let expected: Vec<u32> =
            (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        assert_eq!(got, expected, "every send arrives exactly once");
        // Per-producer FIFO: already implied by Mutex-serialised sends,
        // and close remains visible through the original handle.
        tx.close();
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = bounded(1);
        let consumer = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }
}
