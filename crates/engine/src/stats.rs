//! Engine observability: registry-backed per-shard metrics and their
//! aggregation.
//!
//! Each shard's accounting lives in `smb-telemetry` metric cells
//! registered under the engine's [`Registry`] with a `shard` label —
//! one source of truth feeding both the programmatic
//! [`EngineStats`] view and the JSON / Prometheus exporters. The
//! cells are lock-free atomics; the flush protocol in `engine.rs` is
//! the only place ordering matters, and it uses the counters'
//! acquire/release variants.

use std::sync::Arc;

use smb_sketch::TierStats;
use smb_telemetry::{Counter, Gauge, Histogram, Registry};

/// One shard's metric cells, resolved from the engine registry at
/// construction. Written by the producer side (enqueue/drop
/// accounting) and the shard worker (processing accounting); exported
/// via the registry under `shard="<index>"`.
#[derive(Debug)]
pub(crate) struct ShardMetrics {
    /// Items successfully handed to the shard's queue (inside batches).
    pub items_enqueued: Arc<Counter>,
    /// Items the worker has recorded into its flow table.
    pub items_recorded: Arc<Counter>,
    /// Batches successfully enqueued.
    pub batches_sent: Arc<Counter>,
    /// Batches the worker has fully processed.
    pub batches_processed: Arc<Counter>,
    /// Items discarded by the drop backpressure policy.
    pub dropped_items: Arc<Counter>,
    /// Times the shard queue was observed full on dispatch.
    pub queue_full_events: Arc<Counter>,
    /// Batches enqueued but not yet fully processed — the shard's
    /// backlog.
    pub queue_depth: Arc<Gauge>,
    /// Flows resident in the shard's table (updated by the worker
    /// after each batch).
    pub flows: Arc<Gauge>,
    /// Length of each dispatched batch — how full batches run.
    pub batch_occupancy: Arc<Histogram>,
    /// Nanoseconds each dispatch spent handing its batch to the queue
    /// (includes blocking time under the block policy).
    pub enqueue_latency: Arc<Histogram>,
    /// Nanoseconds the worker spent recording each batch into its flow
    /// table (the ingest kernel: lock, group, record).
    pub record_latency: Arc<Histogram>,
    /// Flows currently in the inline small tier
    /// (`engine_tier_flows{tier="small"}`).
    pub tier_small: Arc<Gauge>,
    /// Flows currently in the heap-array tier
    /// (`engine_tier_flows{tier="array"}`).
    pub tier_array: Arc<Gauge>,
    /// Flows with a materialized estimator
    /// (`engine_tier_flows{tier="full"}`).
    pub tier_full: Arc<Gauge>,
    /// Lifetime cells promoted out of the small tier
    /// (`engine_tier_promotions_total{tier="array"}`).
    pub promotions_to_array: Arc<Counter>,
    /// Lifetime cells that materialized an estimator
    /// (`engine_tier_promotions_total{tier="full"}`).
    pub promotions_to_full: Arc<Counter>,
    /// Sampled pipeline-stage spans
    /// (`engine_stage_duration_ns{shard,stage}`), fed only by batches
    /// the `trace_sample` knob selected. Stages, in pipeline order:
    /// staging the batch producer-side (`producer_hash`), handing it
    /// to the queue (`enqueue`), waiting in the queue until the worker
    /// dequeues it (`queue_wait`, measured from the enqueue offer so
    /// it includes any time the producer spent blocked on a full
    /// queue), and recording it into the flow table (`record_batch`).
    pub stage_producer_hash: Arc<Histogram>,
    /// `engine_stage_duration_ns{stage="enqueue"}` — see
    /// [`ShardMetrics::stage_producer_hash`].
    pub stage_enqueue: Arc<Histogram>,
    /// `engine_stage_duration_ns{stage="queue_wait"}` — see
    /// [`ShardMetrics::stage_producer_hash`].
    pub stage_queue_wait: Arc<Histogram>,
    /// `engine_stage_duration_ns{stage="record_batch"}` — see
    /// [`ShardMetrics::stage_producer_hash`].
    pub stage_record_batch: Arc<Histogram>,
}

/// One HELP string for every `engine_stage_duration_ns` series.
pub(crate) const STAGE_HELP: &str =
    "Nanoseconds per pipeline stage, from batches sampled by trace_sample";

impl ShardMetrics {
    /// Register this shard's series (label `shard="<index>"`) in
    /// `registry`.
    pub(crate) fn register(registry: &Registry, shard: usize) -> Self {
        let index = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &index)];
        ShardMetrics {
            items_enqueued: registry.counter_with(
                "engine_items_enqueued_total",
                "Items successfully handed to shard queues",
                labels,
            ),
            items_recorded: registry.counter_with(
                "engine_items_recorded_total",
                "Items recorded into shard flow tables",
                labels,
            ),
            batches_sent: registry.counter_with(
                "engine_batches_sent_total",
                "Batches successfully enqueued",
                labels,
            ),
            batches_processed: registry.counter_with(
                "engine_batches_processed_total",
                "Batches fully processed by shard workers",
                labels,
            ),
            dropped_items: registry.counter_with(
                "engine_items_dropped_total",
                "Items discarded by the drop backpressure policy",
                labels,
            ),
            queue_full_events: registry.counter_with(
                "engine_queue_full_total",
                "Dispatch attempts that found the shard queue full",
                labels,
            ),
            queue_depth: registry.gauge_with(
                "engine_queue_depth",
                "Batches enqueued but not yet fully processed",
                labels,
            ),
            flows: registry.gauge_with(
                "engine_flows",
                "Flows resident in the shard's table",
                labels,
            ),
            batch_occupancy: registry.histogram_with(
                "engine_batch_occupancy",
                "Items per dispatched batch",
                labels,
            ),
            enqueue_latency: registry.histogram_with(
                "engine_enqueue_latency_ns",
                "Nanoseconds spent handing each batch to its shard queue",
                labels,
            ),
            record_latency: registry.histogram_with(
                "engine_record_batch_ns",
                "Nanoseconds the worker spent recording each batch",
                labels,
            ),
            tier_small: registry.gauge_with(
                "engine_tier_flows",
                "Flows resident per storage tier",
                &[("shard", &index), ("tier", "small")],
            ),
            tier_array: registry.gauge_with(
                "engine_tier_flows",
                "Flows resident per storage tier",
                &[("shard", &index), ("tier", "array")],
            ),
            tier_full: registry.gauge_with(
                "engine_tier_flows",
                "Flows resident per storage tier",
                &[("shard", &index), ("tier", "full")],
            ),
            promotions_to_array: registry.counter_with(
                "engine_tier_promotions_total",
                "Lifetime tier promotions, by destination tier",
                &[("shard", &index), ("tier", "array")],
            ),
            promotions_to_full: registry.counter_with(
                "engine_tier_promotions_total",
                "Lifetime tier promotions, by destination tier",
                &[("shard", &index), ("tier", "full")],
            ),
            stage_producer_hash: registry.histogram_with(
                "engine_stage_duration_ns",
                STAGE_HELP,
                &[("shard", &index), ("stage", "producer_hash")],
            ),
            stage_enqueue: registry.histogram_with(
                "engine_stage_duration_ns",
                STAGE_HELP,
                &[("shard", &index), ("stage", "enqueue")],
            ),
            stage_queue_wait: registry.histogram_with(
                "engine_stage_duration_ns",
                STAGE_HELP,
                &[("shard", &index), ("stage", "queue_wait")],
            ),
            stage_record_batch: registry.histogram_with(
                "engine_stage_duration_ns",
                STAGE_HELP,
                &[("shard", &index), ("stage", "record_batch")],
            ),
        }
    }

    /// Mirror a table's tier occupancy into the gauges.
    pub(crate) fn set_tier_gauges(&self, tiers: TierStats) {
        self.tier_small.set(tiers.small as i64);
        self.tier_array.set(tiers.array as i64);
        self.tier_full.set(tiers.full as i64);
    }

    /// Worker-side per-batch sync: set the occupancy gauges and
    /// advance the promotion counters by the delta since the last
    /// sync. `last` is the worker's private baseline — promotion
    /// counters must be advanced from exactly one place per shard or
    /// deltas would double count.
    pub(crate) fn sync_tiers(&self, last: &mut TierStats, now: TierStats) {
        self.set_tier_gauges(now);
        self.promotions_to_array
            .add(now.promotions_to_array - last.promotions_to_array);
        self.promotions_to_full
            .add(now.promotions_to_full - last.promotions_to_full);
        *last = now;
    }

    /// A point-in-time [`ShardStats`] view. `flows` is passed in from
    /// an exact table count (the gauge lags by up to one batch).
    pub(crate) fn snapshot(&self, shard: usize, flows: u64) -> ShardStats {
        let batches_sent = self.batches_sent.get_acquire();
        ShardStats {
            shard,
            items_enqueued: self.items_enqueued.get(),
            items_recorded: self.items_recorded.get(),
            batches_sent,
            batches_processed: self.batches_processed.get_acquire(),
            dropped_items: self.dropped_items.get(),
            queue_full_events: self.queue_full_events.get(),
            flows,
            mean_batch_occupancy: self.batch_occupancy.mean(),
        }
    }
}

/// One producer handle's metric cells, registered under
/// `producer="<id>"`. Each [`crate::EngineProducer`] (and each clone)
/// gets its own set, so per-thread ingest attribution survives into
/// the export: summing `engine_producer_items_total` across producers
/// gives exactly the items they delivered to shard queues.
#[derive(Debug)]
pub(crate) struct ProducerMetrics {
    /// Items this producer delivered into shard queues.
    pub items: Arc<Counter>,
    /// Batches this producer delivered.
    pub batches: Arc<Counter>,
    /// Times this producer found a shard queue full.
    pub queue_full: Arc<Counter>,
    /// Items this producer discarded (drop policy, or the engine was
    /// already shut down).
    pub dropped: Arc<Counter>,
}

impl ProducerMetrics {
    /// Register this producer's series (label `producer="<id>"`) in
    /// `registry`.
    pub(crate) fn register(registry: &Registry, producer: u32) -> Self {
        let id = producer.to_string();
        let labels: &[(&str, &str)] = &[("producer", &id)];
        ProducerMetrics {
            items: registry.counter_with(
                "engine_producer_items_total",
                "Items delivered to shard queues, per producer handle",
                labels,
            ),
            batches: registry.counter_with(
                "engine_producer_batches_total",
                "Batches delivered to shard queues, per producer handle",
                labels,
            ),
            queue_full: registry.counter_with(
                "engine_producer_queue_full_total",
                "Full-queue encounters, per producer handle",
                labels,
            ),
            dropped: registry.counter_with(
                "engine_producer_items_dropped_total",
                "Items discarded (drop policy or engine shut down), per producer handle",
                labels,
            ),
        }
    }

    /// A point-in-time [`ProducerStats`] view.
    pub(crate) fn snapshot(&self, producer: u32) -> ProducerStats {
        ProducerStats {
            producer,
            items: self.items.get(),
            batches: self.batches.get(),
            queue_full_events: self.queue_full.get(),
            dropped_items: self.dropped.get(),
        }
    }
}

/// A point-in-time snapshot of one producer handle's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerStats {
    /// Producer id, allocated sequentially per engine as handles are
    /// created (`producer_handle`) or cloned. The engine's own ingest
    /// front-end is not a producer handle and carries no producer
    /// series — its traffic shows up in the shard counters only.
    pub producer: u32,
    /// Items this producer delivered into shard queues.
    pub items: u64,
    /// Batches this producer delivered.
    pub batches: u64,
    /// Times this producer found a shard queue full.
    pub queue_full_events: u64,
    /// Items this producer discarded.
    pub dropped_items: u64,
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Items handed to this shard's queue.
    pub items_enqueued: u64,
    /// Items recorded into the shard's flow table.
    pub items_recorded: u64,
    /// Batches enqueued.
    pub batches_sent: u64,
    /// Batches fully processed by the worker.
    pub batches_processed: u64,
    /// Items discarded under the drop policy.
    pub dropped_items: u64,
    /// Dispatch attempts that found the queue full.
    pub queue_full_events: u64,
    /// Flows resident in the shard's table.
    pub flows: u64,
    /// Mean number of items per dispatched batch — how full batches
    /// run. Low occupancy with a large configured batch size means the
    /// producer flushes partials (bursty input); `NaN` before any
    /// batch is dispatched.
    pub mean_batch_occupancy: f64,
}

/// Aggregated engine statistics: one entry per shard plus totals.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Total items handed to shard queues.
    pub fn total_enqueued(&self) -> u64 {
        self.shards.iter().map(|s| s.items_enqueued).sum()
    }

    /// Total items recorded into flow tables.
    pub fn total_recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.items_recorded).sum()
    }

    /// Total items discarded by the drop policy.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_items).sum()
    }

    /// Total queue-full events observed on dispatch.
    pub fn total_queue_full_events(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_full_events).sum()
    }

    /// Total flows across all shards (shards partition flows, so this
    /// is an exact count, not an estimate).
    pub fn total_flows(&self) -> u64 {
        self.shards.iter().map(|s| s.flows).sum()
    }

    /// Largest relative imbalance across shards: `max/mean − 1` of
    /// per-shard enqueued items. 0 means perfectly even. Degenerate
    /// stat sets — no shards, a single shard, or nothing enqueued —
    /// have no imbalance to speak of and return 0 rather than NaN.
    pub fn shard_imbalance(&self) -> f64 {
        if self.shards.len() <= 1 {
            return 0.0;
        }
        let n = self.shards.len() as f64;
        let total = self.total_enqueued() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mean = total / n;
        let max = self
            .shards
            .iter()
            .map(|s| s.items_enqueued as f64)
            .fold(0.0, f64::max);
        max / mean - 1.0
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5}  {:>12}  {:>12}  {:>10}  {:>8}  {:>10}  {:>8}  {:>9}",
            "shard", "enqueued", "recorded", "dropped", "qfull", "batches", "flows", "occupancy"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>5}  {:>12}  {:>12}  {:>10}  {:>8}  {:>10}  {:>8}  {:>9.1}",
                s.shard,
                s.items_enqueued,
                s.items_recorded,
                s.dropped_items,
                s.queue_full_events,
                s.batches_sent,
                s.flows,
                s.mean_batch_occupancy,
            )?;
        }
        write!(
            f,
            "total  enqueued {}  recorded {}  dropped {}  flows {}  imbalance {:.2}",
            self.total_enqueued(),
            self.total_recorded(),
            self.total_dropped(),
            self.total_flows(),
            self.shard_imbalance(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(enqueued: &[u64]) -> EngineStats {
        EngineStats {
            shards: enqueued
                .iter()
                .enumerate()
                .map(|(i, &e)| ShardStats {
                    shard: i,
                    items_enqueued: e,
                    items_recorded: e,
                    batches_sent: 1,
                    batches_processed: 1,
                    dropped_items: 0,
                    queue_full_events: 0,
                    flows: 1,
                    mean_batch_occupancy: e as f64,
                })
                .collect(),
        }
    }

    #[test]
    fn totals_sum_across_shards() {
        let s = stats(&[10, 20, 30]);
        assert_eq!(s.total_enqueued(), 60);
        assert_eq!(s.total_recorded(), 60);
        assert_eq!(s.total_flows(), 3);
    }

    #[test]
    fn imbalance_zero_when_even() {
        assert!(stats(&[10, 10]).shard_imbalance().abs() < 1e-12);
        assert!((stats(&[30, 10]).shard_imbalance() - 0.5).abs() < 1e-12);
        assert_eq!(stats(&[0, 0]).shard_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_of_degenerate_stat_sets_is_zero() {
        // No shards: nothing to be imbalanced against.
        let empty = EngineStats { shards: vec![] };
        assert_eq!(empty.shard_imbalance(), 0.0);
        assert!(empty.shard_imbalance().is_finite());
        // One shard: max == mean by definition, loaded or not.
        assert_eq!(stats(&[0]).shard_imbalance(), 0.0);
        assert_eq!(stats(&[12345]).shard_imbalance(), 0.0);
    }

    #[test]
    fn shard_metrics_snapshot_round_trips_through_registry() {
        let registry = Registry::new("smb_engine");
        let m = ShardMetrics::register(&registry, 3);
        m.items_enqueued.add(100);
        m.items_recorded.add(90);
        m.batches_sent.add_release(2);
        m.batches_processed.add_release(2);
        m.batch_occupancy.record(60);
        m.batch_occupancy.record(40);
        let s = m.snapshot(3, 7);
        assert_eq!(s.shard, 3);
        assert_eq!(s.items_enqueued, 100);
        assert_eq!(s.items_recorded, 90);
        assert_eq!(s.batches_sent, 2);
        assert_eq!(s.flows, 7);
        assert!((s.mean_batch_occupancy - 50.0).abs() < 1e-12);
        // The same numbers are visible through the registry export path.
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("engine_items_enqueued_total", &[("shard", "3")])
                .unwrap()
                .as_counter(),
            Some(100)
        );
        // Re-registering the same shard shares cells, not duplicates.
        let again = ShardMetrics::register(&registry, 3);
        assert_eq!(again.items_enqueued.get(), 100);
    }

    #[test]
    fn fresh_shard_occupancy_is_nan() {
        let registry = Registry::new("smb_engine");
        let m = ShardMetrics::register(&registry, 0);
        assert!(m.snapshot(0, 0).mean_batch_occupancy.is_nan());
    }

    #[test]
    fn display_renders_every_shard() {
        let text = stats(&[5, 7]).to_string();
        assert!(text.contains("enqueued"));
        assert!(text.lines().count() >= 4, "{text}");
    }
}
