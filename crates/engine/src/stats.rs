//! Engine observability: per-shard counters and their aggregation.
//!
//! This is the workspace's first operational-metrics surface. Counters
//! are plain relaxed atomics — they are monotonic event counts, never
//! used for synchronisation (the flush protocol in `engine.rs` is the
//! only place ordering matters, and it uses acquire/release pairs on
//! the batch counters).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters of one shard, written by the producer side
/// (enqueue/drop accounting) and the shard worker (processing
/// accounting).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Items handed to the shard's queue (inside batches).
    pub items_enqueued: AtomicU64,
    /// Items the worker has recorded into its flow table.
    pub items_recorded: AtomicU64,
    /// Batches successfully enqueued.
    pub batches_sent: AtomicU64,
    /// Batches the worker has fully processed.
    pub batches_processed: AtomicU64,
    /// Items discarded by the drop backpressure policy.
    pub dropped_items: AtomicU64,
    /// Times the shard queue was observed full on dispatch.
    pub queue_full_events: AtomicU64,
    /// Sum of dispatched batch lengths (occupancy numerator; divide by
    /// `batches_sent + drops/batch` for mean fill).
    pub batched_items: AtomicU64,
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Items handed to this shard's queue.
    pub items_enqueued: u64,
    /// Items recorded into the shard's flow table.
    pub items_recorded: u64,
    /// Batches enqueued.
    pub batches_sent: u64,
    /// Batches fully processed by the worker.
    pub batches_processed: u64,
    /// Items discarded under the drop policy.
    pub dropped_items: u64,
    /// Dispatch attempts that found the queue full.
    pub queue_full_events: u64,
    /// Flows resident in the shard's table.
    pub flows: u64,
    /// Mean number of items per dispatched batch — how full batches
    /// run. Low occupancy with a large configured batch size means the
    /// producer flushes partials (bursty input); `NaN` before any
    /// batch is dispatched.
    pub mean_batch_occupancy: f64,
}

impl ShardCounters {
    pub(crate) fn snapshot(&self, shard: usize, flows: u64) -> ShardStats {
        let batches_sent = self.batches_sent.load(Ordering::Acquire);
        let batched_items = self.batched_items.load(Ordering::Relaxed);
        ShardStats {
            shard,
            items_enqueued: self.items_enqueued.load(Ordering::Relaxed),
            items_recorded: self.items_recorded.load(Ordering::Relaxed),
            batches_sent,
            batches_processed: self.batches_processed.load(Ordering::Acquire),
            dropped_items: self.dropped_items.load(Ordering::Relaxed),
            queue_full_events: self.queue_full_events.load(Ordering::Relaxed),
            flows,
            mean_batch_occupancy: batched_items as f64 / batches_sent as f64,
        }
    }
}

/// Aggregated engine statistics: one entry per shard plus totals.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Total items handed to shard queues.
    pub fn total_enqueued(&self) -> u64 {
        self.shards.iter().map(|s| s.items_enqueued).sum()
    }

    /// Total items recorded into flow tables.
    pub fn total_recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.items_recorded).sum()
    }

    /// Total items discarded by the drop policy.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_items).sum()
    }

    /// Total queue-full events observed on dispatch.
    pub fn total_queue_full_events(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_full_events).sum()
    }

    /// Total flows across all shards (shards partition flows, so this
    /// is an exact count, not an estimate).
    pub fn total_flows(&self) -> u64 {
        self.shards.iter().map(|s| s.flows).sum()
    }

    /// Largest relative imbalance across shards: `max/mean − 1` of
    /// per-shard enqueued items. 0 means perfectly even.
    pub fn shard_imbalance(&self) -> f64 {
        let n = self.shards.len() as f64;
        let total = self.total_enqueued() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mean = total / n;
        let max = self
            .shards
            .iter()
            .map(|s| s.items_enqueued as f64)
            .fold(0.0, f64::max);
        max / mean - 1.0
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5}  {:>12}  {:>12}  {:>10}  {:>8}  {:>10}  {:>8}  {:>9}",
            "shard", "enqueued", "recorded", "dropped", "qfull", "batches", "flows", "occupancy"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>5}  {:>12}  {:>12}  {:>10}  {:>8}  {:>10}  {:>8}  {:>9.1}",
                s.shard,
                s.items_enqueued,
                s.items_recorded,
                s.dropped_items,
                s.queue_full_events,
                s.batches_sent,
                s.flows,
                s.mean_batch_occupancy,
            )?;
        }
        write!(
            f,
            "total  enqueued {}  recorded {}  dropped {}  flows {}  imbalance {:.2}",
            self.total_enqueued(),
            self.total_recorded(),
            self.total_dropped(),
            self.total_flows(),
            self.shard_imbalance(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(enqueued: &[u64]) -> EngineStats {
        EngineStats {
            shards: enqueued
                .iter()
                .enumerate()
                .map(|(i, &e)| ShardStats {
                    shard: i,
                    items_enqueued: e,
                    items_recorded: e,
                    batches_sent: 1,
                    batches_processed: 1,
                    dropped_items: 0,
                    queue_full_events: 0,
                    flows: 1,
                    mean_batch_occupancy: e as f64,
                })
                .collect(),
        }
    }

    #[test]
    fn totals_sum_across_shards() {
        let s = stats(&[10, 20, 30]);
        assert_eq!(s.total_enqueued(), 60);
        assert_eq!(s.total_recorded(), 60);
        assert_eq!(s.total_flows(), 3);
    }

    #[test]
    fn imbalance_zero_when_even() {
        assert!(stats(&[10, 10]).shard_imbalance().abs() < 1e-12);
        assert!((stats(&[30, 10]).shard_imbalance() - 0.5).abs() < 1e-12);
        assert_eq!(stats(&[0, 0]).shard_imbalance(), 0.0);
    }

    #[test]
    fn display_renders_every_shard() {
        let text = stats(&[5, 7]).to_string();
        assert!(text.contains("enqueued"));
        assert!(text.lines().count() >= 4, "{text}");
    }
}
