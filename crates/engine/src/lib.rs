//! # smb-engine — sharded concurrent flow-estimation ingest
//!
//! The paper's deployment model (one estimator per flow, §V-F) shards
//! cleanly by flow key: no estimator is ever touched by two flows, so
//! partitioning flows across cores needs no synchronisation on the
//! recording path. This crate turns that observation into a
//! multi-core ingest pipeline:
//!
//! * [`ShardedFlowEngine`] — hash-once producer, N worker shards each
//!   owning a private [`smb_sketch::FlowTable`], fixed-size batches
//!   over bounded queues, explicit backpressure
//!   ([`BackpressurePolicy`]);
//! * [`EngineProducer`] — cloneable multi-producer ingest handles
//!   ([`ShardedFlowEngine::producer_handle`]): N threads feed the
//!   shard queues concurrently, each with its own batches and its own
//!   `producer="<id>"`-labelled telemetry series;
//! * [`EngineQuery`] / [`QueryReport`] / [`QueryHandle`] — the one
//!   aggregate query surface: multi-facet reads (point estimate,
//!   top-k, threshold scan, flow count, resident bytes, tier census)
//!   in a single per-shard sweep, runnable from a cloneable handle
//!   ([`ShardedFlowEngine::query_handle`]) that does not borrow the
//!   engine — so monitoring threads read while ingest continues;
//! * [`EngineStats`] / [`ShardStats`] — the workspace's first
//!   observability surface: per-shard item counts, batch occupancy,
//!   dropped items and queue-full events;
//! * [`channel`] — the in-tree bounded blocking channel (offline
//!   dependency policy: no crossbeam);
//! * durability — per-shard atomic checkpoints
//!   ([`ShardedFlowEngine::checkpoint_now`], a background thread via
//!   [`ShardedFlowEngine::start_checkpointer`] and
//!   [`CheckpointConfig`]) and crash recovery
//!   ([`ShardedFlowEngine::restore`], [`RestoreReport`]): restore
//!   lands on the newest *consistent* epoch with bit-identical
//!   estimates; torn or corrupted newer epochs are skipped with a
//!   bounded-loss warning (see `DESIGN.md` §11).
//!
//! Per-flow estimates are **bit-identical across shard counts**: a
//! flow's packets always reach the same shard in ingest order, and all
//! estimators are built from one [`smb_factory::AlgoSpec`], so
//! `--shards 1` and `--shards 8` produce the same numbers (tested in
//! `tests/engine.rs`). Throughput scales with cores; correctness never
//! depends on the schedule.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel;
mod durability;
mod engine;
mod stats;

pub use durability::{CheckpointConfig, CheckpointFormat, RestoreReport};
pub use engine::{
    record_batch_grouped, BackpressurePolicy, EngineConfig, EngineProducer, EngineQuery,
    EstimatorFactory, GroupScratch, QueryHandle, QueryReport, ShardTable, ShardedFlowEngine,
};
pub use stats::{EngineStats, ProducerStats, ShardStats};
