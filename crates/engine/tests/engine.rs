//! Integration tests of the sharded engine against the synthetic
//! CAIDA-like trace: shard-count invariance (the acceptance criterion
//! for deterministic sharding) and backpressure accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smb_core::CardinalityEstimator;
use smb_engine::{BackpressurePolicy, EngineConfig, ShardedFlowEngine};
use smb_factory::{Algo, AlgoSpec, DynEstimator};
use smb_hash::{HashScheme, ItemHash};
use smb_stream::TraceConfig;

fn spec() -> AlgoSpec {
    AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(0xCA1DA)
}

fn run_trace(shards: usize, batch: usize) -> Vec<(u64, f64)> {
    let mut engine = ShardedFlowEngine::new(
        EngineConfig::new(spec())
            .with_shards(shards)
            .with_batch(batch),
    )
    .expect("valid config");
    for p in TraceConfig::tiny(42).build().packets() {
        engine.ingest(p.flow as u64, &p.item_bytes());
    }
    engine.flush();
    let mut estimates = engine.all_estimates();
    estimates.sort_by_key(|&(flow, _)| flow);
    estimates
}

/// Acceptance criterion: per-flow estimates are bit-identical across
/// shard counts 1 / 2 / 8 for a fixed seed. Flows partition across
/// shards, every flow's packets stay in ingest order, and all
/// estimators share one spec-derived scheme — so the schedule cannot
/// influence any estimate.
#[test]
fn per_flow_estimates_invariant_across_shard_counts() {
    let one = run_trace(1, 64);
    let two = run_trace(2, 64);
    let eight = run_trace(8, 64);
    assert_eq!(one.len(), 500, "tiny trace tracks 500 flows");
    assert_eq!(one, two, "1 vs 2 shards");
    assert_eq!(one, eight, "1 vs 8 shards");
    // Batch size is a transport knob, not a semantic one.
    let odd_batches = run_trace(3, 7);
    assert_eq!(one, odd_batches, "1×64 vs 3×7 shards×batch");
}

/// The engine must agree with the paper's single-threaded deployment
/// model (a plain FlowTable over the same spec) — sharding is an
/// execution detail, not an accuracy trade.
#[test]
fn engine_matches_single_threaded_reference_on_trace() {
    let sp = spec();
    let mut reference = smb_sketch::FlowTable::new(move |_| sp.build().unwrap());
    let trace = TraceConfig::tiny(42).build();
    for p in trace.packets() {
        reference.record(p.flow as u64, &p.item_bytes());
    }
    for (flow, est) in run_trace(4, 128) {
        assert_eq!(reference.estimate(flow), Some(est), "flow {flow}");
    }
}

/// An estimator wrapper that sleeps per batch, making the worker
/// provably slower than the producer so the drop policy must engage.
struct Slow(DynEstimator, Arc<AtomicU64>);

impl CardinalityEstimator for Slow {
    fn record_hash(&mut self, hash: ItemHash) {
        std::thread::sleep(std::time::Duration::from_millis(1));
        self.1.fetch_add(1, Ordering::Relaxed);
        self.0.record_hash(hash);
    }
    fn record_hashes(&mut self, hashes: &[ItemHash]) {
        std::thread::sleep(std::time::Duration::from_millis(1));
        self.1.fetch_add(hashes.len() as u64, Ordering::Relaxed);
        self.0.record_hashes(hashes);
    }
    fn estimate(&self) -> f64 {
        self.0.estimate()
    }
    fn scheme(&self) -> HashScheme {
        self.0.scheme()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
    fn clear(&mut self) {
        self.0.clear();
    }
    fn name(&self) -> &'static str {
        "Slow"
    }
    fn max_estimate(&self) -> f64 {
        self.0.max_estimate()
    }
}

/// Backpressure under the drop policy: with a one-batch queue and a
/// deliberately slow worker, the producer must observe full queues and
/// shed load, and the books must balance exactly:
/// `ingested = recorded + dropped` after a flush.
#[test]
fn drop_policy_sheds_load_and_accounts_for_it() {
    let sp = spec();
    let recorded_probe = Arc::new(AtomicU64::new(0));
    let probe = Arc::clone(&recorded_probe);
    let mut engine = ShardedFlowEngine::with_factory(
        EngineConfig::new(sp)
            .with_shards(1)
            .with_batch(8)
            .with_queue_batches(1)
            .with_policy(BackpressurePolicy::DropNewest),
        sp.scheme(),
        Arc::new(move |_flow| {
            Box::new(Slow(sp.build().unwrap(), Arc::clone(&probe))) as DynEstimator
        }),
    )
    .expect("valid config");

    // Prime flow 1 past the tier ladder (17 distinct items > the
    // array tier's capacity) so the deliberately slow estimator is
    // materialized before the storm. One flush per item delivers with
    // blocking sends — nothing can drop during priming.
    const PRIME: u64 = 17;
    for i in 0..PRIME {
        engine.ingest(1, &(1_000_000 + i).to_le_bytes());
        engine.flush();
    }
    assert_eq!(engine.stats().total_dropped(), 0);

    const N: u64 = 400;
    for i in 0..N {
        engine.ingest(1, &i.to_le_bytes());
    }
    engine.flush();
    let stats = engine.stats();
    assert!(
        stats.total_dropped() > 0,
        "a 1-batch queue against a 1ms/batch worker must drop: {stats:?}"
    );
    assert!(stats.total_queue_full_events() > 0);
    assert_eq!(
        stats.total_recorded() + stats.total_dropped(),
        PRIME + N,
        "every ingested item is either recorded or counted as dropped"
    );
    assert_eq!(stats.total_recorded(), recorded_probe.load(Ordering::Relaxed));
    // Dropping loses items, so the estimate undercounts — but the flow
    // exists and is queryable.
    let est = engine.query(1).expect("flow 1 exists");
    assert!(est <= (PRIME + N) as f64 * 1.2, "{est}");
}

/// The blocking policy is lossless no matter how tiny the queue is.
#[test]
fn block_policy_is_lossless_under_tiny_queue() {
    let sp = spec();
    let probe = Arc::new(AtomicU64::new(0));
    let probe2 = Arc::clone(&probe);
    let mut engine = ShardedFlowEngine::with_factory(
        EngineConfig::new(sp)
            .with_shards(2)
            .with_batch(4)
            .with_queue_batches(1)
            .with_policy(BackpressurePolicy::Block),
        sp.scheme(),
        Arc::new(move |_flow| {
            Box::new(Slow(sp.build().unwrap(), Arc::clone(&probe2))) as DynEstimator
        }),
    )
    .expect("valid config");

    const N: u64 = 120;
    for i in 0..N {
        engine.ingest(i % 5, &i.to_le_bytes());
    }
    engine.flush();
    let stats = engine.stats();
    assert_eq!(stats.total_dropped(), 0);
    assert_eq!(stats.total_recorded(), N);
    assert_eq!(probe.load(Ordering::Relaxed), N);
    assert!(
        stats.total_queue_full_events() > 0,
        "the tiny queue must have been observed full at least once"
    );
}

/// Stats must expose per-shard balance on a many-flow workload.
#[test]
fn stats_report_shard_balance_and_occupancy() {
    let mut engine = ShardedFlowEngine::new(
        EngineConfig::new(spec()).with_shards(4).with_batch(32),
    )
    .expect("valid config");
    let trace = TraceConfig::tiny(7).build();
    for p in trace.packets() {
        engine.ingest(p.flow as u64, &p.item_bytes());
    }
    engine.flush();
    let stats = engine.stats();
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.total_enqueued(), trace.total_packets());
    assert_eq!(stats.total_flows(), 500);
    // 500 hashed flows over 4 shards: every shard gets traffic.
    for s in &stats.shards {
        assert!(s.flows > 0, "shard {} starved: {stats:?}", s.shard);
        assert!(s.items_enqueued > 0);
    }
    // Full batches dominate a long steady stream.
    let occupied: f64 = stats
        .shards
        .iter()
        .map(|s| s.mean_batch_occupancy)
        .sum::<f64>()
        / 4.0;
    assert!(occupied > 16.0, "mean occupancy {occupied} of batch 32");
    let text = stats.to_string();
    assert!(text.contains("enqueued"), "{text}");
}
