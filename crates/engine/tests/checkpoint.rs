//! Crash-injection tests for the engine's durability subsystem.
//!
//! Each test builds a populated engine, writes checkpoint epochs, then
//! damages the newest epoch the way a crash or disk fault would —
//! truncating a shard file mid-write, flipping manifest bytes, deleting
//! one shard of N — and proves recovery lands on the newest *consistent*
//! epoch with bit-identical per-flow estimates.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use smb_engine::{CheckpointConfig, CheckpointFormat, EngineConfig, ShardedFlowEngine};
use smb_factory::{Algo, AlgoSpec};

fn spec() -> AlgoSpec {
    AlgoSpec::new(Algo::Smb).memory_bits(2048).n_max(1e5).seed(3)
}

/// A fresh, empty scratch directory unique to this test and process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smb-ckpt-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config(dir: &Path) -> CheckpointConfig {
    // No retries: injected faults should fail fast in tests.
    CheckpointConfig::new(dir).with_retries(0).with_keep_epochs(100)
}

fn engine(shards: usize) -> ShardedFlowEngine {
    ShardedFlowEngine::new(EngineConfig::new(spec()).with_shards(shards).with_batch(64))
        .expect("valid config")
}

fn ingest_range(engine: &mut ShardedFlowEngine, flows: u64, lo: u32, hi: u32) {
    for i in lo..hi {
        engine.ingest(u64::from(i) % flows, &i.to_le_bytes());
    }
}

/// `(flow, estimate-bits)` pairs, sorted — the bit-identical comparison
/// currency of every test here.
fn estimate_bits(engine: &ShardedFlowEngine) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = engine
        .all_estimates()
        .into_iter()
        .map(|(flow, est)| (flow, est.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn epoch_dirs(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("epoch-"))
        .collect();
    names.sort();
    names
}

#[test]
fn roundtrip_is_bit_identical_and_resumable() {
    let dir = scratch("roundtrip");
    let cfg = config(&dir);
    let mut original = engine(3);
    ingest_range(&mut original, 20, 0, 30_000);
    let epoch = original.checkpoint_now(&cfg).expect("checkpoint");
    assert_eq!(epoch, 0);
    let want = estimate_bits(&original);

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("restore");
    assert_eq!(report.epoch, 0);
    assert_eq!(report.flows, 20);
    assert_eq!(report.checkpoint_shards, 3);
    assert!(report.skipped.is_empty());
    assert_eq!(estimate_bits(&restored), want, "restore must be bit-identical");

    // The restored engine is live: ingesting the same continuation into
    // both engines keeps them bit-identical — including SMB morphs that
    // the continuation triggers.
    let mut restored = restored;
    ingest_range(&mut original, 20, 30_000, 60_000);
    ingest_range(&mut restored, 20, 30_000, 60_000);
    original.flush();
    restored.flush();
    assert_eq!(
        estimate_bits(&restored),
        estimate_bits(&original),
        "post-restore ingest must track the original"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restore_repartitions_across_shard_counts() {
    let dir = scratch("repartition");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_range(&mut original, 15, 0, 20_000);
    original.checkpoint_now(&cfg).expect("checkpoint");
    let want = estimate_bits(&original);

    // A 2-shard checkpoint restores into 3-shard and 1-shard engines:
    // flows are re-partitioned, estimates unchanged.
    for shards in [3usize, 1] {
        let econfig = EngineConfig::new(spec()).with_shards(shards);
        let (restored, report) =
            ShardedFlowEngine::restore_with(econfig, &dir).expect("restore");
        assert_eq!(report.checkpoint_shards, 2);
        assert_eq!(restored.config().shards, shards);
        assert_eq!(
            estimate_bits(&restored),
            want,
            "{shards}-shard restore of a 2-shard checkpoint"
        );
        // Flow placement obeys the *restored* engine's partition: a
        // later ingest must reach the estimator that was restored.
        let mut restored = restored;
        restored.ingest(7, b"fresh item after restore");
        restored.flush();
        assert!(restored.query(7).is_some());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_shard_file_recovers_to_previous_epoch() {
    let dir = scratch("torn-shard");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_range(&mut original, 10, 0, 10_000);
    original.checkpoint_now(&cfg).expect("epoch 0");
    let want = estimate_bits(&original);
    ingest_range(&mut original, 10, 10_000, 20_000);
    original.checkpoint_now(&cfg).expect("epoch 1");

    // Truncate epoch 1's first shard file mid-body, as a crash between
    // write and fsync would.
    let victim = dir.join("epoch-0000000001").join("shard-0000.bin");
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("degrade to epoch 0");
    assert_eq!(report.epoch, 0);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].0, 1);
    assert!(
        report.skipped[0].1.contains("torn"),
        "reason should mention the tear: {}",
        report.skipped[0].1
    );
    assert_eq!(estimate_bits(&restored), want);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_manifest_recovers_to_previous_epoch() {
    let dir = scratch("bad-manifest");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_range(&mut original, 8, 0, 8_000);
    original.checkpoint_now(&cfg).expect("epoch 0");
    let want = estimate_bits(&original);
    ingest_range(&mut original, 8, 8_000, 16_000);
    original.checkpoint_now(&cfg).expect("epoch 1");

    // Flip one byte inside the manifest body (bit rot / partial
    // overwrite). The manifest's self-CRC must catch it.
    let victim = dir.join("epoch-0000000001").join("MANIFEST.json");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&victim, &bytes).unwrap();

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("degrade to epoch 0");
    assert_eq!(report.epoch, 0);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(estimate_bits(&restored), want);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_shard_file_recovers_to_previous_epoch() {
    let dir = scratch("missing-shard");
    let cfg = config(&dir);
    let mut original = engine(4);
    ingest_range(&mut original, 12, 0, 12_000);
    original.checkpoint_now(&cfg).expect("epoch 0");
    let want = estimate_bits(&original);
    ingest_range(&mut original, 12, 12_000, 24_000);
    original.checkpoint_now(&cfg).expect("epoch 1");

    fs::remove_file(dir.join("epoch-0000000001").join("shard-0002.bin")).unwrap();

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("degrade to epoch 0");
    assert_eq!(report.epoch, 0);
    assert_eq!(report.skipped.len(), 1);
    assert!(
        report.skipped[0].1.contains("missing"),
        "reason should mention the missing shard: {}",
        report.skipped[0].1
    );
    assert_eq!(estimate_bits(&restored), want);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unrecoverable_directories_error_cleanly() {
    // Empty directory: nothing to restore.
    let dir = scratch("empty");
    let err = ShardedFlowEngine::restore(&dir).expect_err("no epochs");
    assert!(
        err.to_string().contains("no consistent checkpoint"),
        "{err}"
    );

    // Every epoch corrupt: the error names each rejected epoch.
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_range(&mut original, 5, 0, 5_000);
    original.checkpoint_now(&cfg).expect("epoch 0");
    fs::remove_file(dir.join("epoch-0000000000").join("MANIFEST.json")).unwrap();
    let err = ShardedFlowEngine::restore(&dir).expect_err("all epochs torn");
    assert!(err.to_string().contains("epoch 0"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restore_with_rejects_mismatched_spec() {
    let dir = scratch("spec-mismatch");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_range(&mut original, 5, 0, 5_000);
    original.checkpoint_now(&cfg).expect("checkpoint");

    let other = AlgoSpec::new(Algo::Hll).memory_bits(2048).n_max(1e5).seed(3);
    let err = ShardedFlowEngine::restore_with(EngineConfig::new(other), &dir)
        .expect_err("HLL engine must not restore SMB state");
    assert!(err.to_string().contains("invalid parameter"), "{err}");

    let reseeded = spec().seed(99);
    assert!(ShardedFlowEngine::restore_with(EngineConfig::new(reseeded), &dir).is_err());
    let _ = fs::remove_dir_all(&dir);
}

/// A deliberate tier mix: 60 singleton flows (small tier), 20 flows
/// of 8 distinct items (array tier), 10 flows of 200 distinct items
/// (materialized estimators). Mirrors the census test in the engine's
/// unit suite.
fn ingest_tier_mix(engine: &mut ShardedFlowEngine) {
    for f in 0..60u64 {
        engine.ingest(f, b"lonely");
    }
    for f in 60..80u64 {
        for i in 0..8u32 {
            engine.ingest(f, &(f as u32 * 1_000 + i).to_le_bytes());
        }
    }
    for f in 80..90u64 {
        for i in 0..200u32 {
            engine.ingest(f, &(f as u32 * 1_000 + i).to_le_bytes());
        }
    }
    engine.flush();
}

fn tier_census(engine: &ShardedFlowEngine) -> (usize, usize, usize) {
    let t = engine.tier_stats();
    (t.small, t.array, t.full)
}

/// Cells checkpoint *at their tier*: small and array flows round-trip
/// as stored hashes, not prematurely materialized estimators, and the
/// restored engine keeps promoting exactly like the original.
#[test]
fn tiered_cells_round_trip_their_tier_through_checkpoint() {
    let dir = scratch("tier-roundtrip");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_tier_mix(&mut original);
    assert_eq!(tier_census(&original), (60, 20, 10));
    original.checkpoint_now(&cfg).expect("checkpoint");
    let want = estimate_bits(&original);

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("restore");
    assert_eq!(report.flows, 90);
    assert_eq!(estimate_bits(&restored), want, "restore must be bit-identical");
    assert_eq!(
        tier_census(&restored),
        (60, 20, 10),
        "restore must land every cell on its checkpointed tier"
    );

    // The restored engine crosses promotion boundaries exactly like
    // the original: push a small flow to array, an array flow to full,
    // and keep feeding a full flow.
    let mut restored = restored;
    for target in [&mut original, &mut restored] {
        for (flow, items) in [(5u64, 4u32), (65, 12), (85, 100)] {
            for i in 0..items {
                target.ingest(flow, &(900_000 + flow as u32 * 1_000 + i).to_le_bytes());
            }
        }
        target.flush();
    }
    assert_eq!(
        estimate_bits(&restored),
        estimate_bits(&original),
        "post-restore ingest across promotion boundaries must track the original"
    );
    assert_eq!(tier_census(&restored), tier_census(&original));
    let t = restored.tier_stats();
    assert!(
        t.promotions_to_array >= 1 && t.promotions_to_full >= 1,
        "continued ingest must promote restored cells: {t:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A mixed-tier checkpoint restores into a different shard count with
/// the tier census and every estimate intact.
#[test]
fn mixed_tier_checkpoint_repartitions_across_shard_counts() {
    let dir = scratch("tier-repartition");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_tier_mix(&mut original);
    original.checkpoint_now(&cfg).expect("checkpoint");
    let want = estimate_bits(&original);

    for shards in [3usize, 1] {
        let econfig = EngineConfig::new(spec()).with_shards(shards);
        let (restored, report) =
            ShardedFlowEngine::restore_with(econfig, &dir).expect("restore");
        assert_eq!(report.checkpoint_shards, 2);
        assert_eq!(report.flows, 90);
        assert_eq!(
            estimate_bits(&restored),
            want,
            "{shards}-shard restore of a 2-shard mixed-tier checkpoint"
        );
        assert_eq!(
            tier_census(&restored),
            (60, 20, 10),
            "re-partitioning must not disturb any cell's tier"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The same engine state checkpointed in both shard formats restores
/// bit-identically from either: per-flow estimate bits, tier census,
/// and continued ingest all agree. This is the cross-format guarantee
/// the codec's "lossless JSON transcoder" design buys.
#[test]
fn v1_and_v2_checkpoints_cross_restore_bit_identically() {
    let dir_v1 = scratch("fmt-v1");
    let dir_v2 = scratch("fmt-v2");
    let mut original = engine(2);
    ingest_tier_mix(&mut original);
    // The engine's epoch counter is shared across target directories,
    // so capture each checkpoint's epoch number.
    let e1 = original
        .checkpoint_now(&config(&dir_v1).with_format(CheckpointFormat::V1Json))
        .expect("v1 checkpoint");
    let e2 = original
        .checkpoint_now(&config(&dir_v2).with_format(CheckpointFormat::V2Binary))
        .expect("v2 checkpoint");
    let want = estimate_bits(&original);

    // The formats write what they claim: v1 JSON shards, v2 binary
    // shards with the flow-block magic, and the v2 epoch is smaller.
    let v1_shard =
        fs::read(dir_v1.join(format!("epoch-{e1:010}/shard-0000.json"))).unwrap();
    let v2_shard =
        fs::read(dir_v2.join(format!("epoch-{e2:010}/shard-0000.bin"))).unwrap();
    assert_eq!(v1_shard.first(), Some(&b'{'));
    assert_eq!(&v2_shard[..4], b"SMB2");
    let epoch_bytes = |dir: &Path, epoch: u64| -> u64 {
        fs::read_dir(dir.join(format!("epoch-{epoch:010}")))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("shard-"))
            .map(|e| e.metadata().unwrap().len())
            .sum()
    };
    assert!(
        epoch_bytes(&dir_v2, e2) * 2 <= epoch_bytes(&dir_v1, e1),
        "v2 shards ({} B) should be at most half the v1 shards ({} B)",
        epoch_bytes(&dir_v2, e2),
        epoch_bytes(&dir_v1, e1)
    );

    let (mut from_v1, r1) = ShardedFlowEngine::restore(&dir_v1).expect("restore v1");
    let (mut from_v2, r2) = ShardedFlowEngine::restore(&dir_v2).expect("restore v2");
    assert_eq!(r1.flows, r2.flows);
    assert_eq!(estimate_bits(&from_v1), want, "v1 restore bit-identical");
    assert_eq!(estimate_bits(&from_v2), want, "v2 restore bit-identical");
    assert_eq!(tier_census(&from_v1), tier_census(&from_v2));

    // Both restored engines keep tracking the original exactly across
    // future promotions and morphs.
    for target in [&mut original, &mut from_v1, &mut from_v2] {
        for f in 0..90u64 {
            for i in 0..40u32 {
                target.ingest(f, &(500_000 + f as u32 * 100 + i).to_le_bytes());
            }
        }
        target.flush();
    }
    assert_eq!(estimate_bits(&from_v1), estimate_bits(&original));
    assert_eq!(estimate_bits(&from_v2), estimate_bits(&original));
    let _ = fs::remove_dir_all(&dir_v1);
    let _ = fs::remove_dir_all(&dir_v2);
}

#[test]
fn background_checkpointer_writes_epochs() {
    let dir = scratch("background");
    let cfg = config(&dir).with_interval(Duration::from_millis(50));
    let mut engine = engine(2);
    engine
        .start_checkpointer(cfg)
        .expect("start checkpointer");
    assert!(
        engine.start_checkpointer(config(&dir)).is_err(),
        "double start must be rejected"
    );
    ingest_range(&mut engine, 6, 0, 6_000);
    engine.flush();
    // Give the 50 ms interval time to fire at least twice.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while epoch_dirs(&dir).len() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    engine.stop_checkpointer();
    let epochs = epoch_dirs(&dir);
    assert!(epochs.len() >= 2, "background thread wrote {epochs:?}");

    let want = estimate_bits(&engine);
    let (restored, _) = ShardedFlowEngine::restore(&dir).expect("restore");
    assert_eq!(
        estimate_bits(&restored),
        want,
        "flushed engine and newest background epoch agree"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retention_prunes_to_keep_epochs() {
    let dir = scratch("retention");
    let cfg = config(&dir).with_keep_epochs(2);
    let mut original = engine(2);
    for round in 0u32..4 {
        ingest_range(&mut original, 5, round * 1000, (round + 1) * 1000);
        original.checkpoint_now(&cfg).expect("checkpoint");
    }
    assert_eq!(
        epoch_dirs(&dir),
        vec!["epoch-0000000002".to_string(), "epoch-0000000003".to_string()],
        "only the newest keep_epochs survive"
    );
    let (_, report) = ShardedFlowEngine::restore(&dir).expect("restore");
    assert_eq!(report.epoch, 3);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn finish_writes_a_final_epoch() {
    let dir = scratch("finish");
    // Interval far beyond the test: the only epoch comes from finish().
    let cfg = config(&dir).with_interval(Duration::from_secs(3600));
    let mut original = engine(2);
    original.start_checkpointer(cfg).expect("start");
    ingest_range(&mut original, 9, 0, 9_000);
    let stats = original.finish();
    assert_eq!(stats.total_recorded(), 9_000);
    let epochs = epoch_dirs(&dir);
    assert_eq!(epochs.len(), 1, "finish writes exactly the final epoch");

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("restore");
    assert_eq!(report.flows, 9);
    restored.query(0).expect("flow 0 restored");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durability_metrics_track_checkpoint_and_restore() {
    let dir = scratch("metrics");
    let cfg = config(&dir);
    let mut original = engine(2);
    ingest_range(&mut original, 7, 0, 7_000);
    original.checkpoint_now(&cfg).expect("epoch 0");
    ingest_range(&mut original, 7, 7_000, 14_000);
    original.checkpoint_now(&cfg).expect("epoch 1");

    let snap = original.metrics_snapshot();
    assert_eq!(
        snap.get("engine_checkpoints_written_total", &[])
            .unwrap()
            .as_counter(),
        Some(2)
    );
    assert_eq!(
        snap.get("engine_checkpoint_epoch", &[]).unwrap().as_gauge(),
        Some(1)
    );
    let duration = snap
        .get("engine_checkpoint_duration_ns", &[])
        .unwrap()
        .as_histogram()
        .unwrap();
    assert_eq!(duration.count, 2);
    let bytes = snap
        .get("engine_checkpoint_bytes", &[])
        .unwrap()
        .as_histogram()
        .unwrap();
    assert!(bytes.sum > 0, "checkpoints wrote bytes");

    // Corrupt the newest epoch, restore, and check the recovery side.
    let victim = dir.join("epoch-0000000001").join("MANIFEST.json");
    let mut manifest = fs::read(&victim).unwrap();
    let mid = manifest.len() / 2;
    manifest[mid] ^= 0x40;
    fs::write(&victim, &manifest).unwrap();

    let (restored, report) = ShardedFlowEngine::restore(&dir).expect("restore");
    let snap = restored.metrics_snapshot();
    assert_eq!(
        snap.get("engine_restore_flows_total", &[])
            .unwrap()
            .as_counter(),
        Some(report.flows)
    );
    assert_eq!(
        snap.get("engine_restore_skipped_epochs_total", &[])
            .unwrap()
            .as_counter(),
        Some(1)
    );
    assert_eq!(
        snap.get("engine_checkpoint_epoch", &[]).unwrap().as_gauge(),
        Some(0),
        "epoch gauge reflects the restored epoch"
    );

    // The next checkpoint from the restored engine does not reuse the
    // corrupted epoch's number.
    let mut restored = restored;
    let next = restored.checkpoint_now(&cfg).expect("checkpoint");
    assert_eq!(next, 2, "epoch numbering continues past the skipped epoch");
    let _ = fs::remove_dir_all(&dir);
}
