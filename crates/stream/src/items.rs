//! Random-string item streams — the paper's §V-A synthetic workload.
//!
//! "The data stream contains randomly generated strings within the
//! length of 128, each acting as a data item. The cardinality of the
//! data stream is the number of distinct strings."
//!
//! A [`StreamSpec`] describes the stream (distinct count, total count
//! including duplicates, item length, seed); [`ItemStream`] generates
//! it lazily so even billion-item streams need no materialisation.
//! Distinct items are indexed `0..cardinality`; the first appearance of
//! every index is guaranteed (so the realised cardinality equals the
//! spec exactly), and the remaining `total − cardinality` slots repeat
//! uniformly random indices.

use smb_devtools::{Rng, Xoshiro256pp};

/// Maximum item length of the paper's workload.
pub const MAX_ITEM_LEN: usize = 128;

/// Description of a synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Number of distinct items (the ground-truth cardinality).
    pub cardinality: u64,
    /// Total items including duplicates (`≥ cardinality`).
    pub total: u64,
    /// Byte length of each generated item (1..=128).
    pub item_len: usize,
    /// RNG seed; same seed → identical stream.
    pub seed: u64,
}

impl StreamSpec {
    /// A duplicate-free stream of `n` distinct items.
    pub fn distinct(n: u64, seed: u64) -> Self {
        StreamSpec {
            cardinality: n,
            total: n,
            item_len: 16,
            seed,
        }
    }

    /// A stream of `n` distinct items with duplication factor `f`
    /// (total ≈ `n·f`).
    pub fn with_duplication(n: u64, f: f64, seed: u64) -> Self {
        StreamSpec {
            cardinality: n,
            total: ((n as f64) * f.max(1.0)) as u64,
            item_len: 16,
            seed,
        }
    }

    /// Builder-style item length override.
    pub fn item_len(mut self, len: usize) -> Self {
        assert!((1..=MAX_ITEM_LEN).contains(&len), "item_len must be 1..=128");
        self.item_len = len;
        self
    }

    /// Iterate the stream.
    pub fn stream(&self) -> ItemStream {
        ItemStream::new(*self)
    }
}

/// Lazy generator over a [`StreamSpec`].
///
/// Yields `total` items into a caller-provided buffer via
/// [`ItemStream::next_into`], or as owned vectors through the
/// `Iterator` impl (the buffer API avoids per-item allocation in the
/// throughput benchmarks).
#[derive(Debug, Clone)]
pub struct ItemStream {
    spec: StreamSpec,
    rng: Xoshiro256pp,
    emitted: u64,
}

impl ItemStream {
    /// Start a stream from its spec.
    pub fn new(spec: StreamSpec) -> Self {
        assert!(spec.total >= spec.cardinality, "total < cardinality");
        assert!(spec.item_len >= 1 && spec.item_len <= MAX_ITEM_LEN);
        ItemStream {
            spec,
            rng: Xoshiro256pp::seed_from_u64(spec.seed),
            emitted: 0,
        }
    }

    /// The spec this stream realises.
    pub fn spec(&self) -> StreamSpec {
        self.spec
    }

    /// Render distinct-item `index` of this stream into `buf`
    /// (deterministic: index `i` always yields the same bytes for the
    /// same spec). Returns the item length.
    ///
    /// Items are derived by seeded mixing, not stored, so a stream of a
    /// million distinct 128-byte items costs no memory.
    pub fn render_item(&self, index: u64, buf: &mut [u8]) -> usize {
        let len = self.spec.item_len;
        let mut x = smb_hash::splitmix::splitmix64_mix(
            index ^ self.spec.seed.rotate_left(17) ^ 0xA5A5_5A5A_DEAD_BEEF,
        );
        for chunk in buf[..len].chunks_mut(8) {
            x = smb_hash::splitmix::splitmix64_mix(x);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        len
    }

    /// Write the next item into `buf` (must hold `item_len` bytes).
    /// Returns `None` when the stream is exhausted, else the item
    /// length.
    pub fn next_into(&mut self, buf: &mut [u8]) -> Option<usize> {
        if self.emitted >= self.spec.total {
            return None;
        }
        // First pass guarantees every distinct index appears; the tail
        // is uniform repeats.
        let index = if self.emitted < self.spec.cardinality {
            self.emitted
        } else {
            self.rng.gen_range_u64(0..self.spec.cardinality)
        };
        self.emitted += 1;
        Some(self.render_item(index, buf))
    }

    /// Items remaining.
    pub fn remaining(&self) -> u64 {
        self.spec.total - self.emitted
    }
}

impl Iterator for ItemStream {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        let mut buf = [0u8; MAX_ITEM_LEN];
        let len = self.next_into(&mut buf)?;
        Some(buf[..len].to_vec())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn realised_cardinality_is_exact() {
        let spec = StreamSpec::with_duplication(1000, 3.0, 42);
        let distinct: HashSet<Vec<u8>> = spec.stream().collect();
        assert_eq!(distinct.len(), 1000);
        assert_eq!(spec.stream().count(), 3000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<Vec<u8>> = StreamSpec::distinct(100, 7).stream().collect();
        let b: Vec<Vec<u8>> = StreamSpec::distinct(100, 7).stream().collect();
        assert_eq!(a, b);
        let c: Vec<Vec<u8>> = StreamSpec::distinct(100, 8).stream().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn item_length_respected() {
        for len in [1usize, 7, 8, 9, 16, 127, 128] {
            let spec = StreamSpec::distinct(10, 1).item_len(len);
            for item in spec.stream() {
                assert_eq!(item.len(), len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "item_len")]
    fn oversized_item_len_panics() {
        StreamSpec::distinct(1, 0).item_len(129);
    }

    #[test]
    fn distinct_items_are_distinct() {
        // The index→bytes derivation must be collision-free in practice
        // for experiment-scale cardinalities.
        let spec = StreamSpec::distinct(200_000, 3).item_len(16);
        let distinct: HashSet<Vec<u8>> = spec.stream().collect();
        assert_eq!(distinct.len(), 200_000);
    }

    #[test]
    fn buffered_api_matches_iterator() {
        let spec = StreamSpec::with_duplication(50, 2.0, 9);
        let owned: Vec<Vec<u8>> = spec.stream().collect();
        let mut stream = spec.stream();
        let mut buf = [0u8; MAX_ITEM_LEN];
        let mut buffered = Vec::new();
        while let Some(len) = stream.next_into(&mut buf) {
            buffered.push(buf[..len].to_vec());
        }
        assert_eq!(owned, buffered);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut s = StreamSpec::distinct(10, 1).stream();
        assert_eq!(s.size_hint(), (10, Some(10)));
        s.next();
        assert_eq!(s.size_hint(), (9, Some(9)));
    }

    #[test]
    fn duplicates_only_after_first_pass() {
        let spec = StreamSpec::with_duplication(100, 2.0, 5);
        let all: Vec<Vec<u8>> = spec.stream().collect();
        let first_pass: HashSet<&Vec<u8>> = all[..100].iter().collect();
        assert_eq!(first_pass.len(), 100, "first pass is duplicate-free");
        for item in &all[100..] {
            assert!(first_pass.contains(item), "tail items repeat the first pass");
        }
    }
}
