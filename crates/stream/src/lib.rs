//! # smb-stream — seeded workloads for the SMB experiments
//!
//! Everything the evaluation section consumes:
//!
//! * [`items`] — the paper's §V-A workload: streams of random strings
//!   (≤ 128 bytes) with a controlled number of distinct items and
//!   duplication pattern;
//! * [`dist`] — heavy-tail samplers (Zipf by rejection-inversion,
//!   truncated Pareto) and the alias method for weighted flow
//!   selection;
//! * [`trace`] — the synthetic CAIDA-like packet trace
//!   ([`trace::SyntheticCaida`]): the documented substitution for the
//!   proprietary CAIDA capture (DESIGN.md §4) — ~400k destination
//!   flows, heavy-tailed per-flow distinct-source counts capped at
//!   ~80k, packets ≫ distinct sources;
//! * [`exact`] — hash-set ground truth ([`exact::ExactCounter`]) and
//!   per-flow ground truth for trace experiments;
//! * [`stats`] — mean/stddev/percentile helpers for the harness.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod exact;
pub mod items;
pub mod stats;
pub mod trace;

pub use exact::ExactCounter;
pub use items::{ItemStream, StreamSpec};
pub use trace::{Packet, SyntheticCaida, TraceConfig};
