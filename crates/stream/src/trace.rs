//! Synthetic CAIDA-like packet trace — the documented substitution for
//! the proprietary CAIDA capture the paper's §V-F uses (DESIGN.md §4).
//!
//! The paper's trace: 10 minutes, ~200M packets, streams keyed by
//! destination address with the source address as data item; ~400k
//! streams; largest per-stream cardinality ~80k; "most data streams are
//! with small cardinalities".
//!
//! [`SyntheticCaida`] reproduces those summary statistics with a seeded
//! generator:
//!
//! * per-flow distinct-source counts are drawn from a truncated
//!   Pareto(α≈1.1) on `[1, max_cardinality]` — the canonical model of
//!   Internet flow-size heavy tails;
//! * per-flow packet counts are the distinct count times a duplication
//!   factor (≥ 1), so packets ≫ distinct sources as in real traffic;
//! * packets interleave across flows via an alias table weighted by
//!   remaining packet budgets, approximating temporal mixing;
//! * each flow's first `cardinality` packets enumerate its distinct
//!   sources, so per-flow ground truth is exact by construction.
//!
//! The estimators only ever observe `(flow key, item bytes)` pairs, so
//! matching the per-flow cardinality distribution and duplicate ratio
//! is sufficient for both the accuracy and the throughput experiments.
//! The default scale is laptop-friendly; `TraceConfig::paper_scale`
//! selects the full 400k-flow configuration.

use smb_devtools::{Rng, Xoshiro256pp};

use crate::dist::{truncated_pareto, AliasTable};

/// One packet: a flow key (destination) and an item (source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow identifier (the paper's destination address).
    pub flow: u32,
    /// Item identifier within the flow (the paper's source address).
    pub item: u32,
}

impl Packet {
    /// The item rendered as bytes for estimator consumption: source
    /// addresses are global entities, so the byte form combines flow
    /// and item the way a real (dst, src) pair would.
    #[inline]
    pub fn item_bytes(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[..4].copy_from_slice(&self.flow.to_le_bytes());
        b[4..].copy_from_slice(&self.item.to_le_bytes());
        b
    }
}

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of flows (paper: ~400k).
    pub flows: usize,
    /// Cap on per-flow cardinality (paper: ~80k).
    pub max_cardinality: u64,
    /// Pareto tail exponent for per-flow cardinalities.
    pub alpha: f64,
    /// Mean duplication factor (packets per distinct source).
    pub duplication: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // Laptop-friendly default: same shape, 1/10 the flows.
        TraceConfig {
            flows: 40_000,
            max_cardinality: 80_000,
            alpha: 1.1,
            duplication: 2.5,
            seed: 0xCA1DA,
        }
    }
}

impl TraceConfig {
    /// The full paper-scale configuration (~400k flows, ~200M packets —
    /// allow minutes of generation time).
    pub fn paper_scale() -> Self {
        TraceConfig {
            flows: 400_000,
            ..Default::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        TraceConfig {
            flows: 500,
            max_cardinality: 2000,
            alpha: 1.1,
            duplication: 2.0,
            seed,
        }
    }

    /// Build the trace generator.
    pub fn build(self) -> SyntheticCaida {
        SyntheticCaida::new(self)
    }
}

/// The synthetic trace generator. Construction samples the per-flow
/// plan (cardinalities, packet budgets); packet emission is lazy.
#[derive(Debug, Clone)]
pub struct SyntheticCaida {
    config: TraceConfig,
    /// Ground-truth distinct-source count per flow.
    cardinalities: Vec<u32>,
    /// Packets each flow will emit.
    packet_budgets: Vec<u64>,
    total_packets: u64,
}

impl SyntheticCaida {
    /// Sample the flow plan for `config`.
    pub fn new(config: TraceConfig) -> Self {
        assert!(config.flows > 0 && config.flows <= u32::MAX as usize);
        assert!(config.max_cardinality >= 1);
        assert!(config.duplication >= 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let mut cardinalities = Vec::with_capacity(config.flows);
        let mut packet_budgets = Vec::with_capacity(config.flows);
        let mut total = 0u64;
        for _ in 0..config.flows {
            let card = truncated_pareto(&mut rng, config.alpha, config.max_cardinality as f64)
                .round()
                .max(1.0) as u32;
            // Duplication factor jitters ±50% around the mean so flows
            // differ in duplicate density too.
            let dup = config.duplication * (0.5 + rng.gen_f64());
            let packets = ((card as f64) * dup.max(1.0)).round() as u64;
            cardinalities.push(card);
            packet_budgets.push(packets.max(card as u64));
            total += packet_budgets.last().expect("just pushed");
        }
        SyntheticCaida {
            config,
            cardinalities,
            packet_budgets,
            total_packets: total,
        }
    }

    /// The configuration this trace was built from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Ground-truth cardinality of `flow`.
    pub fn ground_truth(&self, flow: u32) -> u32 {
        self.cardinalities[flow as usize]
    }

    /// All ground-truth cardinalities, indexed by flow.
    pub fn ground_truths(&self) -> &[u32] {
        &self.cardinalities
    }

    /// Total packets the trace will emit.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// The largest per-flow cardinality in this instance.
    pub fn max_cardinality(&self) -> u32 {
        self.cardinalities.iter().copied().max().unwrap_or(0)
    }

    /// Iterate the packets. Flows interleave (weighted by packet
    /// budget); within a flow, the first `cardinality` packets
    /// enumerate its distinct items, the rest repeat uniformly.
    pub fn packets(&self) -> PacketIter<'_> {
        PacketIter {
            trace: self,
            alias: AliasTable::new(
                &self
                    .packet_budgets
                    .iter()
                    .map(|&b| b as f64)
                    .collect::<Vec<_>>(),
            ),
            rng: Xoshiro256pp::seed_from_u64(self.config.seed ^ 0x9E37_79B9),
            emitted_per_flow: vec![0u64; self.config.flows],
            emitted_total: 0,
        }
    }
}

/// Lazy packet iterator over a [`SyntheticCaida`] plan.
pub struct PacketIter<'a> {
    trace: &'a SyntheticCaida,
    alias: AliasTable,
    rng: Xoshiro256pp,
    emitted_per_flow: Vec<u64>,
    emitted_total: u64,
}

impl Iterator for PacketIter<'_> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.emitted_total >= self.trace.total_packets {
            return None;
        }
        // Sample flows by budget weight; skip exhausted flows (the
        // alias table is static, so resample — budgets are long-lived
        // enough that rejection is rare until the very end, where we
        // fall back to a linear scan).
        let mut flow = None;
        for _ in 0..16 {
            let f = self.alias.sample(&mut self.rng);
            if self.emitted_per_flow[f] < self.trace.packet_budgets[f] {
                flow = Some(f);
                break;
            }
        }
        let flow = flow.unwrap_or_else(|| {
            self.emitted_per_flow
                .iter()
                .zip(self.trace.packet_budgets.iter())
                .position(|(&e, &b)| e < b)
                .expect("emitted_total < total_packets implies a live flow")
        });
        let seq = self.emitted_per_flow[flow];
        let card = self.trace.cardinalities[flow] as u64;
        let item = if seq < card {
            seq as u32
        } else {
            self.rng.gen_range_u64(0..card) as u32
        };
        self.emitted_per_flow[flow] += 1;
        self.emitted_total += 1;
        Some(Packet {
            flow: flow as u32,
            item,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.trace.total_packets - self.emitted_total) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn plan_matches_config_shape() {
        let trace = TraceConfig::tiny(1).build();
        assert_eq!(trace.ground_truths().len(), 500);
        assert!(trace.max_cardinality() <= 2000);
        assert!(trace.total_packets() >= trace.ground_truths().iter().map(|&c| c as u64).sum());
    }

    #[test]
    fn heavy_tail_most_flows_small() {
        let trace = SyntheticCaida::new(TraceConfig {
            flows: 20_000,
            ..TraceConfig::default()
        });
        let small = trace.ground_truths().iter().filter(|&&c| c <= 10).count();
        let frac = small as f64 / 20_000.0;
        // Pareto(1.1): P(card ≤ 10) ≈ 1 − 10^-1.1 ≈ 0.92.
        assert!(frac > 0.85, "small-flow fraction {frac}");
        // But the tail must reach large cardinalities.
        assert!(trace.max_cardinality() > 1000);
    }

    #[test]
    fn packets_realise_exact_ground_truth() {
        let trace = TraceConfig::tiny(2).build();
        let mut seen: HashMap<u32, HashSet<u32>> = HashMap::new();
        let mut count = 0u64;
        for p in trace.packets() {
            seen.entry(p.flow).or_default().insert(p.item);
            count += 1;
        }
        assert_eq!(count, trace.total_packets());
        for (flow, items) in seen {
            assert_eq!(
                items.len() as u32,
                trace.ground_truth(flow),
                "flow {flow}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<Packet> = TraceConfig::tiny(3).build().packets().take(1000).collect();
        let b: Vec<Packet> = TraceConfig::tiny(3).build().packets().take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<Packet> = TraceConfig::tiny(4).build().packets().take(1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn flows_interleave() {
        // Within the first 1000 packets, many distinct flows appear —
        // no flow-at-a-time batching.
        let trace = TraceConfig::tiny(5).build();
        let flows: HashSet<u32> = trace.packets().take(1000).map(|p| p.flow).collect();
        assert!(flows.len() > 100, "only {} flows in first 1000", flows.len());
    }

    #[test]
    fn item_bytes_unique_per_flow_item() {
        let a = Packet { flow: 1, item: 2 }.item_bytes();
        let b = Packet { flow: 2, item: 1 }.item_bytes();
        let c = Packet { flow: 1, item: 2 }.item_bytes();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn packet_count_scales_with_duplication() {
        let lo = SyntheticCaida::new(TraceConfig {
            duplication: 1.0,
            ..TraceConfig::tiny(6)
        });
        let hi = SyntheticCaida::new(TraceConfig {
            duplication: 5.0,
            ..TraceConfig::tiny(6)
        });
        assert!(hi.total_packets() > 2 * lo.total_packets());
    }
}
