//! Exact ground-truth counting for experiment verification.
//!
//! [`ExactCounter`] is the "infinite memory" reference the paper's
//! error metrics compare against. It implements the same
//! [`CardinalityEstimator`] trait so the harness can treat it as just
//! another estimator. To keep memory proportional to distinct *hashes*
//! rather than items, it stores 64-bit item hashes — collision odds at
//! experiment scale (≤ 10⁷ distinct) are ≈ n²/2⁶⁵ < 10⁻⁵, negligible
//! against the sketching errors being measured.

use std::collections::HashSet;

use smb_core::CardinalityEstimator;
use smb_hash::{HashScheme, ItemHash};

/// Exact distinct counter over item hashes.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    seen: HashSet<u64>,
    scheme: HashScheme,
}

impl ExactCounter {
    /// Empty counter with the default hash scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty counter with an explicit scheme (use the same scheme as
    /// the estimators under test so all see identical items).
    pub fn with_scheme(scheme: HashScheme) -> Self {
        ExactCounter {
            seen: HashSet::new(),
            scheme,
        }
    }

    /// Exact distinct count as an integer.
    pub fn count(&self) -> u64 {
        self.seen.len() as u64
    }
}

impl CardinalityEstimator for ExactCounter {
    fn record_hash(&mut self, hash: ItemHash) {
        self.seen.insert(hash.raw());
    }

    fn estimate(&self) -> f64 {
        self.seen.len() as f64
    }

    fn scheme(&self) -> HashScheme {
        self.scheme
    }

    fn memory_bits(&self) -> usize {
        self.seen.len() * 64
    }

    fn clear(&mut self) {
        self.seen.clear();
    }

    fn name(&self) -> &'static str {
        "Exact"
    }

    fn max_estimate(&self) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::StreamSpec;

    #[test]
    fn counts_stream_spec_exactly() {
        let spec = StreamSpec::with_duplication(5000, 4.0, 11);
        let mut exact = ExactCounter::new();
        for item in spec.stream() {
            exact.record(&item);
        }
        assert_eq!(exact.count(), 5000);
    }

    #[test]
    fn clear_and_reuse() {
        let mut exact = ExactCounter::new();
        exact.record(b"a");
        exact.record(b"b");
        assert_eq!(exact.count(), 2);
        exact.clear();
        assert_eq!(exact.count(), 0);
        assert!(!exact.is_saturated());
    }
}
