//! Heavy-tail samplers and weighted selection.
//!
//! * [`Zipf`] — Zipf(α) over `{1..N}` by rejection-inversion (Hörmann &
//!   Derflinger), the standard O(1)-per-sample method; used for flow
//!   popularity in the synthetic trace.
//! * [`truncated_pareto`] — inverse-CDF sampling of a Pareto(α) capped
//!   at `max`; used for per-flow cardinalities (most flows tiny, a few
//!   huge — the CAIDA shape).
//! * [`AliasTable`] — Walker/Vose alias method for O(1) weighted
//!   discrete sampling; used to pick which flow emits each packet.

use smb_devtools::Rng;

/// Zipf distribution over `{1, …, n}` with exponent `alpha > 0`,
/// sampled by rejection-inversion. `P(k) ∝ k^−α`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Zipf over `{1..=n}` with exponent `alpha` (must be positive and
    /// not exactly 1-pathological; any `alpha > 0` works).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "support must be non-empty");
        assert!(alpha > 0.0, "alpha must be positive");
        let nf = n as f64;
        let h = |x: f64| -> f64 {
            // H(x) = ∫ x^-α dx, handled for α = 1.
            if (alpha - 1.0).abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(nf + 0.5);
        let s = 2.0 - Self::h_inv_static(alpha, h(2.5) - 2f64.powf(-alpha));
        Zipf {
            n: nf,
            alpha,
            h_x1,
            h_n,
            s,
        }
    }

    fn h_static(alpha: f64, x: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
        }
    }

    fn h_inv_static(alpha: f64, y: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            y.exp()
        } else {
            (1.0 + y * (1.0 - alpha)).powf(1.0 / (1.0 - alpha))
        }
    }

    /// Draw one sample in `{1..=n}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x1 + rng.gen_f64() * (self.h_n - self.h_x1);
            let x = Self::h_inv_static(self.alpha, u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            let h_k = Self::h_static(self.alpha, k + 0.5);
            let accept = u >= h_k - k.powf(-self.alpha) || k >= self.s;
            if accept {
                return k as u64;
            }
        }
    }
}

/// Sample a Pareto(α, xmin=1) truncated to `[1, max]` by inverse CDF:
/// heavy-tailed sizes with a hard cap.
pub fn truncated_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, max: f64) -> f64 {
    assert!(alpha > 0.0 && max > 1.0);
    let u = rng.gen_f64();
    // CDF of truncated Pareto: F(x) = (1 − x^−α)/(1 − max^−α).
    let tail = 1.0 - max.powf(-alpha);
    (1.0 - u * tail).powf(-1.0 / alpha).min(max)
}

/// Walker/Vose alias table for O(1) sampling of `i` with probability
/// proportional to `weights[i]`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0 && n <= u32::MAX as usize);
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with positive sum"
        );
        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small = Vec::with_capacity(n);
        let mut large = Vec::with_capacity(n);
        let scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(large.pop().expect("checked non-empty"));
            }
        }
        // Leftovers (from either list — floating point can strand
        // entries in `small` at ≈1.0) always accept.
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True iff the table has no categories (cannot occur
    /// post-construction; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range_usize(0..self.prob.len());
        if rng.gen_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_devtools::Xoshiro256pp;

    #[test]
    fn zipf_frequencies_follow_power_law() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let z = Zipf::new(1000, 1.0);
        let n = 200_000;
        let mut counts = vec![0u64; 1001];
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            counts[k as usize] += 1;
        }
        // P(1)/P(2) = 2 for α = 1.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
        // Rank 1 should hold ~1/H_1000 ≈ 13.4% of the mass.
        let frac = counts[1] as f64 / n as f64;
        assert!((frac - 0.134).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn zipf_alpha_two_concentrates_more() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let z1 = Zipf::new(1000, 1.0);
        let z2 = Zipf::new(1000, 2.0);
        let top1 = (0..50_000).filter(|_| z1.sample(&mut rng) == 1).count();
        let top2 = (0..50_000).filter(|_| z2.sample(&mut rng) == 1).count();
        assert!(top2 > top1);
    }

    #[test]
    fn zipf_single_element_support() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let z = Zipf::new(1, 1.5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn pareto_respects_truncation_and_tail() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut over_10 = 0;
        let n = 100_000;
        for _ in 0..n {
            let x = truncated_pareto(&mut rng, 1.0, 80_000.0);
            assert!((1.0..=80_000.0).contains(&x));
            if x > 10.0 {
                over_10 += 1;
            }
        }
        // P(X > 10) ≈ 10^-1 / (1 − 80000^-1) ≈ 0.1.
        let frac = over_10 as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let n = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n as f64 * weights[i] / 10.0;
            assert!(
                ((c as f64) - expect).abs() < 5.0 * expect.sqrt(),
                "cat {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn alias_table_handles_zero_weights() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn alias_table_single_category() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let table = AliasTable::new(&[3.5]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.sample(&mut rng), 0);
    }
}
