//! Small summary-statistics helpers for the experiment harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root mean square.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank]
}

/// Mean absolute error of estimates against a single truth.
pub fn mean_absolute_error(estimates: &[f64], truth: f64) -> f64 {
    mean(&estimates.iter().map(|e| (e - truth).abs()).collect::<Vec<_>>())
}

/// Mean relative error of estimates against a single truth.
pub fn mean_relative_error(estimates: &[f64], truth: f64) -> f64 {
    assert!(truth != 0.0);
    mean_absolute_error(estimates, truth) / truth.abs()
}

/// Relative bias `mean(estimates)/truth − 1`.
pub fn relative_bias(estimates: &[f64], truth: f64) -> f64 {
    assert!(truth != 0.0);
    mean(estimates) / truth - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rms_known() {
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn error_metrics() {
        let ests = [90.0, 110.0];
        assert!((mean_absolute_error(&ests, 100.0) - 10.0).abs() < 1e-12);
        assert!((mean_relative_error(&ests, 100.0) - 0.1).abs() < 1e-12);
        assert!(relative_bias(&ests, 100.0).abs() < 1e-12);
        assert!((relative_bias(&[120.0], 100.0) - 0.2).abs() < 1e-12);
    }
}
