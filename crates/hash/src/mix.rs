//! Integer finalizers ("mixers").
//!
//! A finalizer takes a 64-bit value whose entropy may be concentrated in
//! some bits and spreads it over all 64 bits (full avalanche). Used to
//! strengthen FNV-1a, derive seeds, and hash fixed-width integer keys
//! directly without going through a byte-oriented hash.

/// MurmurHash3's 64-bit finalizer (`fmix64`).
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// Pelle Evensen's *moremur* mixer — stronger avalanche than `fmix64`
/// at the same cost.
#[inline]
pub fn moremur(mut x: u64) -> u64 {
    x ^= x >> 27;
    x = x.wrapping_mul(0x3C79_AC49_2BA7_B653);
    x ^= x >> 33;
    x = x.wrapping_mul(0x1C69_B3F7_4AC4_AE35);
    x ^= x >> 27;
    x
}

/// Hash a pair of 64-bit keys into one 64-bit value (order-sensitive).
/// Handy for composite keys like `(flow, item)`.
#[inline]
pub fn mix_pair(a: u64, b: u64) -> u64 {
    moremur(a ^ moremur(b.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(a << 6).wrapping_add(a >> 2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avalanche_mean(f: fn(u64) -> u64) -> f64 {
        let mut total = 0u32;
        let mut cases = 0u32;
        for base in [0u64, 1, 0xDEAD_BEEF, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let h0 = f(base);
            for bit in 0..64 {
                total += (f(base ^ (1 << bit)) ^ h0).count_ones();
                cases += 1;
            }
        }
        total as f64 / cases as f64
    }

    #[test]
    fn fmix64_avalanches() {
        let mean = avalanche_mean(fmix64);
        assert!((mean - 32.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn moremur_avalanches() {
        let mean = avalanche_mean(moremur);
        assert!((mean - 32.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn mixers_are_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u64..20_000 {
            assert!(seen.insert(fmix64(i)));
            assert!(seen.insert(moremur(i).wrapping_add(1 << 63))); // offset to avoid clashes between the two sets
        }
    }

    #[test]
    fn mix_pair_is_order_sensitive() {
        assert_ne!(mix_pair(1, 2), mix_pair(2, 1));
        assert_eq!(mix_pair(1, 2), mix_pair(1, 2));
    }
}
