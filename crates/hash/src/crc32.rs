//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum behind
//! the engine's durable checkpoint manifests.
//!
//! A checkpoint file that was torn mid-write (crash, full disk) or
//! corrupted at rest must be *detected*, not restored; the manifest
//! stores one CRC-32 per shard file plus one over its own body, and
//! recovery re-computes both before trusting an epoch. CRC-32 is the
//! right tool for this job — it is an error-*detection* code, cheap
//! enough to run over every checkpoint byte on both the write and the
//! read path — and explicitly **not** a cryptographic integrity
//! mechanism (an adversary who can write the checkpoint directory can
//! forge matching checksums).
//!
//! First-party implementation per the workspace's offline dependency
//! policy: the standard reflected table-driven algorithm, validated
//! against the well-known reference vectors (`"123456789"` →
//! `0xCBF43926`).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// final checksum with [`Crc32::finish`].
///
/// ```
/// use smb_hash::crc32::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finish(), 0xCBF43926);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (all-ones preload, per the IEEE definition).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (final xor applied). Does
    /// not consume the state: more bytes may still be folded in and
    /// `finish` called again.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
///
/// ```
/// assert_eq!(smb_hash::crc32::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // The canonical "check" value plus vectors cross-checked
        // against zlib's crc32().
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        for split in [0, 1, 17, 4096, data.len()] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
        // Byte-at-a-time too.
        let mut c = Crc32::new();
        for &b in &data {
            c.update(&[b]);
        }
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut c = Crc32::new();
        c.update(b"checkpoint");
        let first = c.finish();
        assert_eq!(c.finish(), first);
        c.update(b" epoch");
        assert_ne!(c.finish(), first);
    }

    #[test]
    fn single_bit_flips_are_detected() {
        // CRC-32 detects all single-bit errors; flip every bit of a
        // small buffer and check the checksum always moves.
        let data = b"manifest body bytes".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() * 8 {
            let mut tampered = data.clone();
            tampered[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&tampered), clean, "bit {i} flip undetected");
        }
    }
}
