//! # smb-hash — hashing substrate for the SMB workspace
//!
//! Every cardinality estimator in this workspace consumes one 64-bit
//! uniform hash per data item. This crate provides:
//!
//! * portable, dependency-free implementations of well-known hash
//!   functions — [`xxhash::xxh64`], [`murmur3::murmur3_x86_32`],
//!   [`murmur3::murmur3_x64_128`], [`fnv::fnv1a64`] — written from their
//!   published specifications and validated against the reference test
//!   vectors;
//! * [`splitmix::SplitMix64`], a tiny seeded PRNG / integer mixer used for
//!   seed derivation and synthetic workloads;
//! * the *geometric hash* of the paper's Definition 1
//!   ([`geometric::geometric_rank`]): `G(x) = i` with probability
//!   `2^-(i+1)`, realised as the number of trailing zeros of a uniform
//!   hash value;
//! * [`HashScheme`], the seedable item-hasher abstraction that all
//!   estimators share, so that a single hash computation per item can be
//!   split into an index part and a geometric part ([`ItemHash`]);
//! * [`crc32`], the CRC-32 (IEEE) error-detection code guarding the
//!   engine's durable checkpoint files and manifests.
//!
//! No external crates are used at all: the workspace's offline
//! dependency policy (see `DESIGN.md`, "Building offline") forbids
//! registry dependencies, so the functions here are first-party
//! implementations validated against published test vectors
//! (`tests/vectors.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod fnv;
pub mod geometric;
pub mod mix;
pub mod murmur3;
pub mod splitmix;
pub mod xxhash;

pub use geometric::{geometric_rank, geometric_rank_capped};
pub use splitmix::SplitMix64;

/// The hash algorithm backing a [`HashScheme`].
///
/// All algorithms produce 64 bits of output. `Murmur3_128Low` truncates
/// the 128-bit MurmurHash3 variant to its low 64 bits, which is the
/// standard way of deriving a 64-bit hash from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashAlgorithm {
    /// xxHash, 64-bit variant (XXH64). The default: excellent speed and
    /// distribution for short keys.
    #[default]
    Xxh64,
    /// MurmurHash3 x64 128-bit variant, truncated to the low 64 bits.
    Murmur3_128Low,
    /// FNV-1a folded to 64 bits with an extra finalizer (FNV alone has
    /// weak avalanche on the low bits; we post-mix with `mix::moremur`).
    Fnv1aMixed,
}


/// A seeded item-hash scheme shared by all estimators.
///
/// Two estimators constructed with the same scheme hash items
/// identically, which is what makes unions/merges well-defined and what
/// the experiment harness relies on when comparing estimators on one
/// stream.
///
/// ```
/// use smb_hash::HashScheme;
/// let scheme = HashScheme::with_seed(7);
/// let h1 = scheme.hash64(b"alice");
/// let h2 = scheme.hash64(b"alice");
/// assert_eq!(h1, h2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HashScheme {
    algorithm: HashAlgorithm,
    seed: u64,
}


impl HashScheme {
    /// Scheme with the default algorithm (XXH64) and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        HashScheme {
            algorithm: HashAlgorithm::default(),
            seed,
        }
    }

    /// Scheme with an explicit algorithm and seed.
    pub fn new(algorithm: HashAlgorithm, seed: u64) -> Self {
        HashScheme { algorithm, seed }
    }

    /// The seed this scheme was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The algorithm this scheme dispatches to.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algorithm
    }

    /// Hash an item to 64 uniform bits.
    #[inline]
    pub fn hash64(&self, item: &[u8]) -> u64 {
        match self.algorithm {
            HashAlgorithm::Xxh64 => xxhash::xxh64(item, self.seed),
            HashAlgorithm::Murmur3_128Low => murmur3::murmur3_x64_128(item, self.seed as u32).0,
            HashAlgorithm::Fnv1aMixed => mix::moremur(fnv::fnv1a64(item) ^ self.seed),
        }
    }

    /// Hash an item and split the result for estimator consumption.
    #[inline]
    pub fn item_hash(&self, item: &[u8]) -> ItemHash {
        ItemHash::new(self.hash64(item))
    }

    /// Derive an independent scheme (e.g. for a second hash function)
    /// by remixing the seed.
    pub fn derive(&self, stream: u64) -> Self {
        HashScheme {
            algorithm: self.algorithm,
            seed: mix::moremur(self.seed ^ mix::moremur(stream.wrapping_add(0x9E37_79B9_7F4A_7C15))),
        }
    }
}

/// A single 64-bit item hash, pre-split into the two independent parts
/// that the paper's algorithms consume:
///
/// * a *uniform index part* (the low 32 bits) used for bit positions —
///   the paper's `H(d)`;
/// * a *geometric part* (the high 32 bits) whose trailing-zero count
///   realises the geometric hash — the paper's `G(d)`.
///
/// Splitting one 64-bit hash this way is the standard trick (used by
/// HyperLogLog and friends) for getting two effectively independent hash
/// values from one hash computation, which matters for recording
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemHash {
    raw: u64,
}

impl ItemHash {
    /// Wrap a raw 64-bit hash.
    #[inline]
    pub fn new(raw: u64) -> Self {
        ItemHash { raw }
    }

    /// The raw 64-bit hash value.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.raw
    }

    /// Uniform 32-bit index part (`H(d)` in the paper). Reduce onto a
    /// table of `m` slots with [`ItemHash::index`].
    #[inline]
    pub fn uniform32(&self) -> u32 {
        self.raw as u32
    }

    /// Geometric part (`G(d)` in the paper): `i` with probability
    /// `2^-(i+1)`, capped at 32 (probability `2^-32` of hitting the cap,
    /// i.e. all 32 geometric bits are zero).
    #[inline]
    pub fn geometric(&self) -> u32 {
        geometric_rank_capped((self.raw >> 32) as u32)
    }

    /// Map the uniform part onto `[0, m)` without the modulo bias of
    /// `% m` for non-power-of-two `m`, using the widening-multiply
    /// ("Lemire") reduction.
    #[inline]
    pub fn index(&self, m: usize) -> usize {
        debug_assert!(m > 0 && m <= u32::MAX as usize);
        (((self.uniform32() as u64) * (m as u64)) >> 32) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_is_deterministic() {
        let s = HashScheme::with_seed(42);
        assert_eq!(s.hash64(b"hello"), s.hash64(b"hello"));
        assert_ne!(s.hash64(b"hello"), s.hash64(b"hellp"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashScheme::with_seed(1).hash64(b"item");
        let b = HashScheme::with_seed(2).hash64(b"item");
        assert_ne!(a, b);
    }

    #[test]
    fn algorithms_disagree_with_each_other() {
        // Not a correctness requirement per se, but catches accidental
        // dispatch to the same implementation.
        let x = HashScheme::new(HashAlgorithm::Xxh64, 9).hash64(b"item");
        let m = HashScheme::new(HashAlgorithm::Murmur3_128Low, 9).hash64(b"item");
        let f = HashScheme::new(HashAlgorithm::Fnv1aMixed, 9).hash64(b"item");
        assert_ne!(x, m);
        assert_ne!(x, f);
        assert_ne!(m, f);
    }

    #[test]
    fn derive_changes_seed() {
        let s = HashScheme::with_seed(5);
        let d = s.derive(1);
        assert_ne!(s.seed(), d.seed());
        assert_eq!(s.algorithm(), d.algorithm());
        // Derivation must be deterministic.
        assert_eq!(d, s.derive(1));
        assert_ne!(s.derive(1), s.derive(2));
    }

    #[test]
    fn index_is_in_range_and_covers() {
        let s = HashScheme::with_seed(3);
        let m = 1000usize;
        let mut seen = vec![false; m];
        for i in 0u64..200_000 {
            let idx = s.item_hash(&i.to_le_bytes()).index(m);
            assert!(idx < m);
            seen[idx] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "200k hashes should cover all 1000 slots"
        );
    }

    #[test]
    fn geometric_part_distribution() {
        // P(G = i) = 2^-(i+1): over N items, count of G==0 should be
        // about N/2, G==1 about N/4, etc.
        let s = HashScheme::with_seed(11);
        let n = 1 << 18;
        let mut counts = [0usize; 33];
        for i in 0u64..n {
            counts[s.item_hash(&i.to_le_bytes()).geometric() as usize] += 1;
        }
        for (i, &count) in counts.iter().enumerate().take(8) {
            let expected = (n as f64) / 2f64.powi(i as i32 + 1);
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(1.0),
                "rank {i}: expected ~{expected}, got {got}"
            );
        }
    }
}
