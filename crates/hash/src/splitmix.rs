//! SplitMix64 — Sebastiano Vigna's tiny splittable PRNG / integer mixer.
//!
//! Used across the workspace for seed derivation and cheap synthetic
//! item generation. The state transition is a Weyl sequence with
//! increment `0x9E3779B97F4A7C15` (the golden ratio), mixed by a
//! MurmurHash3-style finalizer with David Stafford's "Mix13" constants.

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output function applied to a single value: a strong
/// 64-bit mixer in its own right (bijective).
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 generator.
///
/// ```
/// use smb_hash::SplitMix64;
/// let mut rng = SplitMix64::new(0);
/// assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via widening multiply (slightly
    /// biased for astronomically large `bound`; fine for workloads).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Split off an independent generator (per Vigna's recommendation:
    /// seed the child from the parent's output).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sequence_seed_zero() {
        // First outputs of SplitMix64 with seed 0, from the reference
        // implementation (Vigna).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix_is_bijective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(splitmix64_mix(i)), "collision at {i}");
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval_and_uniform() {
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn split_generators_are_decorrelated() {
        let mut parent = SplitMix64::new(123);
        let mut a = parent.split();
        let mut b = parent.split();
        let mut equal = 0;
        for _ in 0..1000 {
            if a.next_u64() == b.next_u64() {
                equal += 1;
            }
        }
        assert_eq!(equal, 0);
    }
}
