//! MurmurHash3 — the x86 32-bit and x64 128-bit variants.
//!
//! Implemented from Austin Appleby's public-domain reference
//! (`MurmurHash3.cpp`) and validated against its published test vectors.

#[inline]
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    h
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// MurmurHash3_x86_32: 32-bit result.
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xCC9E_2D51;
    const C2: u32 = 0x1B87_3593;

    let mut h1 = seed;
    let nblocks = data.len() / 4;

    for block in 0..nblocks {
        let k = u32::from_le_bytes(data[block * 4..block * 4 + 4].try_into().expect("4 bytes"));
        let mut k1 = k.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xE654_6B64);
    }

    let tail = &data[nblocks * 4..];
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= (tail[2] as u32) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= (tail[1] as u32) << 8;
    }
    if !tail.is_empty() {
        k1 ^= tail[0] as u32;
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// MurmurHash3_x64_128: returns `(low64, high64)` of the 128-bit result.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> (u64, u64) {
    const C1: u64 = 0x87C3_7B91_1142_53D5;
    const C2: u64 = 0x4CF5_AD43_2745_937F;

    let mut h1 = seed as u64;
    let mut h2 = seed as u64;
    let nblocks = data.len() / 16;

    for block in 0..nblocks {
        let base = block * 16;
        let mut k1 = u64::from_le_bytes(data[base..base + 8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(data[base + 8..base + 16].try_into().expect("8 bytes"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52DC_E729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5AB5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    let tlen = tail.len();
    // The reference implementation's fallthrough switch, unrolled.
    if tlen >= 15 {
        k2 ^= (tail[14] as u64) << 48;
    }
    if tlen >= 14 {
        k2 ^= (tail[13] as u64) << 40;
    }
    if tlen >= 13 {
        k2 ^= (tail[12] as u64) << 32;
    }
    if tlen >= 12 {
        k2 ^= (tail[11] as u64) << 24;
    }
    if tlen >= 11 {
        k2 ^= (tail[10] as u64) << 16;
    }
    if tlen >= 10 {
        k2 ^= (tail[9] as u64) << 8;
    }
    if tlen >= 9 {
        k2 ^= tail[8] as u64;
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if tlen >= 8 {
        k1 ^= (tail[7] as u64) << 56;
    }
    if tlen >= 7 {
        k1 ^= (tail[6] as u64) << 48;
    }
    if tlen >= 6 {
        k1 ^= (tail[5] as u64) << 40;
    }
    if tlen >= 5 {
        k1 ^= (tail[4] as u64) << 32;
    }
    if tlen >= 4 {
        k1 ^= (tail[3] as u64) << 24;
    }
    if tlen >= 3 {
        k1 ^= (tail[2] as u64) << 16;
    }
    if tlen >= 2 {
        k1 ^= (tail[1] as u64) << 8;
    }
    if tlen >= 1 {
        k1 ^= tail[0] as u64;
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Canonical vectors for MurmurHash3_x86_32 that appear in the
    // reference repository's discussion and many ports.
    #[test]
    fn x86_32_reference_vectors() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514E_28B7);
        assert_eq!(murmur3_x86_32(b"", 0xFFFF_FFFF), 0x81F1_6F39);
        assert_eq!(murmur3_x86_32(b"\xFF\xFF\xFF\xFF", 0), 0x7629_3B50);
        assert_eq!(murmur3_x86_32(b"!Ce\x87", 0), 0xF55B_516B);
        assert_eq!(murmur3_x86_32(b"!Ce", 0), 0x7E4A_8634);
        assert_eq!(murmur3_x86_32(b"!C", 0), 0xA0F7_B07A);
        assert_eq!(murmur3_x86_32(b"!", 0), 0x72661CF4);
        assert_eq!(murmur3_x86_32(b"\0\0\0\0", 0), 0x2362_F9DE);
        assert_eq!(murmur3_x86_32(b"Hello, world!", 25), 0x00B4_6F38);
    }

    #[test]
    fn x64_128_zero_length() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn x64_128_determinism_and_sensitivity() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(31)).collect();
            let h = murmur3_x64_128(&data, 3);
            assert_eq!(h, murmur3_x64_128(&data, 3), "len={len}");
            if len > 0 {
                let mut v = data.clone();
                v[len - 1] ^= 0x80;
                assert_ne!(murmur3_x64_128(&v, 3), h, "len={len}");
            }
        }
    }

    #[test]
    fn x64_128_low_bits_uniformity() {
        // Coarse uniformity check on the low 64 bits used by HashScheme:
        // bucket into 64 slots and check each holds roughly 1/64.
        let mut counts = [0usize; 64];
        let n = 1 << 16;
        for i in 0u64..n {
            let (lo, _) = murmur3_x64_128(&i.to_le_bytes(), 0);
            counts[(lo % 64) as usize] += 1;
        }
        let expected = (n / 64) as f64;
        for (slot, &c) in counts.iter().enumerate() {
            assert!(
                ((c as f64) - expected).abs() < 6.0 * expected.sqrt(),
                "slot {slot}: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn seed_changes_both_variants() {
        assert_ne!(murmur3_x86_32(b"data", 1), murmur3_x86_32(b"data", 2));
        assert_ne!(murmur3_x64_128(b"data", 1), murmur3_x64_128(b"data", 2));
    }
}
