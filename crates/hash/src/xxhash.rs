//! XXH64 — the 64-bit variant of xxHash.
//!
//! Implemented from the canonical specification
//! (<https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md>)
//! and validated against the reference test vectors in the unit tests
//! below.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32_le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// One-shot XXH64 of `input` with `seed`.
///
/// ```
/// assert_eq!(smb_hash::xxhash::xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
/// ```
pub fn xxh64(input: &[u8], seed: u64) -> u64 {
    let len = input.len();
    let mut h: u64;
    let mut rest = input;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64_le(&rest[0..]));
            v2 = round(v2, read_u64_le(&rest[8..]));
            v3 = round(v3, read_u64_le(&rest[16..]));
            v4 = round(v4, read_u64_le(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64_le(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32_le(rest) as u64).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    avalanche(h)
}

/// Convenience: XXH64 of a `u64` key (little-endian bytes).
#[inline]
pub fn xxh64_u64(key: u64, seed: u64) -> u64 {
    xxh64(&key.to_le_bytes(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the xxHash specification / reference
    // implementation (XXH64).
    #[test]
    fn reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"", 1), 0xD5AF_BA13_36A3_BE4B);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"xxhash", 0), 0x32DD_38952C4BC720);
        assert_eq!(xxh64(b"xxhash", 20141025), 0xB559B98D844E0635);
        assert_eq!(
            xxh64(b"Call me Ishmael. Some years ago--never mind how long precisely-", 0),
            0x02A2E85470D6FD96
        );
    }

    #[test]
    fn all_length_classes_exercise_cleanly() {
        // Lengths crossing every branch: <4, 4..7, 8..31, >=32, and
        // stragglers after the 32-byte loop.
        for len in 0..100usize {
            let data: Vec<u8> = (0..len as u8).collect();
            let h1 = xxh64(&data, 7);
            let h2 = xxh64(&data, 7);
            assert_eq!(h1, h2, "len={len}");
            if len > 0 {
                let mut flipped = data.clone();
                flipped[len / 2] ^= 1;
                assert_ne!(xxh64(&flipped, 7), h1, "len={len}");
            }
        }
    }

    #[test]
    fn avalanche_quality() {
        // Flipping one input bit should flip ~half the output bits.
        let base = xxh64(b"avalanche-test-input", 0);
        let mut total = 0u32;
        let mut cases = 0u32;
        let input = b"avalanche-test-input";
        for byte in 0..input.len() {
            for bit in 0..8 {
                let mut v = input.to_vec();
                v[byte] ^= 1 << bit;
                total += (xxh64(&v, 0) ^ base).count_ones();
                cases += 1;
            }
        }
        let mean = total as f64 / cases as f64;
        assert!(
            (mean - 32.0).abs() < 3.0,
            "mean flipped bits {mean} should be near 32"
        );
    }

    #[test]
    fn u64_helper_matches_bytes() {
        assert_eq!(xxh64_u64(0x0123_4567_89AB_CDEF, 5), xxh64(&0x0123_4567_89AB_CDEFu64.to_le_bytes(), 5));
    }
}
