//! The geometric hash of the paper's Definition 1.
//!
//! > *Function `G(x)` is a geometric hash function of base 2 if `G(x)`
//! > is an integer and `G(x) = i`, `i ≥ 0`, with probability
//! > `2^-(i+1)`.*
//!
//! In practice `G(x) = ρ(H(x))` where `H` is a uniform hash and `ρ(y)`
//! counts the number of leading zeros of `y` *starting from the least
//! significant digit* — i.e. the number of trailing zero bits. For a
//! uniform `y`, the lowest bit is 1 with probability 1/2 (rank 0), the
//! lowest two bits are `10` with probability 1/4 (rank 1), and so on.

/// Geometric rank of a uniform 64-bit value: the number of trailing
/// zero bits. `G(x) = i` with probability `2^-(i+1)` for `i < 64`; the
/// all-zero input maps to 64.
#[inline]
pub fn geometric_rank(y: u64) -> u32 {
    y.trailing_zeros()
}

/// Geometric rank of a uniform 32-bit value, capped at 32 for the
/// all-zero input. Matches the paper's register layouts, which cap
/// `G(d)` at 31 (FM) or 30 (HLL++) — callers clamp further as needed.
#[inline]
pub fn geometric_rank_capped(y: u32) -> u32 {
    y.trailing_zeros().min(32)
}

/// Geometric rank restricted to the low `width` bits of `y` (the
/// HyperLogLog convention, where the remaining bits select a register):
/// the rank of `y & ((1<<width)-1)`, with the all-zero pattern mapping
/// to `width`.
#[inline]
pub fn geometric_rank_width(y: u64, width: u32) -> u32 {
    debug_assert!(width > 0 && width <= 64);
    if width == 64 {
        return y.trailing_zeros();
    }
    let masked = y & ((1u64 << width) - 1);
    masked.trailing_zeros().min(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix::SplitMix64;

    #[test]
    fn rank_of_known_patterns() {
        assert_eq!(geometric_rank(0b1), 0);
        assert_eq!(geometric_rank(0b10), 1);
        assert_eq!(geometric_rank(0b100), 2);
        assert_eq!(geometric_rank(0b1100), 2);
        assert_eq!(geometric_rank(0), 64);
        assert_eq!(geometric_rank_capped(0), 32);
        assert_eq!(geometric_rank_capped(0x8000_0000), 31);
    }

    #[test]
    fn rank_width_masks_correctly() {
        // 0b1_0000: full rank 4, but width-3 rank is 3 (all masked bits zero).
        assert_eq!(geometric_rank_width(0b1_0000, 3), 3);
        assert_eq!(geometric_rank_width(0b1_0000, 5), 4);
        assert_eq!(geometric_rank_width(0, 7), 7);
        assert_eq!(geometric_rank_width(u64::MAX, 64), 0);
        assert_eq!(geometric_rank_width(0, 64), 64);
    }

    #[test]
    fn distribution_matches_definition_1() {
        // P(G = i) = 2^-(i+1). Chi-square-style check over ranks 0..10.
        let mut rng = SplitMix64::new(2024);
        let n = 1 << 20;
        let mut counts = [0u64; 65];
        for _ in 0..n {
            counts[geometric_rank(rng.next_u64()) as usize] += 1;
        }
        for (i, &count) in counts.iter().enumerate().take(10) {
            let expected = (n as f64) * 2f64.powi(-(i as i32) - 1);
            let got = count as f64;
            let sigma = expected.sqrt();
            assert!(
                (got - expected).abs() < 5.0 * sigma,
                "rank {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn expected_value_is_one() {
        // E[G] = sum i * 2^-(i+1) = 1 for the untruncated geometric.
        let mut rng = SplitMix64::new(7);
        let n = 1 << 20;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += geometric_rank(rng.next_u64()) as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
