//! FNV-1a — the Fowler–Noll–Vo hash, 64-bit variant.
//!
//! FNV-1a is byte-at-a-time and has mediocre avalanche, but it is
//! trivially verifiable and useful as a third independent algorithm in
//! cross-checks. [`crate::HashScheme`] post-mixes it with
//! [`crate::mix::moremur`] before use.

/// FNV-1a 64-bit offset basis.
pub const FNV1A64_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One-shot FNV-1a (64-bit) of `data`.
///
/// ```
/// assert_eq!(smb_hash::fnv::fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
/// ```
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV1A64_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV1A64_PRIME);
    }
    h
}

/// Incremental FNV-1a hasher, for hashing composite keys without
/// materialising them.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64 {
            state: FNV1A64_OFFSET,
        }
    }
}

impl Fnv1a64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    #[inline]
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV1A64_PRIME);
        }
        self
    }

    /// Current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Vectors from the official FNV test suite (Landon Curt Noll).
    #[test]
    fn reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"b"), 0xAF63_DF4C_8601_F1A5);
        assert_eq!(fnv1a64(b"c"), 0xAF63_DE4C_8601_EFF2);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
        assert_eq!(fnv1a64(b"chongo was here!\n"), 0x46810940EFF5F915);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
