//! Known-answer tests: every hash primitive in this crate checked
//! against vectors published with the reference implementations.
//!
//! Sources:
//! * MurmurHash3_x86_32 — vectors from the reference repository's
//!   verification discussion (also reproduced on the MurmurHash
//!   Wikipedia page and in the Python `mmh3` test suite).
//! * MurmurHash3_x64_128 — seed-0 vectors from the widely used Go port
//!   (`spaolacci/murmur3`), themselves checked against the C++
//!   reference.
//! * XXH64 — vectors from the xxHash specification and reference
//!   implementation's sanity checks.
//! * FNV-1a 64 — the official test suite (Landon Curt Noll).
//! * SplitMix64 — the output sequence of Sebastiano Vigna's reference
//!   `splitmix64.c`, as reproduced in the xoshiro project's test data.

use smb_hash::fnv::fnv1a64;
use smb_hash::murmur3::{murmur3_x64_128, murmur3_x86_32};
use smb_hash::xxhash::xxh64;
use smb_hash::{HashAlgorithm, HashScheme, SplitMix64};

#[test]
fn murmur3_x86_32_vectors() {
    // (input, seed, expected)
    let vectors: &[(&[u8], u32, u32)] = &[
        (b"", 0, 0x0000_0000),
        (b"", 1, 0x514E_28B7),
        (b"", 0xFFFF_FFFF, 0x81F1_6F39),
        (b"\0\0\0\0", 0, 0x2362_F9DE),
        (b"\xFF\xFF\xFF\xFF", 0, 0x7629_3B50),
        (b"abc", 0, 0xB3DD_93FA),
        (b"test", 0, 0xBA6B_D213),
        (b"test", 0x9747_B28C, 0x704B_81DC),
        (b"Hello, world!", 0, 0xC036_3E43),
        (b"aaaa", 0x9747_B28C, 0x5A97_808A),
        (
            b"The quick brown fox jumps over the lazy dog",
            0x9747_B28C,
            0x2FA8_26CD,
        ),
    ];
    for &(input, seed, expected) in vectors {
        assert_eq!(
            murmur3_x86_32(input, seed),
            expected,
            "input {input:?} seed {seed:#x}"
        );
    }
}

#[test]
fn murmur3_x64_128_vectors() {
    // (input, expected h1, expected h2), all at seed 0.
    let vectors: &[(&[u8], u64, u64)] = &[
        (b"", 0, 0),
        (b"hello", 0xCBD8_A7B3_41BD_9B02, 0x5B1E_906A_48AE_1D19),
        (b"hello, world", 0x342F_AC62_3A5E_BC8E, 0x4CDC_BC07_9642_414D),
        (
            b"19 Jan 2038 at 3:14:07 AM",
            0xB89E_5988_B737_AFFC,
            0x664F_C295_0231_B2CB,
        ),
        (
            b"The quick brown fox jumps over the lazy dog.",
            0xCD99_481F_9EE9_02C9,
            0x695D_A1A3_8987_B6E7,
        ),
    ];
    for &(input, h1, h2) in vectors {
        assert_eq!(murmur3_x64_128(input, 0), (h1, h2), "input {input:?}");
    }
}

#[test]
fn xxh64_vectors() {
    let vectors: &[(&[u8], u64, u64)] = &[
        (b"", 0, 0xEF46_DB37_51D8_E999),
        (b"", 1, 0xD5AF_BA13_36A3_BE4B),
        (b"a", 0, 0xD24E_C4F1_A98C_6E5B),
        (b"abc", 0, 0x44BC_2CF5_AD77_0999),
        (b"xxhash", 0, 0x32DD_3895_2C4B_C720),
        (b"xxhash", 2014_1025, 0xB559_B98D_844E_0635),
        (
            b"Call me Ishmael. Some years ago--never mind how long precisely-",
            0,
            0x02A2_E854_70D6_FD96,
        ),
    ];
    for &(input, seed, expected) in vectors {
        assert_eq!(xxh64(input, seed), expected, "input {input:?} seed {seed}");
    }
}

#[test]
fn fnv1a64_vectors() {
    let vectors: &[(&[u8], u64)] = &[
        (b"", 0xCBF2_9CE4_8422_2325),
        (b"a", 0xAF63_DC4C_8601_EC8C),
        (b"b", 0xAF63_DF4C_8601_F1A5),
        (b"c", 0xAF63_DE4C_8601_EFF2),
        (b"foobar", 0x8594_4171_F739_67E8),
        (b"chongo was here!\n", 0x4681_0940_EFF5_F915),
    ];
    for &(input, expected) in vectors {
        assert_eq!(fnv1a64(input), expected, "input {input:?}");
    }
}

#[test]
fn splitmix64_sequence_vectors() {
    // First outputs of Vigna's splitmix64.c for seed 0.
    let mut sm = SplitMix64::new(0);
    assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    assert_eq!(sm.next_u64(), 0x1B39_896A_51A8_749B);
}

#[test]
fn hash_scheme_dispatches_to_reference_functions() {
    // HashScheme must be a thin dispatcher over the verified
    // primitives — no extra mixing on the item path.
    let item = b"dispatch-check";
    let xxh = HashScheme::new(HashAlgorithm::Xxh64, 42);
    assert_eq!(xxh.hash64(item), xxh64(item, xxh.seed()));
    let m3 = HashScheme::new(HashAlgorithm::Murmur3_128Low, 42);
    assert_eq!(
        m3.hash64(item),
        murmur3_x64_128(item, m3.seed() as u32).0,
        "Murmur3_128Low must expose the first 64-bit half"
    );
}
