//! # smb-sketch — multi-stream frameworks around the estimators
//!
//! The paper's motivating deployments measure *many* streams at once: a
//! router tracking the fan-out of every source (scan detection) or the
//! fan-in of every destination (DDoS detection). This crate provides
//! the structures those deployments need, generic over any
//! [`smb_core::CardinalityEstimator`] — demonstrating the paper's
//! §II-C claim that SMB slots into sketch frameworks as a plug-in:
//!
//! * [`flow_table::FlowTable`] — one estimator per flow key, created on
//!   demand from a factory; items are hashed once and fanned out. In
//!   tiered mode each flow lives in a [`flow_cell::FlowCell`] that
//!   starts as two inline machine words and only materializes a real
//!   estimator when the flow proves it needs one.
//! * [`flow_cell::FlowCell`] — the tiered per-flow cell
//!   (Small → Array → Full) with exact, replay-based promotion.
//! * [`flow_store::FlowStore`] — the unified store seam every per-flow
//!   consumer (engine workers, grouped recording, checkpoint/restore,
//!   CLI) programs against.
//! * [`open_table::OpenTable`] — the open-addressed (robin-hood,
//!   backward-shift-deleting) map that backs [`flow_table::FlowTable`],
//!   keyed by pre-hashed 64-bit flow ids, with a prefetch-pipelined
//!   [`open_table::OpenTable::probe_batch`] that resolves a whole
//!   ingest batch's slots ahead of recording.
//! * [`prefetch`] — the portable software-prefetch hint behind the
//!   probe pipeline (x86_64 + aarch64 intrinsics, no-op elsewhere).
//! * [`array::EstimatorArray`] — a fixed pool of estimators shared by
//!   hashing flows onto `d` cells (the compact-sketch regime where
//!   per-flow allocation is too expensive); queries take the minimum
//!   over the flow's cells, Count-Min style.
//! * [`detector::ThresholdDetector`] — the online per-packet
//!   query loop from the paper's introduction (alarm when a flow's
//!   cardinality estimate crosses a threshold), which is exactly the
//!   workload where SMB's O(1) queries matter.
//! * [`window::JumpingWindow`] / [`window::SummingWindow`] — distinct
//!   counts over a recent time window instead of the whole stream.
//! * [`virtual_registers::VirtualRegisterSketch`] — register sharing
//!   across millions of flows with noise subtraction (the vHLL-style
//!   construction of §II-C).
//! * [`codec`] — the compressed binary codec for per-flow state
//!   (varint + zigzag delta hash lists, bit-packed bitmaps) behind the
//!   v2 checkpoint shard format and the wire `SNAPSHOT` payload; the
//!   byte format is specified in `PROTOCOL.md`.

// `deny`, not `forbid`: the `prefetch` module scopes a single `allow`
// around two side-effect-free prefetch intrinsics (see its module docs
// for the soundness argument); every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod codec;
pub mod detector;
pub mod flow_cell;
pub mod flow_store;
pub mod flow_table;
pub mod open_table;
pub mod prefetch;
pub mod virtual_registers;
pub mod window;

pub use array::EstimatorArray;
pub use detector::ThresholdDetector;
pub use flow_cell::{FlowCell, Tier, ARRAY_CAP, SMALL_CAP};
pub use flow_store::{FlowStore, TierStats};
pub use flow_table::FlowTable;
pub use open_table::{OpenTable, PROBE_MISS};
pub use prefetch::{prefetch_read, PREFETCH_ACTIVE};
pub use virtual_registers::VirtualRegisterSketch;
pub use window::{JumpingWindow, SummingWindow};
