//! Tiered per-flow estimator cells.
//!
//! The paper's SMB is tiny per *stream*, but a table of millions of
//! flows still pays a full estimator (bitmap + S-table + vtable) per
//! flow if every flow materializes one eagerly. Under Zipfian traffic
//! most flows carry 0–2 distinct items and need ~8 bytes, not a
//! bitmap. [`FlowCell`] applies SMB's own adaptivity idea — grow the
//! representation only when the data demands it — to per-flow
//! *storage*:
//!
//! * **Small** — up to [`SMALL_CAP`] raw 64-bit item hashes inline in
//!   the table slot; the whole cell is two machine words. Zero
//!   allocation. (Two *exact* 64-bit hashes plus a tier tag cannot fit
//!   in two words, so the inline tier caps at one hash — which is the
//!   dominant Zipf mass — and the array tier catches the rest.)
//! * **Array** — up to [`ARRAY_CAP`] raw hashes in one small heap
//!   allocation.
//! * **Full** — a real estimator built by the flow's factory.
//!
//! Promotion is **exact**: the stored hashes are replayed through
//! [`CardinalityEstimator::record_hashes`] in arrival order, so a
//! promoted cell's estimator state is bit-identical to one that
//! existed from the first item. The small tiers deduplicate by raw
//! hash — sound because every estimator in the workspace derives all
//! of its behaviour from the 64-bit [`ItemHash`] (equal raws are
//! indistinguishable downstream) and the estimator trait contract
//! makes duplicate records state-neutral. Estimates from unmaterialized
//! tiers replay the stored hashes through a fresh factory-built probe,
//! so *every* observable of a tiered cell is bit-identical to the
//! untiered path at every point in the flow's life.

use smb_core::CardinalityEstimator;
use smb_hash::ItemHash;

/// Raw hashes a [`FlowCell::Small`] cell holds inline. The whole cell
/// is two machine words (tag + length in one, the hash in the other),
/// so exactly one full-width hash fits next to the tier tag.
pub const SMALL_CAP: usize = 1;

/// Raw hashes a [`FlowCell::Array`] cell holds in its single heap
/// block before materializing a real estimator.
pub const ARRAY_CAP: usize = 16;

/// The storage tier a [`FlowCell`] currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Inline small-set tier (0..=[`SMALL_CAP`] hashes, no allocation).
    Small,
    /// Heap array tier (..=[`ARRAY_CAP`] hashes, one small allocation).
    Array,
    /// Materialized estimator.
    Full,
}

impl Tier {
    /// Stable lowercase name, used as the `tier` metric label.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Small => "small",
            Tier::Array => "array",
            Tier::Full => "full",
        }
    }
}

/// The array tier's heap block: arrival-ordered distinct raw hashes.
#[derive(Debug, Clone)]
pub struct ArrayTier {
    len: u8,
    hashes: [u64; ARRAY_CAP],
}

/// One flow's storage: a tiered cell that starts as an inline small
/// set and materializes a real estimator only when the flow proves it
/// needs one. See the module docs for the tier ladder and the
/// bit-identity argument.
#[derive(Debug)]
pub enum FlowCell<E> {
    /// 0..=[`SMALL_CAP`] distinct raw hashes inline — the whole cell
    /// is two machine words.
    Small {
        /// Number of hashes present (0 or 1).
        len: u8,
        /// The hash, valid when `len == 1`.
        hash: u64,
    },
    /// ..=[`ARRAY_CAP`] distinct raw hashes, arrival-ordered, one heap
    /// block.
    Array(Box<ArrayTier>),
    /// A materialized estimator holding the flow's full state. Boxed
    /// so the cell stays pocket-sized for any estimator type — the
    /// table's slot array never pays for inline estimator structs, and
    /// the cell keeps its two-machine-word size (the thin box pointer
    /// shares the niche budget that a fat `DynEstimator` handle would
    /// blow past).
    Full(Box<E>),
}

impl<E> Default for FlowCell<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FlowCell<E> {
    /// An empty cell in the small tier.
    pub fn new() -> Self {
        FlowCell::Small { len: 0, hash: 0 }
    }

    /// Wrap an existing estimator (restore path, eager callers).
    pub fn from_estimator(estimator: E) -> Self {
        FlowCell::Full(Box::new(estimator))
    }

    /// Which tier the cell currently occupies.
    pub fn tier(&self) -> Tier {
        match self {
            FlowCell::Small { .. } => Tier::Small,
            FlowCell::Array(_) => Tier::Array,
            FlowCell::Full(_) => Tier::Full,
        }
    }

    /// Hint the cell's boxed payload (array tier block or estimator)
    /// into cache ahead of a record — the batched record loop's second
    /// lookahead stage, covering the pointer hop the slot-level
    /// prefetch cannot see. No-op for the inline small tier.
    #[inline]
    pub fn prefetch_payload(&self) {
        match self {
            FlowCell::Small { .. } => {}
            FlowCell::Array(arr) => crate::prefetch::prefetch_read(&**arr),
            FlowCell::Full(est) => crate::prefetch::prefetch_read(&**est),
        }
    }

    /// The raw hashes a not-yet-materialized cell holds, in arrival
    /// order; `None` once materialized.
    pub fn pending_hashes(&self) -> Option<&[u64]> {
        match self {
            FlowCell::Small { len, hash } => {
                Some(&std::slice::from_ref(hash)[..*len as usize])
            }
            FlowCell::Array(a) => Some(&a.hashes[..a.len as usize]),
            FlowCell::Full(_) => None,
        }
    }

    /// Borrow the materialized estimator, if any.
    pub fn estimator(&self) -> Option<&E> {
        match self {
            FlowCell::Full(est) => Some(est),
            _ => None,
        }
    }

    /// Mutably borrow the materialized estimator, if any. Does **not**
    /// force materialization — use [`FlowCell::force_estimator`] for
    /// that. Restore paths use this to reattach observers to cells
    /// that came back materialized, without disturbing tiered ones.
    pub fn estimator_mut(&mut self) -> Option<&mut E> {
        match self {
            FlowCell::Full(est) => Some(est),
            _ => None,
        }
    }

    /// Resident bytes of a materialized estimator: its struct plus its
    /// logical state.
    fn full_bytes(est: &E) -> usize
    where
        E: CardinalityEstimator,
    {
        std::mem::size_of::<E>() + est.memory_bits().div_ceil(8)
    }

    /// Heap bytes this cell owns beyond its inline enum footprint:
    /// nothing for the small tier, the array block for the array tier,
    /// and the estimator's logical state (`memory_bits / 8`) once
    /// materialized.
    pub fn memory_bytes(&self) -> usize
    where
        E: CardinalityEstimator,
    {
        match self {
            FlowCell::Small { .. } => 0,
            FlowCell::Array(_) => std::mem::size_of::<ArrayTier>(),
            FlowCell::Full(est) => Self::full_bytes(est),
        }
    }
}

impl<E: CardinalityEstimator> FlowCell<E> {
    /// Record one pre-computed hash, promoting through the tier ladder
    /// as needed. `make` builds the flow's estimator when (and only
    /// when) the cell outgrows [`ARRAY_CAP`]; promotion replays every
    /// stored hash in arrival order, so the materialized state is
    /// bit-identical to an estimator that saw the stream from the
    /// start.
    pub fn record_hash(&mut self, hash: ItemHash, make: impl FnOnce() -> E) {
        let raw = hash.raw();
        match self {
            FlowCell::Small { len, hash: stored } => {
                if *len == 0 {
                    *stored = raw;
                    *len = 1;
                    return;
                }
                if *stored == raw {
                    return;
                }
                // Promote Small → Array, carrying arrival order.
                let mut array = Box::new(ArrayTier {
                    len: 2,
                    hashes: [0; ARRAY_CAP],
                });
                array.hashes[0] = *stored;
                array.hashes[1] = raw;
                *self = FlowCell::Array(array);
            }
            FlowCell::Array(array) => {
                let n = array.len as usize;
                if array.hashes[..n].contains(&raw) {
                    return;
                }
                if n < ARRAY_CAP {
                    array.hashes[n] = raw;
                    array.len = (n + 1) as u8;
                    return;
                }
                // Promote Array → Full: replay stored hashes, then the
                // newcomer, in exact arrival order.
                let mut est = make();
                record_raw_hashes(&mut est, &array.hashes[..n]);
                est.record_hash(hash);
                *self = FlowCell::Full(Box::new(est));
            }
            FlowCell::Full(est) => est.record_hash(hash),
        }
    }

    /// Record a batch of pre-computed hashes. Small tiers absorb the
    /// prefix item by item (promoting as needed); once materialized
    /// the rest of the batch goes through the estimator's batched
    /// path in one call.
    pub fn record_hashes(&mut self, hashes: &[ItemHash], make: impl FnOnce() -> E) {
        if let FlowCell::Full(est) = self {
            est.record_hashes(hashes);
            return;
        }
        let mut make = Some(make);
        for (i, &hash) in hashes.iter().enumerate() {
            self.record_hash(hash, || {
                (make.take().expect("materialize at most once"))()
            });
            if let FlowCell::Full(est) = self {
                est.record_hashes(&hashes[i + 1..]);
                return;
            }
        }
    }

    /// The cell's cardinality estimate — bit-identical to the untiered
    /// path. Materialized cells answer directly; small tiers build a
    /// probe with `make`, replay their stored hashes and read its
    /// estimate (the exact state the untiered path would hold).
    pub fn estimate(&self, make: impl FnOnce() -> E) -> f64 {
        match self {
            FlowCell::Full(est) => est.estimate(),
            _ => {
                let pending = self.pending_hashes().expect("unmaterialized cell");
                let mut probe = make();
                record_raw_hashes(&mut probe, pending);
                probe.estimate()
            }
        }
    }

    /// Force-materialize and mutably borrow the estimator, replaying
    /// any stored hashes through `make`'s product first. Supports the
    /// deprecated `estimator_mut` access path; tier-aware callers
    /// should record through the cell instead and leave tiny flows
    /// unmaterialized.
    pub fn force_estimator(&mut self, make: impl FnOnce() -> E) -> &mut E {
        if let Some(pending) = self.pending_hashes() {
            let mut est = make();
            // The borrow of `pending` ends before the write below; copy
            // into a stack buffer to keep the borrow checker honest.
            let mut buf = [0u64; ARRAY_CAP];
            let n = pending.len();
            buf[..n].copy_from_slice(pending);
            record_raw_hashes(&mut est, &buf[..n]);
            *self = FlowCell::Full(Box::new(est));
        }
        match self {
            FlowCell::Full(est) => est,
            _ => unreachable!("cell was just materialized"),
        }
    }

    /// Consume the cell into a materialized estimator (drain path).
    pub fn into_estimator(mut self, make: impl FnOnce() -> E) -> E {
        self.force_estimator(make);
        match self {
            FlowCell::Full(est) => *est,
            _ => unreachable!("cell was just materialized"),
        }
    }

    /// Logical memory in bits: the estimator's own accounting once
    /// materialized, 64 bits per stored hash before.
    pub fn memory_bits(&self) -> usize {
        match self {
            FlowCell::Full(est) => est.memory_bits(),
            other => other
                .pending_hashes()
                .map_or(0, |pending| 64 * pending.len()),
        }
    }
}

/// Replay raw hash words through an estimator's batched path, exactly
/// as they arrived.
fn record_raw_hashes<E: CardinalityEstimator>(est: &mut E, raws: &[u64]) {
    let mut buf = [ItemHash::new(0); ARRAY_CAP];
    let n = raws.len();
    debug_assert!(n <= ARRAY_CAP);
    for (slot, &raw) in buf.iter_mut().zip(raws) {
        *slot = ItemHash::new(raw);
    }
    est.record_hashes(&buf[..n]);
}

#[cfg(feature = "snapshot")]
mod snapshot_impl {
    use super::*;
    use smb_devtools::{Json, JsonError};

    impl<E: CardinalityEstimator> FlowCell<E> {
        /// Serialize the cell's tier. Small and array tiers become a
        /// `{"tier": ..., "hashes": [...]}` wrapper; a materialized
        /// cell serializes as the estimator's own state, unwrapped —
        /// byte-identical to the pre-tier checkpoint format, so old
        /// readers still understand fully-materialized checkpoints and
        /// old checkpoints restore as all-full cells. Returns `None`
        /// when a materialized estimator does not support snapshots.
        pub fn snapshot_state(&self) -> Option<Json> {
            match self {
                FlowCell::Full(est) => est.snapshot_state(),
                other => {
                    let pending = other.pending_hashes().expect("unmaterialized cell");
                    Some(Json::Obj(vec![
                        (
                            "tier".into(),
                            Json::Str(other.tier().name().into()),
                        ),
                        (
                            "hashes".into(),
                            Json::Arr(
                                pending.iter().map(|&h| Json::Int(h as i128)).collect(),
                            ),
                        ),
                    ]))
                }
            }
        }
    }

    impl<E> FlowCell<E> {
        /// Rebuild a small or array tier cell from its tagged state.
        /// Returns `Ok(None)` when `state` carries no `tier` field —
        /// i.e. it is a plain estimator state (old checkpoints, full
        /// cells) the caller must route through the estimator restore
        /// path instead.
        ///
        /// # Errors
        /// [`JsonError`] when the tier tag is unknown or the stored
        /// hashes violate the tier's invariants (over capacity, or
        /// duplicated — cells hold *distinct* hashes by construction).
        pub fn from_tier_json(state: &Json) -> Result<Option<Self>, JsonError> {
            let Ok(tier) = state.field("tier") else {
                return Ok(None);
            };
            let tier = tier.as_str()?;
            let cap = match tier {
                "small" => SMALL_CAP,
                "array" => ARRAY_CAP,
                other => {
                    return Err(JsonError::new(format!("unknown cell tier `{other}`")))
                }
            };
            let Json::Arr(raw) = state.field("hashes")? else {
                return Err(JsonError::new("cell hashes field is not an array"));
            };
            if raw.len() > cap {
                return Err(JsonError::new(format!(
                    "{tier} tier holds {} hashes, capacity {cap}",
                    raw.len()
                )));
            }
            let mut hashes = [0u64; ARRAY_CAP];
            for (slot, v) in hashes.iter_mut().zip(raw) {
                *slot = v.as_u64()?;
            }
            let n = raw.len();
            for i in 1..n {
                if hashes[..i].contains(&hashes[i]) {
                    return Err(JsonError::new(format!(
                        "{tier} tier holds duplicate hash {:#x}",
                        hashes[i]
                    )));
                }
            }
            Ok(Some(match tier {
                "small" => FlowCell::Small {
                    len: n as u8,
                    hash: hashes[0],
                },
                _ => FlowCell::Array(Box::new(ArrayTier {
                    len: n as u8,
                    hashes,
                })),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn make() -> Smb {
        Smb::with_scheme(2048, 128, HashScheme::with_seed(7)).unwrap()
    }

    fn hash(i: u64) -> ItemHash {
        HashScheme::with_seed(7).item_hash(&i.to_le_bytes())
    }

    #[test]
    fn tier_ladder_promotes_at_exact_boundaries() {
        let mut cell: FlowCell<Smb> = FlowCell::new();
        assert_eq!(cell.tier(), Tier::Small);
        cell.record_hash(hash(0), make);
        assert_eq!(cell.tier(), Tier::Small, "one hash stays inline");
        cell.record_hash(hash(100), make);
        assert_eq!(cell.tier(), Tier::Array, "second distinct hash spills");
        for i in 0..(ARRAY_CAP - 3) as u64 {
            cell.record_hash(hash(200 + i), make);
            assert_eq!(cell.tier(), Tier::Array, "item {i}");
        }
        cell.record_hash(hash(998), make);
        assert_eq!(cell.tier(), Tier::Array, "array holds exactly ARRAY_CAP");
        assert_eq!(cell.pending_hashes().unwrap().len(), ARRAY_CAP);
        cell.record_hash(hash(999), make);
        assert_eq!(cell.tier(), Tier::Full);
    }

    #[test]
    fn duplicates_never_promote() {
        let mut cell: FlowCell<Smb> = FlowCell::new();
        for _ in 0..100 {
            cell.record_hash(hash(1), make);
        }
        assert_eq!(cell.tier(), Tier::Small);
        assert_eq!(cell.pending_hashes().unwrap().len(), 1);
        // Same in the array tier: repeats of resident hashes are
        // absorbed without growth.
        cell.record_hash(hash(2), make);
        assert_eq!(cell.tier(), Tier::Array);
        for _ in 0..100 {
            cell.record_hash(hash(1), make);
            cell.record_hash(hash(2), make);
        }
        assert_eq!(cell.pending_hashes().unwrap().len(), 2);
    }

    #[test]
    fn estimates_bit_identical_to_untiered_at_every_step() {
        let mut cell: FlowCell<Smb> = FlowCell::new();
        let mut reference = make();
        for i in 0..4 * ARRAY_CAP as u64 {
            // Every third item repeats, exercising dedup.
            let h = hash(i / 3 * 2);
            cell.record_hash(h, make);
            reference.record_hash(h);
            assert_eq!(cell.estimate(make), reference.estimate(), "item {i}");
        }
        assert_eq!(cell.tier(), Tier::Full);
    }

    #[test]
    fn batched_recording_matches_per_item_across_promotions() {
        let hashes: Vec<ItemHash> = (0..40u64).map(|i| hash(i % 25)).collect();
        let mut batched: FlowCell<Smb> = FlowCell::new();
        batched.record_hashes(&hashes, make);
        let mut single: FlowCell<Smb> = FlowCell::new();
        for &h in &hashes {
            single.record_hash(h, make);
        }
        let mut reference = make();
        reference.record_hashes(&hashes);
        assert_eq!(batched.estimate(make), reference.estimate());
        assert_eq!(single.estimate(make), reference.estimate());
    }

    #[test]
    fn force_estimator_replays_exactly() {
        let mut cell: FlowCell<Smb> = FlowCell::new();
        let mut reference = make();
        for i in 0..5u64 {
            cell.record_hash(hash(i), make);
            reference.record_hash(hash(i));
        }
        assert_eq!(cell.tier(), Tier::Array);
        let est = cell.force_estimator(make);
        assert_eq!(est.estimate(), reference.estimate());
        assert_eq!(cell.tier(), Tier::Full);
    }

    #[test]
    fn memory_accounting_tracks_tiers() {
        let mut cell: FlowCell<Smb> = FlowCell::new();
        assert_eq!(cell.memory_bytes(), 0);
        assert_eq!(cell.memory_bits(), 0);
        cell.record_hash(hash(1), make);
        assert_eq!(cell.memory_bits(), 64);
        assert_eq!(cell.memory_bytes(), 0, "inline tier owns no heap");
        cell.record_hash(hash(2), make);
        assert_eq!(cell.memory_bytes(), std::mem::size_of::<ArrayTier>());
        assert_eq!(cell.memory_bits(), 128);
        for i in 0..ARRAY_CAP as u64 {
            cell.record_hash(hash(1000 + i), make);
        }
        assert_eq!(cell.tier(), Tier::Full);
        assert_eq!(cell.memory_bytes(), std::mem::size_of::<Smb>() + 2048 / 8);
        assert_eq!(cell.memory_bits(), 2048);
    }

    #[test]
    fn cell_is_exactly_two_machine_words() {
        // The whole point of the inline tier: every cell — over any
        // estimator type, boxed or not — is two machine words, so a
        // million tiny flows cost two words each plus the slot key.
        // This is load-bearing for the bytes-per-flow bench gate.
        assert_eq!(
            std::mem::size_of::<FlowCell<Box<dyn CardinalityEstimator>>>(),
            2 * std::mem::size_of::<u64>(),
        );
        assert_eq!(std::mem::size_of::<FlowCell<Smb>>(), 16);
        // And the niche survives Option-wrapping (the table's slots).
        assert_eq!(std::mem::size_of::<Option<FlowCell<Smb>>>(), 16);
    }
}
