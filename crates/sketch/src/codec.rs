//! Compressed binary codec for per-flow estimator state.
//!
//! Checkpoint shards and wire snapshots originally shipped the JSON
//! produced by [`FlowCell::snapshot_state`] verbatim. That format is
//! diffable but fat: a 4096-bit SMB bitmap serializes as a list of
//! decimal bit indices, and even an empty tier wrapper costs ~30 bytes
//! of punctuation. HyperLogLogLog (Karppa & Pagh, KDD '22) and the
//! Huffman-Bucket Sketch both show that sketch register state
//! compresses several-fold losslessly; this module applies the same
//! idea to SMB state with two techniques:
//!
//! * **varint + zigzag delta lists** for hash/key sequences — nearby
//!   values collapse to 1–2 bytes each, and the encoding preserves
//!   *arrival order*, which the tier-promotion replay depends on for
//!   bit-identical restores.
//! * **bit-packed bitmaps** for materialized [`Smb`]/Bitmap state —
//!   `ceil(m/64)` little-endian words instead of a decimal index list,
//!   an 8× (dense) to 30× (sparse-decimal) size cut.
//!
//! The codec is a *lossless transcoder of the canonical v1 JSON
//! state*: [`decode_cell_state`] rebuilds exactly the [`Json`] value
//! that [`encode_cell_state`] consumed, so every restore path
//! (estimator `from_json`, tier rebuild, invariant validation) is
//! shared with the JSON format and bit-identity holds by construction.
//! States the binary tags cannot express round-trip through an
//! escape-hatch tag carrying literal JSON text, so *any* estimator's
//! state survives, just without the compression win.
//!
//! Every decoder is hardened: hostile or truncated input returns
//! [`CodecError`], never panics, and every length field is validated
//! against the actual remaining input *before* any allocation.
//!
//! The byte-level format is specified normatively in `PROTOCOL.md` §5;
//! the tag registry and worked hex examples there describe exactly the
//! bytes this module emits.
//!
//! [`FlowCell::snapshot_state`]: crate::flow_cell::FlowCell::snapshot_state
//! [`Smb`]: smb_core::Smb

use std::fmt;

use smb_devtools::Json;

use crate::flow_cell::{ARRAY_CAP, SMALL_CAP};

/// Cell-state tag: literal JSON text fallback (any estimator state).
pub const TAG_JSON: u8 = 0x00;
/// Cell-state tag: small-tier hash list (≤ [`SMALL_CAP`] hashes).
pub const TAG_SMALL: u8 = 0x01;
/// Cell-state tag: array-tier hash list (≤ [`ARRAY_CAP`] hashes).
pub const TAG_ARRAY: u8 = 0x02;
/// Cell-state tag: bit-packed SMB estimator state.
pub const TAG_SMB: u8 = 0x03;
/// Cell-state tag: bit-packed plain-bitmap estimator state.
pub const TAG_BITMAP: u8 = 0x04;

/// Magic prefix of a flow block (and of a v2 checkpoint shard file).
pub const FLOW_BLOCK_MAGIC: [u8; 4] = *b"SMB2";

/// Error from decoding (or strict encoding of) codec input.
///
/// Carries a human-readable message; hostile input always surfaces
/// here — the codec never panics on malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    msg: String,
}

impl CodecError {
    fn new(msg: impl Into<String>) -> Self {
        CodecError { msg: msg.into() }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.msg)
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Primitives: varint + zigzag
// ---------------------------------------------------------------------

/// Append `value` as an LEB128 varint: little-endian base-128 groups,
/// high bit set on every byte except the last. A `u64` takes 1–10
/// bytes; values below 128 take exactly one.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos` past it. The slice-level entry point for consumers outside
/// this module (the wire protocol's payload decoders); truncated or
/// over-long input errors, never panics.
///
/// ```
/// use smb_sketch::codec::{read_varint, write_varint};
///
/// let mut buf = Vec::new();
/// write_varint(&mut buf, 300);
/// assert_eq!(buf, [0xAC, 0x02]);
/// let mut pos = 0;
/// assert_eq!(read_varint(&buf, &mut pos).unwrap(), 300);
/// assert_eq!(pos, 2);
/// assert!(read_varint(&buf, &mut pos).is_err(), "input exhausted");
/// ```
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut r = Reader {
        bytes,
        pos: (*pos).min(bytes.len()),
    };
    let value = r.varint()?;
    *pos = r.pos;
    Ok(value)
}

/// Map a signed delta onto an unsigned varint-friendly value:
/// `0 → 0, -1 → 1, 1 → 2, -2 → 3, …` — small magnitudes of either
/// sign stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// A bounds-checked cursor over encoded bytes. All reads advance the
/// cursor and error (never panic) on truncation.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| CodecError::new("truncated input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::new(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            let group = (byte & 0x7F) as u64;
            // The 10th byte (shift 63) may only carry the final bit.
            if shift == 63 && group > 1 {
                return Err(CodecError::new("varint overflows u64"));
            }
            value |= group << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::new("varint longer than 10 bytes"))
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::new(format!(
                "{} trailing bytes after value",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Hash lists (small / array tiers)
// ---------------------------------------------------------------------

/// Append an arrival-ordered hash list: varint count, first hash as a
/// raw varint, then each subsequent hash as
/// `varint(zigzag(hash[i] − hash[i−1]))` (wrapping 64-bit difference).
/// Order is preserved exactly — tier promotion replays hashes in
/// arrival order, so the codec must not sort.
pub fn write_hash_list(out: &mut Vec<u8>, hashes: &[u64]) {
    write_varint(out, hashes.len() as u64);
    let mut prev = 0u64;
    for (i, &h) in hashes.iter().enumerate() {
        if i == 0 {
            write_varint(out, h);
        } else {
            write_varint(out, zigzag_encode(h.wrapping_sub(prev) as i64));
        }
        prev = h;
    }
}

fn read_hash_list(r: &mut Reader<'_>, cap: usize) -> Result<Vec<u64>, CodecError> {
    let count = r.varint()?;
    if count as usize > cap {
        return Err(CodecError::new(format!(
            "hash list of {count} exceeds tier capacity {cap}"
        )));
    }
    let count = count as usize;
    let mut hashes = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let v = r.varint()?;
        let h = if i == 0 {
            v
        } else {
            prev.wrapping_add(zigzag_decode(v) as u64)
        };
        // Cells hold *distinct* hashes by construction; rejecting
        // duplicates here keeps hostile input from fabricating states
        // the restore path would refuse anyway.
        if hashes.contains(&h) {
            return Err(CodecError::new(format!("duplicate hash {h:#x} in list")));
        }
        hashes.push(h);
        prev = h;
    }
    Ok(hashes)
}

// ---------------------------------------------------------------------
// Packed bitmaps
// ---------------------------------------------------------------------

/// Pack ascending bit indices into `ceil(len/64)` little-endian words
/// (bit `i` lives in word `i / 64`, bit position `i % 64`), appended
/// as `8 × words` bytes.
fn write_packed_bits(out: &mut Vec<u8>, len: usize, ones: &[usize]) {
    let words = len.div_ceil(64);
    let mut packed = vec![0u64; words];
    for &idx in ones {
        packed[idx / 64] |= 1u64 << (idx % 64);
    }
    for word in packed {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Read `ceil(len/64)` packed words back into an ascending ones list.
/// The byte count is validated against the remaining input before any
/// allocation, so a hostile `len` cannot force a huge reservation.
fn read_packed_bits(r: &mut Reader<'_>, len: usize) -> Result<Vec<usize>, CodecError> {
    let words = len.div_ceil(64);
    let bytes = r.take(words * 8)?;
    let mut ones = Vec::new();
    for (w, chunk) in bytes.chunks_exact(8).enumerate() {
        let mut word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        // Bits at or above `len` in the final word are padding and must
        // be zero — anything else is a forgery the bit-identity
        // guarantee cannot absorb.
        if (w + 1) * 64 > len {
            let valid = len - w * 64;
            if valid < 64 && word >> valid != 0 {
                return Err(CodecError::new(format!(
                    "padding bits set beyond bitmap length {len}"
                )));
            }
        }
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            ones.push(w * 64 + bit);
            word &= word - 1;
        }
    }
    Ok(ones)
}

// ---------------------------------------------------------------------
// Hash schemes
// ---------------------------------------------------------------------

fn algorithm_code(name: &str) -> Option<u8> {
    match name {
        "xxh64" => Some(0),
        "murmur3_128_low" => Some(1),
        "fnv1a_mixed" => Some(2),
        _ => None,
    }
}

fn algorithm_name(code: u8) -> Result<&'static str, CodecError> {
    match code {
        0 => Ok("xxh64"),
        1 => Ok("murmur3_128_low"),
        2 => Ok("fnv1a_mixed"),
        other => Err(CodecError::new(format!("unknown hash algorithm code {other}"))),
    }
}

/// Strict read of a `{"algorithm", "seed"}` scheme object. `None`
/// means "shape mismatch — fall back to the JSON tag", not an error.
fn scheme_parts(scheme: &Json) -> Option<(u8, u64)> {
    let Json::Obj(fields) = scheme else {
        return None;
    };
    match fields.as_slice() {
        [(k_a, Json::Str(alg)), (k_s, Json::Int(seed))]
            if k_a == "algorithm" && k_s == "seed" =>
        {
            let code = algorithm_code(alg)?;
            let seed = u64::try_from(*seed).ok()?;
            Some((code, seed))
        }
        _ => None,
    }
}

fn scheme_json(code: u8, seed: u64) -> Result<Json, CodecError> {
    Ok(Json::Obj(vec![
        ("algorithm".into(), Json::Str(algorithm_name(code)?.into())),
        ("seed".into(), Json::Int(seed as i128)),
    ]))
}

/// Strict read of a `{"len", "ones"}` bits object with ascending
/// in-range indices (the canonical `BitVec::to_json` output). `None`
/// on any mismatch.
fn bits_parts(bits: &Json) -> Option<(usize, Vec<usize>)> {
    let Json::Obj(fields) = bits else {
        return None;
    };
    let [(k_l, Json::Int(len)), (k_o, Json::Arr(ones))] = fields.as_slice() else {
        return None;
    };
    if k_l != "len" || k_o != "ones" {
        return None;
    }
    let len = usize::try_from(*len).ok()?;
    let mut indices = Vec::with_capacity(ones.len());
    let mut prev: Option<usize> = None;
    for one in ones {
        let Json::Int(idx) = one else { return None };
        let idx = usize::try_from(*idx).ok()?;
        if idx >= len || prev.is_some_and(|p| idx <= p) {
            return None;
        }
        indices.push(idx);
        prev = Some(idx);
    }
    Some((len, indices))
}

fn bits_json(len: usize, ones: &[usize]) -> Json {
    Json::Obj(vec![
        ("len".into(), Json::Int(len as i128)),
        (
            "ones".into(),
            Json::Arr(ones.iter().map(|&i| Json::Int(i as i128)).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------
// Cell states
// ---------------------------------------------------------------------

/// Strict read of a `{"tier", "hashes"}` wrapper with distinct u64
/// hashes within the tier's capacity. `None` on any mismatch.
fn tier_parts(state: &Json) -> Option<(u8, Vec<u64>)> {
    let Json::Obj(fields) = state else {
        return None;
    };
    let [(k_t, Json::Str(tier)), (k_h, Json::Arr(raw))] = fields.as_slice() else {
        return None;
    };
    if k_t != "tier" || k_h != "hashes" {
        return None;
    }
    let (tag, cap) = match tier.as_str() {
        "small" => (TAG_SMALL, SMALL_CAP),
        "array" => (TAG_ARRAY, ARRAY_CAP),
        _ => return None,
    };
    if raw.len() > cap {
        return None;
    }
    let mut hashes = Vec::with_capacity(raw.len());
    for v in raw {
        let Json::Int(h) = v else { return None };
        let h = u64::try_from(*h).ok()?;
        if hashes.contains(&h) {
            return None;
        }
        hashes.push(h);
    }
    Some((tag, hashes))
}

/// Strict read of a canonical SMB state object
/// (`scheme, m, t, r, v, bits` in exactly that order, bitmap length
/// equal to `m`). `None` on any mismatch.
fn smb_parts(state: &Json) -> Option<(u8, u64, u64, u64, u64, u64, Vec<usize>)> {
    let Json::Obj(fields) = state else {
        return None;
    };
    let [(k_s, scheme), (k_m, Json::Int(m)), (k_t, Json::Int(t)), (k_r, Json::Int(r)), (k_v, Json::Int(v)), (k_b, bits)] =
        fields.as_slice()
    else {
        return None;
    };
    if k_s != "scheme" || k_m != "m" || k_t != "t" || k_r != "r" || k_v != "v" || k_b != "bits" {
        return None;
    }
    let (alg, seed) = scheme_parts(scheme)?;
    let m = u64::try_from(*m).ok()?;
    let t = u64::try_from(*t).ok()?;
    let r = u64::try_from(*r).ok()?;
    let v = u64::try_from(*v).ok()?;
    let (len, ones) = bits_parts(bits)?;
    if len as u64 != m {
        return None;
    }
    Some((alg, seed, m, t, r, v, ones))
}

/// Strict read of a canonical plain-bitmap state (`scheme, bits`).
fn bitmap_parts(state: &Json) -> Option<(u8, u64, usize, Vec<usize>)> {
    let Json::Obj(fields) = state else {
        return None;
    };
    let [(k_s, scheme), (k_b, bits)] = fields.as_slice() else {
        return None;
    };
    if k_s != "scheme" || k_b != "bits" {
        return None;
    }
    let (alg, seed) = scheme_parts(scheme)?;
    let (len, ones) = bits_parts(bits)?;
    Some((alg, seed, len, ones))
}

/// Encode one per-flow cell state (the [`Json`] produced by
/// `FlowCell::snapshot_state` / estimator `to_json`) into the tagged
/// binary form. Canonical tier wrappers, SMB states, and plain-bitmap
/// states get the compressed tags; anything else is carried as literal
/// JSON text under [`TAG_JSON`], so the encoding is total and
/// [`decode_cell_state`] always rebuilds the exact input value.
///
/// ```
/// use smb_devtools::Json;
/// use smb_sketch::codec::{decode_cell_state, encode_cell_state, TAG_ARRAY};
///
/// // An array-tier cell holding three arrival-ordered hashes.
/// let state = Json::parse(r#"{"tier":"array","hashes":[96,32,64]}"#).unwrap();
/// let bytes = encode_cell_state(&state);
/// assert_eq!(bytes[0], TAG_ARRAY);
/// assert!(bytes.len() < state.to_string().len());
/// // Lossless: the decoder rebuilds the exact JSON, order included.
/// assert_eq!(decode_cell_state(&bytes).unwrap(), state);
/// ```
pub fn encode_cell_state(state: &Json) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    if let Some((tag, hashes)) = tier_parts(state) {
        out.push(tag);
        write_hash_list(&mut out, &hashes);
        return out;
    }
    if let Some((alg, seed, m, t, r, v, ones)) = smb_parts(state) {
        out.push(TAG_SMB);
        out.push(alg);
        write_varint(&mut out, seed);
        write_varint(&mut out, m);
        write_varint(&mut out, t);
        write_varint(&mut out, r);
        write_varint(&mut out, v);
        write_packed_bits(&mut out, m as usize, &ones);
        return out;
    }
    if let Some((alg, seed, len, ones)) = bitmap_parts(state) {
        out.push(TAG_BITMAP);
        out.push(alg);
        write_varint(&mut out, seed);
        write_varint(&mut out, len as u64);
        write_packed_bits(&mut out, len, &ones);
        return out;
    }
    // Escape hatch: literal JSON text. Still smaller than the JSON
    // shard line in most cases (no field-name repetition savings, but
    // no loss either) and guarantees the codec is total.
    let text = state.to_string();
    out.push(TAG_JSON);
    write_varint(&mut out, text.len() as u64);
    out.extend_from_slice(text.as_bytes());
    out
}

fn decode_cell_state_reader(r: &mut Reader<'_>) -> Result<Json, CodecError> {
    match r.byte()? {
        TAG_JSON => {
            let len = r.varint()?;
            let len = usize::try_from(len)
                .map_err(|_| CodecError::new("JSON payload length out of range"))?;
            let bytes = r.take(len)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| CodecError::new("JSON payload is not UTF-8"))?;
            Json::parse(text).map_err(|e| CodecError::new(format!("embedded JSON: {e}")))
        }
        tag @ (TAG_SMALL | TAG_ARRAY) => {
            let (name, cap) = if tag == TAG_SMALL {
                ("small", SMALL_CAP)
            } else {
                ("array", ARRAY_CAP)
            };
            let hashes = read_hash_list(r, cap)?;
            Ok(Json::Obj(vec![
                ("tier".into(), Json::Str(name.into())),
                (
                    "hashes".into(),
                    Json::Arr(hashes.iter().map(|&h| Json::Int(h as i128)).collect()),
                ),
            ]))
        }
        TAG_SMB => {
            let alg = r.byte()?;
            let seed = r.varint()?;
            let m = r.varint()?;
            let t = r.varint()?;
            let round = r.varint()?;
            let v = r.varint()?;
            let m_usize = usize::try_from(m)
                .map_err(|_| CodecError::new("SMB m out of usize range"))?;
            let ones = read_packed_bits(r, m_usize)?;
            Ok(Json::Obj(vec![
                ("scheme".into(), scheme_json(alg, seed)?),
                ("m".into(), Json::Int(m as i128)),
                ("t".into(), Json::Int(t as i128)),
                ("r".into(), Json::Int(round as i128)),
                ("v".into(), Json::Int(v as i128)),
                ("bits".into(), bits_json(m_usize, &ones)),
            ]))
        }
        TAG_BITMAP => {
            let alg = r.byte()?;
            let seed = r.varint()?;
            let len = r.varint()?;
            let len = usize::try_from(len)
                .map_err(|_| CodecError::new("bitmap length out of usize range"))?;
            let ones = read_packed_bits(r, len)?;
            Ok(Json::Obj(vec![
                ("scheme".into(), scheme_json(alg, seed)?),
                ("bits".into(), bits_json(len, &ones)),
            ]))
        }
        other => Err(CodecError::new(format!("unknown cell-state tag {other:#04x}"))),
    }
}

/// Decode one tagged cell state, requiring the input to be exactly one
/// encoded value (trailing bytes are an error). Inverse of
/// [`encode_cell_state`]; hostile or truncated input errors, never
/// panics.
///
/// ```
/// use smb_sketch::codec::decode_cell_state;
///
/// // Truncated and garbage frames must error, not panic.
/// assert!(decode_cell_state(&[]).is_err());
/// assert!(decode_cell_state(&[0xFF]).is_err());
/// assert!(decode_cell_state(&[0x03, 0x00, 0x07]).is_err());
/// ```
pub fn decode_cell_state(bytes: &[u8]) -> Result<Json, CodecError> {
    let mut r = Reader::new(bytes);
    let state = decode_cell_state_reader(&mut r)?;
    r.done()?;
    Ok(state)
}

// ---------------------------------------------------------------------
// Flow blocks (checkpoint shards, SNAPSHOT responses)
// ---------------------------------------------------------------------

/// Encode a sorted flow→state table as one self-delimiting block:
/// the [`FLOW_BLOCK_MAGIC`] prefix, a varint flow count, then per flow
/// a varint key delta (first key raw; keys must be strictly
/// ascending, so deltas stay positive) followed by a varint-length-
/// prefixed [`encode_cell_state`] payload. This is both the v2
/// checkpoint shard body and the wire `SNAPSHOT` response payload.
///
/// # Errors
/// [`CodecError`] when `flows` is not strictly ascending by key — the
/// delta encoding requires the caller to sort (checkpoint writers and
/// snapshot sweeps already emit sorted tables).
///
/// ```
/// use smb_devtools::Json;
/// use smb_sketch::codec::{decode_flow_block, encode_flow_block};
///
/// let flows = vec![
///     (7u64, Json::parse(r#"{"tier":"small","hashes":[42]}"#).unwrap()),
///     (19u64, Json::parse(r#"{"tier":"small","hashes":[]}"#).unwrap()),
/// ];
/// let block = encode_flow_block(&flows).unwrap();
/// assert_eq!(&block[..4], b"SMB2");
/// assert_eq!(decode_flow_block(&block).unwrap(), flows);
/// ```
pub fn encode_flow_block(flows: &[(u64, Json)]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(16 + flows.len() * 16);
    out.extend_from_slice(&FLOW_BLOCK_MAGIC);
    write_varint(&mut out, flows.len() as u64);
    let mut prev = 0u64;
    for (i, (flow, state)) in flows.iter().enumerate() {
        if i == 0 {
            write_varint(&mut out, *flow);
        } else {
            let delta = flow
                .checked_sub(prev)
                .filter(|&d| d > 0)
                .ok_or_else(|| {
                    CodecError::new(format!(
                        "flow keys must be strictly ascending ({prev:#x} then {flow:#x})"
                    ))
                })?;
            write_varint(&mut out, delta);
        }
        prev = *flow;
        let cell = encode_cell_state(state);
        write_varint(&mut out, cell.len() as u64);
        out.extend_from_slice(&cell);
    }
    Ok(out)
}

/// Decode a flow block produced by [`encode_flow_block`], returning
/// the flows in their encoded (ascending) order. All counts and
/// lengths are validated against the remaining input before
/// allocation; trailing bytes are an error.
pub fn decode_flow_block(bytes: &[u8]) -> Result<Vec<(u64, Json)>, CodecError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != FLOW_BLOCK_MAGIC {
        return Err(CodecError::new("bad flow block magic"));
    }
    let count = r.varint()?;
    // Each flow costs at least 2 bytes (key varint + length varint),
    // so a count claim beyond half the remaining bytes is a forgery —
    // reject before reserving anything.
    if count > (r.remaining() as u64) / 2 + 1 {
        return Err(CodecError::new(format!(
            "flow count {count} impossible for {} remaining bytes",
            r.remaining()
        )));
    }
    let count = count as usize;
    let mut flows = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let v = r.varint()?;
        let flow = if i == 0 {
            v
        } else {
            if v == 0 {
                return Err(CodecError::new("zero flow-key delta"));
            }
            prev.checked_add(v)
                .ok_or_else(|| CodecError::new("flow key overflows u64"))?
        };
        prev = flow;
        let len = r.varint()?;
        let len = usize::try_from(len)
            .map_err(|_| CodecError::new("cell length out of range"))?;
        let cell = r.take(len)?;
        let state = decode_cell_state(cell)?;
        flows.push((flow, state));
    }
    r.done()?;
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.done().unwrap();
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 10 continuation bytes with a large final group: > u64.
        let too_big = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(Reader::new(&too_big).varint().is_err());
        // Endless continuation bits.
        let endless = [0x80u8; 11];
        assert!(Reader::new(&endless).varint().is_err());
        // Truncated mid-varint.
        assert!(Reader::new(&[0x80]).varint().is_err());
    }

    #[test]
    fn zigzag_is_order_preserving_near_zero() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn hash_list_preserves_arrival_order() {
        let hashes = [0xDEAD_BEEFu64, 0x0000_0001, u64::MAX, 0x8000_0000_0000_0000];
        let mut buf = Vec::new();
        write_hash_list(&mut buf, &hashes);
        let mut r = Reader::new(&buf);
        assert_eq!(read_hash_list(&mut r, 16).unwrap(), hashes);
        r.done().unwrap();
    }

    #[test]
    fn clustered_hashes_compress() {
        // Sorted, nearby values: 1-2 bytes per delta.
        let hashes: Vec<u64> = (0..16u64).map(|i| 1_000_000 + 17 * i).collect();
        let mut buf = Vec::new();
        write_hash_list(&mut buf, &hashes);
        assert!(buf.len() < 16 * 8 / 2, "got {} bytes", buf.len());
    }

    #[test]
    fn smb_state_round_trips_exactly() {
        let state = Json::parse(concat!(
            r#"{"scheme":{"algorithm":"xxh64","seed":12345},"#,
            r#""m":256,"t":16,"r":2,"v":5,"#,
            r#""bits":{"len":256,"ones":[0,3,64,65,127,128,200,255]}}"#,
        ))
        .unwrap();
        let bytes = encode_cell_state(&state);
        assert_eq!(bytes[0], TAG_SMB);
        assert_eq!(decode_cell_state(&bytes).unwrap(), state);
        // 256-bit bitmap: 32 packed bytes + small header, far below the
        // ~90-byte JSON.
        assert!(bytes.len() < state.to_string().len() / 2);
    }

    #[test]
    fn bitmap_state_round_trips_exactly() {
        let state = Json::parse(concat!(
            r#"{"scheme":{"algorithm":"fnv1a_mixed","seed":7},"#,
            r#""bits":{"len":64,"ones":[1,63]}}"#,
        ))
        .unwrap();
        let bytes = encode_cell_state(&state);
        assert_eq!(bytes[0], TAG_BITMAP);
        assert_eq!(decode_cell_state(&bytes).unwrap(), state);
    }

    #[test]
    fn unknown_states_fall_back_to_json_tag() {
        for text in [
            r#"{"kind":"hll","registers":[1,2,3]}"#,
            r#"{"scheme":{"algorithm":"sha999","seed":1},"bits":{"len":8,"ones":[]}}"#,
            // SMB shape but with unordered ones — not canonical.
            concat!(
                r#"{"scheme":{"algorithm":"xxh64","seed":1},"m":64,"t":4,"#,
                r#""r":0,"v":2,"bits":{"len":64,"ones":[9,3]}}"#,
            ),
            "null",
            "[1,2]",
        ] {
            let state = Json::parse(text).unwrap();
            let bytes = encode_cell_state(&state);
            assert_eq!(bytes[0], TAG_JSON, "state {text}");
            assert_eq!(decode_cell_state(&bytes).unwrap(), state, "state {text}");
        }
    }

    #[test]
    fn tier_states_round_trip() {
        for text in [
            r#"{"tier":"small","hashes":[]}"#,
            r#"{"tier":"small","hashes":[18446744073709551615]}"#,
            r#"{"tier":"array","hashes":[5,1,9,3]}"#,
        ] {
            let state = Json::parse(text).unwrap();
            let bytes = encode_cell_state(&state);
            assert!(bytes[0] == TAG_SMALL || bytes[0] == TAG_ARRAY);
            assert_eq!(decode_cell_state(&bytes).unwrap(), state, "state {text}");
        }
    }

    #[test]
    fn overfull_tier_wrapper_uses_json_fallback() {
        // 2 hashes in a small tier violates SMALL_CAP — the strict
        // reader refuses the compressed tag, but the state still
        // round-trips through the JSON escape hatch.
        let state = Json::parse(r#"{"tier":"small","hashes":[1,2]}"#).unwrap();
        let bytes = encode_cell_state(&state);
        assert_eq!(bytes[0], TAG_JSON);
        assert_eq!(decode_cell_state(&bytes).unwrap(), state);
    }

    #[test]
    fn hostile_inputs_error_not_panic() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],                       // empty
            vec![0xEE],                   // unknown tag
            vec![TAG_SMALL, 0x05],        // count over capacity
            vec![TAG_ARRAY, 0x02, 0x01],  // truncated hash list
            vec![TAG_ARRAY, 0x02, 0x01, 0x00], // duplicate (1 then Δ0)
            vec![TAG_SMB, 0x09],          // unknown algorithm code
            vec![TAG_SMB, 0x00, 0x01, 0x80], // truncated varint
            // SMB claiming a 2^40-bit bitmap with no payload: the
            // byte-count check fires before any allocation.
            {
                let mut b = vec![TAG_SMB, 0x00];
                write_varint(&mut b, 1); // seed
                write_varint(&mut b, 1u64 << 40); // m
                write_varint(&mut b, 4); // t
                write_varint(&mut b, 0); // r
                write_varint(&mut b, 0); // v
                b
            },
            vec![TAG_JSON, 0x02, b'{', b'!'], // garbage JSON text
            vec![TAG_JSON, 0x7F],             // JSON length > remaining
            // Padding bits set beyond the bitmap length.
            {
                let mut b = vec![TAG_BITMAP, 0x00];
                write_varint(&mut b, 0); // seed
                write_varint(&mut b, 4); // len 4 → 1 word
                b.extend_from_slice(&u64::MAX.to_le_bytes());
                b
            },
        ];
        for bytes in cases {
            assert!(
                decode_cell_state(&bytes).is_err(),
                "input {bytes:02x?} must error"
            );
        }
        // Trailing garbage after a valid value.
        let mut ok = encode_cell_state(&Json::parse(r#"{"tier":"small","hashes":[]}"#).unwrap());
        ok.push(0x00);
        assert!(decode_cell_state(&ok).is_err());
    }

    #[test]
    fn flow_block_round_trips_and_validates() {
        let flows: Vec<(u64, Json)> = vec![
            (3, Json::parse(r#"{"tier":"small","hashes":[77]}"#).unwrap()),
            (4, Json::parse(r#"{"tier":"array","hashes":[9,2]}"#).unwrap()),
            (1000, Json::parse("null").unwrap()),
        ];
        let block = encode_flow_block(&flows).unwrap();
        assert_eq!(decode_flow_block(&block).unwrap(), flows);

        // Unsorted input is a caller bug, reported not mangled.
        let unsorted = vec![(5u64, Json::Null), (2u64, Json::Null)];
        assert!(encode_flow_block(&unsorted).is_err());
        let dup = vec![(5u64, Json::Null), (5u64, Json::Null)];
        assert!(encode_flow_block(&dup).is_err());

        // Hostile blocks error.
        assert!(decode_flow_block(b"SMB1").is_err());
        assert!(decode_flow_block(b"SMB2").is_err());
        let mut forged = FLOW_BLOCK_MAGIC.to_vec();
        write_varint(&mut forged, u64::MAX); // absurd count, no payload
        assert!(decode_flow_block(&forged).is_err());
        let mut truncated = block.clone();
        truncated.truncate(block.len() - 1);
        assert!(decode_flow_block(&truncated).is_err());
        let mut trailing = block;
        trailing.push(0);
        assert!(decode_flow_block(&trailing).is_err());
    }

    #[test]
    fn empty_flow_block_is_valid() {
        let block = encode_flow_block(&[]).unwrap();
        assert_eq!(block.len(), 5);
        assert_eq!(decode_flow_block(&block).unwrap(), Vec::new());
    }
}
