//! Virtual-register sharing — the compact many-flows sketch of the
//! §II-C related work (the vHLL construction of Xiao et al.), built on
//! this workspace's register substrate.
//!
//! A single physical array of `M` registers is shared by *all* flows:
//! flow `f` owns a pseudo-random subset of `s` registers (selected by
//! hashing `(f, j)` for `j < s`). Recording `(f, item)` updates one of
//! `f`'s registers chosen by the item hash, with the usual max-of-rank
//! rule. Because other flows write into `f`'s registers too, the raw
//! per-flow estimate contains *noise* proportional to the total traffic;
//! the estimator subtracts it:
//!
//! ```text
//! n̂_f = (M·s)/(M − s) · ( n̂_s/s − n̂_total/M )
//! ```
//!
//! where `n̂_s` is the HLL estimate over `f`'s `s` registers and
//! `n̂_total` the HLL estimate over all `M` registers. This gives
//! per-flow cardinalities in `O(M)` total bits for millions of flows —
//! the regime where even one small estimator per flow is too much, and
//! the frame in which the paper positions SMB and friends as
//! interchangeable plug-ins.

use smb_core::{Error, Result};
use smb_hash::mix::mix_pair;
use smb_hash::HashScheme;

use smb_baselines::constants::hll_alpha;
use smb_baselines::registers::MaxRegisters;

/// Shared-register multi-flow cardinality sketch.
pub struct VirtualRegisterSketch {
    regs: MaxRegisters,
    /// Registers per flow `s`.
    s: usize,
    scheme: HashScheme,
}

impl VirtualRegisterSketch {
    /// A sketch with `m_total` physical registers (5 bits each), `s`
    /// virtual registers per flow.
    pub fn new(m_total: usize, s: usize, scheme: HashScheme) -> Result<Self> {
        if m_total == 0 {
            return Err(Error::invalid("m_total", "need at least one register"));
        }
        if s == 0 || s * 2 > m_total {
            return Err(Error::invalid(
                "s",
                format!("virtual size {s} must be in 1..=m_total/2 = {}", m_total / 2),
            ));
        }
        Ok(VirtualRegisterSketch {
            regs: MaxRegisters::new(m_total, 5),
            s,
            scheme,
        })
    }

    /// Physical register index of flow `f`'s `j`-th virtual register.
    #[inline]
    fn slot(&self, flow: u64, j: usize) -> usize {
        let h = mix_pair(flow ^ self.scheme.seed(), j as u64);
        (h % self.regs.len() as u64) as usize
    }

    /// Record `item` under `flow`.
    #[inline]
    pub fn record(&mut self, flow: u64, item: &[u8]) {
        let h = self.scheme.item_hash(item);
        // The item picks which of the flow's s registers it updates
        // (stochastic averaging within the virtual estimator)…
        let j = h.index(self.s);
        let slot = self.slot(flow, j);
        // …and contributes its geometric rank there. Re-wrap so the
        // rank lane is used but the index lane points at the chosen
        // physical slot.
        let rank = (h.geometric() + 1).min(31) as u8;
        self.regs.set_at_least(slot, rank);
    }

    /// Harmonic-mean HLL estimate over an arbitrary register multiset.
    fn hll_estimate(count: usize, harm_sum: f64, zeros: usize) -> f64 {
        let t = count as f64;
        let e = hll_alpha(count) * t * t / harm_sum;
        if e <= 2.5 * t && zeros > 0 {
            return t * (t / zeros as f64).ln();
        }
        e
    }

    /// Estimate the distinct items recorded under `flow`, with the
    /// shared-traffic noise term subtracted. Can be slightly negative
    /// for flows much smaller than the noise; clamped at zero.
    pub fn estimate(&self, flow: u64) -> f64 {
        let m_total = self.regs.len() as f64;
        let s = self.s as f64;
        // Flow's virtual estimator.
        let mut harm = 0.0;
        let mut zeros = 0usize;
        for j in 0..self.s {
            let v = self.regs.values()[self.slot(flow, j)];
            if v == 0 {
                zeros += 1;
            }
            harm += 2f64.powi(-(v as i32));
        }
        let n_s = Self::hll_estimate(self.s, harm, zeros);
        let n_total = self.total_estimate();
        let raw = (m_total * s) / (m_total - s) * (n_s / s - n_total / m_total);
        raw.max(0.0)
    }

    /// HLL estimate of the total distinct `(flow, item)` traffic across
    /// all flows (the noise baseline).
    pub fn total_estimate(&self) -> f64 {
        Self::hll_estimate(
            self.regs.len(),
            self.regs.harmonic_sum(),
            self.regs.zero_count(),
        )
    }

    /// Physical registers `M`.
    pub fn physical_registers(&self) -> usize {
        self.regs.len()
    }

    /// Virtual registers per flow `s`.
    pub fn virtual_registers(&self) -> usize {
        self.s
    }

    /// Total memory in bits.
    pub fn memory_bits(&self) -> usize {
        self.regs.memory_bits()
    }

    /// Reset all registers.
    pub fn clear(&mut self) {
        self.regs.clear();
    }
}

impl std::fmt::Debug for VirtualRegisterSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualRegisterSketch")
            .field("M", &self.regs.len())
            .field("s", &self.s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        let sch = HashScheme::default();
        assert!(VirtualRegisterSketch::new(0, 1, sch).is_err());
        assert!(VirtualRegisterSketch::new(100, 0, sch).is_err());
        assert!(VirtualRegisterSketch::new(100, 51, sch).is_err());
        assert!(VirtualRegisterSketch::new(100, 50, sch).is_ok());
    }

    #[test]
    fn single_flow_tracks_cardinality() {
        let mut v = VirtualRegisterSketch::new(16_384, 512, HashScheme::with_seed(1)).unwrap();
        for i in 0..50_000u32 {
            v.record(7, &i.to_le_bytes());
        }
        let est = v.estimate(7);
        assert!((est - 50_000.0).abs() / 50_000.0 < 0.2, "{est}");
    }

    #[test]
    fn noise_subtraction_separates_flows() {
        // One elephant among many mice: per-flow estimates must
        // distinguish them despite full register sharing.
        let mut v = VirtualRegisterSketch::new(65_536, 256, HashScheme::with_seed(2)).unwrap();
        for i in 0..100_000u32 {
            v.record(0, &i.to_le_bytes()); // elephant
        }
        for flow in 1..500u64 {
            for i in 0..100u32 {
                v.record(flow, &(flow as u32 * 1000 + i).to_le_bytes());
            }
        }
        let elephant = v.estimate(0);
        assert!(
            (elephant - 100_000.0).abs() / 100_000.0 < 0.25,
            "elephant {elephant}"
        );
        // Mice: noisy, but must be an order of magnitude below the
        // elephant on average.
        let mice_mean: f64 =
            (1..500u64).map(|f| v.estimate(f)).sum::<f64>() / 499.0;
        assert!(mice_mean < 10_000.0, "mice mean {mice_mean}");
    }

    #[test]
    fn total_estimate_covers_all_traffic() {
        // The total (noise) estimator treats the M registers as one
        // HLL, which assumes items spread over the whole file — true in
        // the sketch's intended many-flows regime (flows·s ≫ M), not
        // for a handful of flows that can only touch their own slots.
        let mut v = VirtualRegisterSketch::new(16_384, 128, HashScheme::with_seed(3)).unwrap();
        for flow in 0..2000u64 {
            for i in 0..10u32 {
                v.record(flow, &(flow as u32 * 300 + i).to_le_bytes());
            }
        }
        let total = v.total_estimate();
        assert!((total - 20_000.0).abs() / 20_000.0 < 0.15, "{total}");
    }

    #[test]
    fn memory_is_shared_not_per_flow() {
        let v = VirtualRegisterSketch::new(4096, 64, HashScheme::default()).unwrap();
        assert_eq!(v.memory_bits(), 4096 * 5);
        assert_eq!(v.physical_registers(), 4096);
        assert_eq!(v.virtual_registers(), 64);
    }

    #[test]
    fn clear_resets() {
        let mut v = VirtualRegisterSketch::new(1024, 32, HashScheme::default()).unwrap();
        v.record(1, b"x");
        v.clear();
        assert_eq!(v.total_estimate(), 0.0);
        assert_eq!(v.estimate(1), 0.0);
    }
}
