//! The unified per-flow store seam.
//!
//! Everything that holds per-flow estimator state — today
//! [`FlowTable`](crate::FlowTable), tomorrow eviction-aware or
//! disk-backed variants — exposes one trait: [`FlowStore`]. The engine
//! shard workers, the grouped batch recorder, checkpoint/restore and
//! the CLI all consume this seam instead of reaching into a concrete
//! table's estimators, so stores can tier, evict or reshape their
//! storage without touching a single consumer.

use smb_core::CardinalityEstimator;
use smb_hash::ItemHash;

use crate::flow_cell::{FlowCell, Tier};

/// A point-in-time census of a store's tier occupancy plus lifetime
/// promotion counters. Counts are maintained incrementally by the
/// store (O(1) per operation), so reading them per batch is free —
/// the engine mirrors them into per-shard telemetry gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Flows currently in the inline small tier.
    pub small: usize,
    /// Flows currently in the heap-array tier.
    pub array: usize,
    /// Flows with a materialized estimator.
    pub full: usize,
    /// Lifetime count of cells that outgrew the small tier.
    pub promotions_to_array: u64,
    /// Lifetime count of cells that materialized a real estimator.
    pub promotions_to_full: u64,
}

impl TierStats {
    /// Total flows across all tiers.
    pub fn flows(&self) -> usize {
        self.small + self.array + self.full
    }

    pub(crate) fn inc(&mut self, tier: Tier) {
        match tier {
            Tier::Small => self.small += 1,
            Tier::Array => self.array += 1,
            Tier::Full => self.full += 1,
        }
    }

    pub(crate) fn dec(&mut self, tier: Tier) {
        match tier {
            Tier::Small => self.small -= 1,
            Tier::Array => self.array -= 1,
            Tier::Full => self.full -= 1,
        }
    }

    /// Account one cell moving `before → after`. `promotions_to_array`
    /// counts cells leaving the small tier, `promotions_to_full` cells
    /// materializing — a direct Small→Full jump (forced
    /// materialization) bumps both, keeping each counter monotone in
    /// its own meaning.
    pub(crate) fn transition(&mut self, before: Tier, after: Tier) {
        if before == after {
            return;
        }
        self.dec(before);
        self.inc(after);
        if before == Tier::Small && after >= Tier::Array {
            self.promotions_to_array += 1;
        }
        if before <= Tier::Array && after == Tier::Full {
            self.promotions_to_full += 1;
        }
    }

    /// Zero the occupancy counts (clear/drain); promotion counters are
    /// lifetime telemetry and survive.
    pub(crate) fn reset_counts(&mut self) {
        self.small = 0;
        self.array = 0;
        self.full = 0;
    }
}

/// The store seam: insert, record, estimate, iterate, drain, snapshot
/// and account memory for per-flow estimator state, without exposing
/// how (or whether) each flow's estimator is materialized.
///
/// Hashes passed to the record methods **must** come from the scheme
/// of the estimator the store would build for that flow — the engine
/// guarantees this by deriving one scheme from its `AlgoSpec` and
/// hashing once at the producer.
pub trait FlowStore {
    /// The estimator type this store materializes for hot flows.
    type Estimator: CardinalityEstimator;

    /// Pre-size for `n` flows so steady-state ingest never rehashes.
    fn reserve(&mut self, n: usize);

    /// Record one pre-computed item hash under `flow`.
    fn record_hash(&mut self, flow: u64, hash: ItemHash);

    /// Record a batch of pre-computed hashes under `flow` — one flow
    /// resolution for the whole run.
    fn record_hashes(&mut self, flow: u64, hashes: &[ItemHash]);

    /// Record a batch of interleaved `(flow, hash)` pairs in arrival
    /// order. The default is the sequential per-item model — it *is*
    /// the reference semantics that every override must reproduce
    /// bit-for-bit; stores override it to batch flow resolution (see
    /// [`crate::FlowTable::record_batch`]'s prefetch-pipelined probe).
    fn record_batch(&mut self, batch: &[(u64, ItemHash)]) {
        for &(flow, hash) in batch {
            self.record_hash(flow, hash);
        }
    }

    /// Place a cell directly (restore path), replacing and returning
    /// any previous cell for `flow`.
    fn insert_cell(
        &mut self,
        flow: u64,
        cell: FlowCell<Self::Estimator>,
    ) -> Option<FlowCell<Self::Estimator>>;

    /// The flow's cardinality estimate; `None` if never seen.
    /// Bit-identical to an always-materialized store.
    fn estimate(&self, flow: u64) -> Option<f64>;

    /// Number of flows tracked.
    fn flow_count(&self) -> usize;

    /// Iterate `(flow, cell)` pairs in unspecified order.
    fn cells(&self) -> Box<dyn Iterator<Item = (u64, &FlowCell<Self::Estimator>)> + '_>;

    /// Remove and return every `(flow, cell)` pair, leaving the store
    /// empty but reusable.
    fn drain_cells(&mut self) -> Vec<(u64, FlowCell<Self::Estimator>)>;

    /// All `(flow, estimate)` pairs in unspecified order.
    fn estimates_vec(&self) -> Vec<(u64, f64)>;

    /// Flows whose estimate is at least `threshold`, sorted by
    /// (estimate descending, flow ascending).
    fn flows_over(&self, threshold: f64) -> Vec<(u64, f64)>;

    /// Resident bytes: slot storage plus every cell's heap state.
    fn memory_bytes(&self) -> usize;

    /// Logical memory in bits (the paper's accounting): estimator
    /// `memory_bits` once materialized, 64 bits per stored hash before.
    fn memory_bits(&self) -> usize;

    /// Tier occupancy and promotion counters.
    fn tier_stats(&self) -> TierStats;

    /// Drop all flows.
    fn clear(&mut self);

    /// Serialize every cell: `(flow, state)` pairs, where small/array
    /// tiers carry a `{"tier", "hashes"}` wrapper and materialized
    /// cells carry the estimator's own state (`None` when the
    /// estimator does not support snapshots).
    #[cfg(feature = "snapshot")]
    fn snapshot_cells(&self) -> Vec<(u64, Option<smb_devtools::Json>)>;
}
