//! A fixed pool of estimators shared across flows — the compact-sketch
//! regime of the §II-C related work, where allocating a private
//! estimator per flow is too expensive.
//!
//! `EstimatorArray` keeps `w` estimator cells and maps each flow onto
//! `d` of them by seeded double hashing. Recording inserts the item
//! into all `d` cells (each cell mixes the flow key into the item so
//! different flows sharing a cell don't collide on identical items);
//! querying returns the **minimum** estimate over the flow's cells,
//! Count-Min style — cells are unions of several flows' items, so every
//! cell overestimates and the minimum is the tightest available bound.
//!
//! Any [`CardinalityEstimator`] plugs in; the integration tests run it
//! with SMB, MRB and HLL++ to demonstrate the paper's plug-in claim.

use smb_core::CardinalityEstimator;
use smb_hash::mix::mix_pair;

/// `w` estimator cells shared by all flows, `d` cells per flow.
pub struct EstimatorArray<E: CardinalityEstimator> {
    cells: Vec<E>,
    d: usize,
}

impl<E: CardinalityEstimator> EstimatorArray<E> {
    /// Build `w` cells from `factory` (called with the cell index);
    /// each flow maps to `d ≤ w` distinct cells.
    pub fn new(w: usize, d: usize, factory: impl Fn(usize) -> E) -> Self {
        assert!(w > 0, "need at least one cell");
        assert!(d >= 1 && d <= w, "need 1 ≤ d ≤ w");
        EstimatorArray {
            cells: (0..w).map(factory).collect(),
            d,
        }
    }

    /// The `d` cell indices of `flow` (deterministic double hashing;
    /// probes are usually distinct but may collide for small `w`, in
    /// which case the flow effectively uses fewer cells — harmless for
    /// the min-estimate).
    fn cell_indices(&self, flow: u64) -> impl Iterator<Item = usize> + '_ {
        let w = self.cells.len();
        let base = smb_hash::mix::moremur(flow ^ 0x5ca1_ab1e);
        let step = (smb_hash::mix::moremur(flow.wrapping_add(0x9E37_79B9)) as usize % (w - 1).max(1)) + 1;
        (0..self.d).map(move |j| ((base as usize) + j * step) % w)
    }

    /// Record `item` for `flow` into all of the flow's cells.
    #[inline]
    pub fn record(&mut self, flow: u64, item: &[u8]) {
        // Mix the flow into the item so identical items of different
        // flows occupy independent positions inside a shared cell.
        let mut keyed = [0u8; 8 + 160];
        let len = item.len().min(160);
        keyed[..8].copy_from_slice(&mix_pair(flow, 0xF10F).to_le_bytes());
        keyed[8..8 + len].copy_from_slice(&item[..len]);
        let indices: Vec<usize> = self.cell_indices(flow).collect();
        for idx in indices {
            self.cells[idx].record(&keyed[..8 + len]);
        }
    }

    /// Count-Min style estimate for `flow`: minimum over its cells.
    /// Overestimates by the other flows sharing the minimal cell.
    pub fn estimate(&self, flow: u64) -> f64 {
        self.cell_indices(flow)
            .map(|idx| self.cells[idx].estimate())
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of cells `w`.
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// Cells per flow `d`.
    pub fn depth(&self) -> usize {
        self.d
    }

    /// Total memory across all cells, in bits.
    pub fn total_memory_bits(&self) -> usize {
        self.cells.iter().map(|e| e.memory_bits()).sum()
    }

    /// Reset every cell.
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            c.clear();
        }
    }
}

impl<E: CardinalityEstimator> std::fmt::Debug for EstimatorArray<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimatorArray")
            .field("w", &self.cells.len())
            .field("d", &self.d)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn array(w: usize, d: usize) -> EstimatorArray<Smb> {
        EstimatorArray::new(w, d, |i| {
            Smb::with_scheme(4096, 256, HashScheme::with_seed(i as u64)).expect("valid params")
        })
    }

    #[test]
    fn single_flow_estimates_well() {
        let mut a = array(64, 2);
        for i in 0..5000u32 {
            a.record(7, &i.to_le_bytes());
        }
        let est = a.estimate(7);
        assert!((est - 5000.0).abs() / 5000.0 < 0.3, "{est}");
    }

    #[test]
    fn min_over_cells_bounds_overestimate() {
        let mut a = array(64, 2);
        // 100 flows of 100 items each share 64 cells: the expected
        // union load per cell is d·total/w ≈ 312 keyed items, so the
        // min-cell estimate overestimates a flow's 100 by roughly 3×.
        for flow in 0..100u64 {
            for i in 0..100u32 {
                a.record(flow, &i.to_le_bytes());
            }
        }
        let mut within = 0;
        for flow in 0..100u64 {
            let est = a.estimate(flow);
            assert!(est >= 50.0, "flow {flow}: {est} unreasonably low");
            if est < 100.0 * 8.0 {
                within += 1;
            }
        }
        assert!(within > 75, "only {within}/100 flows within 8x");
    }

    #[test]
    fn distinct_flows_are_distinguished() {
        let mut a = array(64, 2);
        for i in 0..4000u32 {
            a.record(1, &i.to_le_bytes());
        }
        for i in 0..50u32 {
            a.record(2, &i.to_le_bytes());
        }
        let big = a.estimate(1);
        let small = a.estimate(2);
        assert!(big > 4.0 * small, "big {big} vs small {small}");
    }

    #[test]
    fn same_item_different_flows_both_counted() {
        // Flow keying must prevent two flows' identical items from
        // collapsing inside a shared cell.
        let mut a = array(1, 1); // force total sharing
        for i in 0..1000u32 {
            a.record(1, &i.to_le_bytes());
            a.record(2, &i.to_le_bytes());
        }
        // The single cell holds the union: ~2000 distinct keyed items.
        let est = a.estimate(1);
        assert!(est > 1500.0, "{est}");
    }

    #[test]
    fn parameter_validation() {
        let mk = |i: usize| Smb::with_scheme(256, 32, HashScheme::with_seed(i as u64)).unwrap();
        assert!(std::panic::catch_unwind(|| EstimatorArray::new(0, 1, mk)).is_err());
        assert!(std::panic::catch_unwind(|| EstimatorArray::new(4, 5, mk)).is_err());
    }

    #[test]
    fn clear_resets_all() {
        let mut a = array(8, 2);
        a.record(1, b"x");
        a.clear();
        assert_eq!(a.estimate(1), 0.0);
    }

    #[test]
    fn memory_accounting() {
        let a = array(16, 2);
        assert_eq!(a.total_memory_bits(), 16 * 4096);
        assert_eq!(a.width(), 16);
        assert_eq!(a.depth(), 2);
    }
}
