//! Online threshold detection — the paper's introductory use case.
//!
//! "For each arrival packet, we record its destination address for the
//! stream of its source address, we also query for whether the
//! cardinality of the stream exceeds a threshold." This per-packet
//! record-then-query loop is exactly where query throughput decides
//! whether a detector can run online; SMB's O(1) query makes it
//! feasible where HLL++'s O(m) scan is not.

use smb_core::CardinalityEstimator;

use crate::flow_table::FlowTable;

/// An alarm raised by the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// The offending flow key.
    pub flow: u64,
    /// The estimate at the moment the threshold was crossed.
    pub estimate: f64,
    /// Packet sequence number (0-based) at which the alarm fired.
    pub packet_index: u64,
}

/// Per-packet record-and-query detector over a [`FlowTable`].
///
/// Each flow alarms at most once (real deployments rate-limit alarms;
/// once a scanner is flagged, re-flagging it per packet is noise).
pub struct ThresholdDetector<E: CardinalityEstimator> {
    table: FlowTable<E>,
    threshold: f64,
    packets: u64,
    alarmed: std::collections::HashSet<u64>,
    alarms: Vec<Alarm>,
}

impl<E: CardinalityEstimator> ThresholdDetector<E> {
    /// Detector alarming when a flow's estimate reaches `threshold`.
    pub fn new(threshold: f64, factory: impl Fn(u64) -> E + 'static) -> Self {
        assert!(threshold > 0.0);
        ThresholdDetector {
            table: FlowTable::new(factory),
            threshold,
            packets: 0,
            alarmed: Default::default(),
            alarms: Vec::new(),
        }
    }

    /// Process one packet: record, then query (the paper's online
    /// loop). Returns the alarm if this packet crossed the threshold.
    pub fn process(&mut self, flow: u64, item: &[u8]) -> Option<Alarm> {
        self.table.record(flow, item);
        let idx = self.packets;
        self.packets += 1;
        if self.alarmed.contains(&flow) {
            return None;
        }
        let est = self
            .table
            .estimate(flow)
            .expect("flow was just recorded");
        if est >= self.threshold {
            self.alarmed.insert(flow);
            let alarm = Alarm {
                flow,
                estimate: est,
                packet_index: idx,
            };
            self.alarms.push(alarm);
            return Some(alarm);
        }
        None
    }

    /// All alarms raised so far, in firing order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Packets processed.
    pub fn packets_processed(&self) -> u64 {
        self.packets
    }

    /// Borrow the underlying flow table.
    pub fn table(&self) -> &FlowTable<E> {
        &self.table
    }

    /// The detection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn detector(threshold: f64) -> ThresholdDetector<Smb> {
        ThresholdDetector::new(threshold, |flow| {
            Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).expect("valid params")
        })
    }

    #[test]
    fn scanner_is_flagged_benign_is_not() {
        let mut d = detector(500.0);
        // Benign flow: 50 distinct contacts, many repeats.
        for rep in 0..10 {
            for i in 0..50u32 {
                d.process(1, &i.to_le_bytes());
                let _ = rep;
            }
        }
        // Scanner: 2000 distinct contacts.
        for i in 0..2000u32 {
            d.process(2, &i.to_le_bytes());
        }
        let flows: Vec<u64> = d.alarms().iter().map(|a| a.flow).collect();
        assert_eq!(flows, vec![2]);
    }

    #[test]
    fn alarm_fires_near_threshold_not_late() {
        let mut d = detector(1000.0);
        let mut fired_at = None;
        for i in 0..5000u32 {
            if let Some(a) = d.process(9, &i.to_le_bytes()) {
                fired_at = Some((i, a.estimate));
            }
        }
        let (at, est) = fired_at.expect("scanner must alarm");
        // Crossing should happen within estimator error of 1000
        // distinct items.
        assert!((500..2000).contains(&at), "fired at {at}");
        assert!(est >= 1000.0);
    }

    #[test]
    fn each_flow_alarms_once() {
        let mut d = detector(100.0);
        for i in 0..10_000u32 {
            d.process(5, &i.to_le_bytes());
        }
        assert_eq!(d.alarms().len(), 1);
        assert_eq!(d.packets_processed(), 10_000);
    }

    #[test]
    fn duplicates_do_not_trigger() {
        let mut d = detector(50.0);
        for _ in 0..100_000 {
            d.process(3, b"same-item");
        }
        assert!(d.alarms().is_empty());
    }
}
