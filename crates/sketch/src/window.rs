//! Jumping-window cardinality estimation.
//!
//! Streams are often measured over a recent window ("distinct sources
//! in the last 10 minutes"), not since the beginning of time. The
//! standard low-cost construction is the *jumping window*: the window
//! of span `W` is covered by `k` sub-windows of span `W/k`; each
//! sub-window gets its own estimator; when time advances past a
//! sub-window boundary the oldest estimator is dropped and a fresh one
//! starts. A query merges the live sub-windows — exact for any
//! [`MergeableEstimator`], since merged sketches estimate the union of
//! their streams (items recurring across sub-windows are not double
//! counted).
//!
//! SMB does not support merging (its per-round sampling history cannot
//! be reconciled), so a windowed SMB uses [`SummingWindow`], which adds
//! sub-window estimates — an upper bound that overcounts items
//! recurring across sub-window boundaries. Both are provided; pick by
//! whether your items recur across sub-windows.

use smb_core::{CardinalityEstimator, MergeableEstimator, Result};

/// A jumping window over a mergeable estimator: queries estimate the
/// union of the last `k` sub-windows exactly (up to sketch error).
pub struct JumpingWindow<E: MergeableEstimator + Clone> {
    subs: Vec<E>,
    /// Index of the sub-window currently recording.
    head: usize,
    /// Sub-windows that have ever been used (≤ k; before the first
    /// full rotation some are still empty).
    factory: Box<dyn Fn() -> E + Send>,
}

impl<E: MergeableEstimator + Clone> JumpingWindow<E> {
    /// A window of `k ≥ 1` sub-windows, each built by `factory`.
    /// All estimators must share a hash scheme for merging; the factory
    /// is responsible for that.
    pub fn new(k: usize, factory: impl Fn() -> E + Send + 'static) -> Self {
        assert!(k >= 1, "need at least one sub-window");
        JumpingWindow {
            subs: (0..k).map(|_| factory()).collect(),
            head: 0,
            factory: Box::new(factory),
        }
    }

    /// Record an item into the current sub-window.
    #[inline]
    pub fn record(&mut self, item: &[u8]) {
        self.subs[self.head].record(item);
    }

    /// Advance to the next sub-window: the oldest sub-window's
    /// contents leave the window.
    pub fn rotate(&mut self) {
        self.head = (self.head + 1) % self.subs.len();
        self.subs[self.head] = (self.factory)();
    }

    /// Estimate the distinct count over the whole window (union of all
    /// live sub-windows).
    ///
    /// # Errors
    /// Propagates [`smb_core::Error::MergeIncompatible`] if the factory
    /// produced estimators with mismatched schemes.
    pub fn estimate(&self) -> Result<f64> {
        let mut merged = self.subs[0].clone();
        for sub in &self.subs[1..] {
            merged.merge_from(sub)?;
        }
        Ok(merged.estimate())
    }

    /// Number of sub-windows `k`.
    pub fn sub_windows(&self) -> usize {
        self.subs.len()
    }

    /// Total memory across sub-windows, in bits.
    pub fn memory_bits(&self) -> usize {
        self.subs.iter().map(|s| s.memory_bits()).sum()
    }
}

/// A jumping window over *any* estimator (including SMB): queries sum
/// the sub-window estimates. Exact when items do not recur across
/// sub-windows; otherwise an upper bound.
pub struct SummingWindow<E: CardinalityEstimator> {
    subs: Vec<E>,
    head: usize,
    factory: Box<dyn Fn() -> E + Send>,
}

impl<E: CardinalityEstimator> SummingWindow<E> {
    /// A window of `k ≥ 1` sub-windows, each built by `factory`.
    pub fn new(k: usize, factory: impl Fn() -> E + Send + 'static) -> Self {
        assert!(k >= 1, "need at least one sub-window");
        SummingWindow {
            subs: (0..k).map(|_| factory()).collect(),
            head: 0,
            factory: Box::new(factory),
        }
    }

    /// Record an item into the current sub-window.
    #[inline]
    pub fn record(&mut self, item: &[u8]) {
        self.subs[self.head].record(item);
    }

    /// Advance to the next sub-window.
    pub fn rotate(&mut self) {
        self.head = (self.head + 1) % self.subs.len();
        self.subs[self.head].clear();
    }

    /// Sum of sub-window estimates (upper bound on the window's
    /// distinct count).
    pub fn estimate(&self) -> f64 {
        self.subs.iter().map(|s| s.estimate()).sum()
    }

    /// Number of sub-windows `k`.
    pub fn sub_windows(&self) -> usize {
        self.subs.len()
    }

    /// Total memory across sub-windows, in bits.
    pub fn memory_bits(&self) -> usize {
        self.subs.iter().map(|s| s.memory_bits()).sum()
    }

    /// Rebuild every sub-window (full reset).
    pub fn clear(&mut self) {
        for s in &mut self.subs {
            *s = (self.factory)();
        }
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_baselines::HllPlusPlus;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn hpp_window(k: usize) -> JumpingWindow<HllPlusPlus> {
        let scheme = HashScheme::with_seed(33);
        JumpingWindow::new(k, move || HllPlusPlus::with_scheme(1024, scheme).unwrap())
    }

    #[test]
    fn union_not_double_counted_across_subwindows() {
        // The same 10k items in every sub-window: the union is 10k, not
        // 40k.
        let mut w = hpp_window(4);
        for _ in 0..4 {
            for i in 0..10_000u32 {
                w.record(&i.to_le_bytes());
            }
            w.rotate();
        }
        let est = w.estimate().unwrap();
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.15, "{est}");
    }

    #[test]
    fn old_subwindows_expire() {
        let mut w = hpp_window(3);
        // 30k items land in sub-window 0…
        for i in 0..30_000u32 {
            w.record(&i.to_le_bytes());
        }
        // …then three rotations push it out of the window entirely.
        for _ in 0..3 {
            w.rotate();
        }
        for i in 30_000..31_000u32 {
            w.record(&i.to_le_bytes());
        }
        let est = w.estimate().unwrap();
        assert!(est < 3_000.0, "expired items still visible: {est}");
    }

    #[test]
    fn disjoint_subwindows_add_up() {
        let mut w = hpp_window(4);
        for block in 0..4u32 {
            for i in 0..5_000u32 {
                w.record(&(block * 5_000 + i).to_le_bytes());
            }
            if block < 3 {
                w.rotate();
            }
        }
        let est = w.estimate().unwrap();
        assert!((est - 20_000.0).abs() / 20_000.0 < 0.15, "{est}");
    }

    #[test]
    fn summing_window_with_smb() {
        let scheme = HashScheme::with_seed(44);
        let mut w = SummingWindow::new(4, move || {
            Smb::with_scheme(2048, 128, scheme).unwrap()
        });
        // Disjoint blocks → the sum is accurate.
        for block in 0..4u32 {
            for i in 0..5_000u32 {
                w.record(&(block * 5_000 + i).to_le_bytes());
            }
            if block < 3 {
                w.rotate();
            }
        }
        let est = w.estimate();
        assert!((est - 20_000.0).abs() / 20_000.0 < 0.2, "{est}");
        // Rotations expire the oldest block.
        w.rotate();
        let est2 = w.estimate();
        assert!(est2 < est, "rotation must drop the oldest block");
    }

    #[test]
    fn summing_window_overcounts_recurring_items() {
        // Documented semantics: recurring items are double counted.
        let scheme = HashScheme::with_seed(55);
        let mut w = SummingWindow::new(2, move || {
            Smb::with_scheme(2048, 128, scheme).unwrap()
        });
        for i in 0..5_000u32 {
            w.record(&i.to_le_bytes());
        }
        w.rotate();
        for i in 0..5_000u32 {
            w.record(&i.to_le_bytes());
        }
        let est = w.estimate();
        assert!(est > 8_000.0, "summing window should double count: {est}");
    }

    #[test]
    fn clear_and_reuse() {
        let scheme = HashScheme::with_seed(66);
        let mut w = SummingWindow::new(2, move || {
            Smb::with_scheme(1024, 64, scheme).unwrap()
        });
        w.record(b"x");
        w.clear();
        assert_eq!(w.estimate(), 0.0);
        assert_eq!(w.sub_windows(), 2);
        assert_eq!(w.memory_bits(), 2048);
    }
}
