//! Software prefetch hints for the batched probe pipeline.
//!
//! [`crate::OpenTable::probe_batch`] resolves a whole batch of flow
//! keys in two passes: pass one mixes every key to its home slot and
//! *hints* the slot's metadata and key lines into L1, pass two walks
//! the probe sequences. For tables larger than the cache (the 10k+
//! flow regime) the hint turns a chain of dependent ~100 ns DRAM
//! stalls into overlapping in-flight loads — the probe loop is then
//! bound by issue width, not load latency. On tables that already fit
//! in cache the hint is a single cheap instruction and costs nothing
//! measurable.
//!
//! The hint is best-effort by construction: a prefetch instruction
//! cannot fault, cannot write memory, and has no architecturally
//! visible effect — even on a dangling address it is at worst a
//! wasted cache fill. That is why the two `unsafe` blocks below are
//! sound with no preconditions (the pointers passed here come from
//! live references anyway). This is the **only** module in the crate
//! allowed to use `unsafe`: the crate root carries
//! `#![deny(unsafe_code)]` and this file scopes a single `allow` to
//! the two intrinsic calls.
//!
//! Per-arch lowering:
//!
//! * **x86_64** — `_mm_prefetch::<_MM_HINT_T0>` (`prefetcht0`, SSE is
//!   baseline on x86_64);
//! * **aarch64** — `prfm pldl1keep` via inline asm (there is no
//!   stable intrinsic, but the instruction is in the ARMv8 base ISA);
//! * **anything else** — a no-op fallback, and
//!   [`PREFETCH_ACTIVE`] reports `false` so gates can tell the
//!   difference. `scripts/verify.sh` fails loudly if a tier-1 arch
//!   ever compiles the fallback.
#![allow(unsafe_code)]

/// `true` when this build lowers [`prefetch_read`] to a real
/// prefetch instruction; `false` on the no-op fallback. Pinned by a
/// unit test that `scripts/verify.sh` runs by name, so the intrinsic
/// path can never be silently compiled out on x86_64/aarch64.
pub const PREFETCH_ACTIVE: bool = imp::ACTIVE;

/// Hint the cache line containing `target` into L1 for a near-future
/// read. Purely advisory: no-op on unsupported architectures, and
/// never an observable effect anywhere.
#[inline(always)]
pub fn prefetch_read<T>(target: &T) {
    imp::prefetch_read(target as *const T as *const u8);
}

#[cfg(target_arch = "x86_64")]
mod imp {
    pub const ACTIVE: bool = true;

    #[inline(always)]
    pub fn prefetch_read(ptr: *const u8) {
        // SAFETY: `prefetcht0` is an architectural hint — it cannot
        // fault or write, even through an invalid pointer, so there
        // are no preconditions to uphold.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                ptr as *const i8,
            );
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod imp {
    pub const ACTIVE: bool = true;

    #[inline(always)]
    pub fn prefetch_read(ptr: *const u8) {
        // SAFETY: `prfm pldl1keep` is an architectural hint — it
        // cannot fault or write, even through an invalid pointer; the
        // options tell the compiler it touches no program state.
        unsafe {
            core::arch::asm!(
                "prfm pldl1keep, [{ptr}]",
                ptr = in(reg) ptr,
                options(readonly, nostack, preserves_flags),
            );
        }
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    pub const ACTIVE: bool = false;

    #[inline(always)]
    pub fn prefetch_read(_ptr: *const u8) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `scripts/verify.sh` runs this test by its full path and checks
    /// that exactly one test passed: on the tier-1 architectures the
    /// real instruction must be compiled in, never the no-op fallback.
    #[test]
    fn intrinsics_compiled_in_on_supported_arches() {
        // The hint must execute without observable effect everywhere.
        let data = [0u8; 128];
        prefetch_read(&data[0]);
        prefetch_read(&data[127]);
        if cfg!(any(target_arch = "x86_64", target_arch = "aarch64")) {
            assert!(
                PREFETCH_ACTIVE,
                "prefetch intrinsics compiled out on a supported architecture"
            );
        }
    }
}
