//! Per-flow estimator table: one estimator per stream key.
//!
//! This is the deployment model of the paper's CAIDA experiment ("each
//! data stream is allocated with a cardinality estimator") and of the
//! motivating router examples. Estimators are created lazily by a
//! factory closure on first packet of a flow; all estimators share a
//! hash scheme derived from the table seed so experiments are
//! reproducible.
//!
//! The table has two storage modes:
//!
//! * **Eager** ([`FlowTable::new`] / [`FlowTable::with_factory`]) —
//!   every flow materializes its estimator on first sight, exactly as
//!   before tiering existed. Factories may derive per-flow schemes;
//!   internal estimator state is directly observable via [`get`].
//! * **Tiered** ([`FlowTable::tiered`] /
//!   [`FlowTable::with_factory_tiered`]) — flows live in a
//!   [`FlowCell`] that starts as two inline machine words and only
//!   materializes a real estimator past [`ARRAY_CAP`] distinct items,
//!   with promotion by exact hash replay so every estimate is
//!   bit-identical to the eager mode. Tiered tables carry the one
//!   shared [`HashScheme`] all their estimators use (the engine's
//!   configuration), which also serves the byte-level [`record`] path.
//!
//! [`get`]: FlowTable::get
//! [`record`]: FlowTable::record
//! [`ARRAY_CAP`]: crate::flow_cell::ARRAY_CAP
//!
//! The table is generic over its factory type `F` (defaulting to a
//! boxed closure). Notably the factory carries **no `Send` bound**: a
//! table used on one thread may capture non-`Send` state. A table only
//! crosses threads when both `E` and `F` are `Send` — the sharded
//! engine (`smb-engine`) pins that requirement on its own shard type
//! rather than imposing it on every single-threaded caller.

use smb_core::CardinalityEstimator;
use smb_hash::{HashScheme, ItemHash};

use crate::flow_cell::{FlowCell, Tier};
use crate::flow_store::{FlowStore, TierStats};
use crate::open_table::{OpenTable, PROBE_MISS};

/// The default factory representation: a boxed, thread-local closure.
pub type BoxedFactory<E> = Box<dyn Fn(u64) -> E>;

/// A map from flow key to its own estimator instance.
///
/// Storage is the in-tree open-addressed [`OpenTable`] over tiered
/// [`FlowCell`]s: flow keys are already uniform 64-bit hashes, so the
/// record path pays one cheap integer mix and a linear probe instead
/// of a full SipHash pass per lookup, and (in tiered mode) tiny flows
/// pay two inline words instead of a full estimator.
pub struct FlowTable<E: CardinalityEstimator, F = BoxedFactory<E>> {
    flows: OpenTable<FlowCell<E>>,
    factory: F,
    /// `Some` in tiered mode: the one scheme shared by every estimator
    /// the factory builds, used to hash byte items and to justify
    /// tiering pre-hashed input.
    scheme: Option<HashScheme>,
    stats: TierStats,
    /// Resolved-slot scratch reused across [`FlowTable::record_batch`]
    /// calls, so the batched probe allocates nothing in steady state.
    probe_slots: Vec<u32>,
}

impl<E: CardinalityEstimator> FlowTable<E> {
    /// Create an **eager** table whose estimators are built by
    /// `factory` (receiving the flow key, e.g. to derive per-flow
    /// seeds). Every flow materializes on first sight. The closure is
    /// boxed; use [`FlowTable::with_factory`] to keep a concrete
    /// factory type (required for a `Send` table).
    pub fn new(factory: impl Fn(u64) -> E + 'static) -> Self {
        FlowTable {
            flows: OpenTable::new(),
            factory: Box::new(factory),
            scheme: None,
            stats: TierStats::default(),
            probe_slots: Vec::new(),
        }
    }

    /// Create a **tiered** table: flows start as inline hash cells and
    /// materialize through `factory` only past the array tier.
    /// `scheme` must be the scheme of every estimator `factory`
    /// builds — sharing one scheme across flows is what makes stored
    /// raw hashes replayable. The closure is boxed; use
    /// [`FlowTable::with_factory_tiered`] for a `Send` table.
    pub fn tiered(scheme: HashScheme, factory: impl Fn(u64) -> E + 'static) -> Self {
        FlowTable {
            flows: OpenTable::new(),
            factory: Box::new(factory),
            scheme: Some(scheme),
            stats: TierStats::default(),
            probe_slots: Vec::new(),
        }
    }
}

impl<E: CardinalityEstimator, F: Fn(u64) -> E> FlowTable<E, F> {
    /// Create an eager table with a concrete factory type. The table
    /// is `Send` exactly when `E` and `F` are, so multi-threaded
    /// owners (the engine's shards) get the bound they need without it
    /// leaking into single-threaded use.
    pub fn with_factory(factory: F) -> Self {
        FlowTable {
            flows: OpenTable::new(),
            factory,
            scheme: None,
            stats: TierStats::default(),
            probe_slots: Vec::new(),
        }
    }

    /// Create a tiered table with a concrete factory type (see
    /// [`FlowTable::tiered`] for the scheme contract).
    pub fn with_factory_tiered(scheme: HashScheme, factory: F) -> Self {
        FlowTable {
            flows: OpenTable::new(),
            factory,
            scheme: Some(scheme),
            stats: TierStats::default(),
            probe_slots: Vec::new(),
        }
    }

    /// Pre-size the table for `n` flows, so steady-state ingest never
    /// rehashes mid-stream. The engine calls this per shard from its
    /// `expected_flows` option.
    pub fn reserve(&mut self, n: usize) {
        self.flows.reserve(n);
    }

    /// Record `item` under `flow`, creating the flow's cell on first
    /// sight. Tiered tables hash through their shared scheme and feed
    /// the tier ladder; eager tables delegate hashing to the flow's
    /// own estimator.
    #[inline]
    pub fn record(&mut self, flow: u64, item: &[u8]) {
        match self.scheme {
            Some(scheme) => self.record_hash(flow, scheme.item_hash(item)),
            None => {
                let FlowTable {
                    flows,
                    factory,
                    stats,
                    ..
                } = self;
                let cell = flows.get_or_insert_with(flow, |f| {
                    stats.inc(Tier::Full);
                    FlowCell::from_estimator(factory(f))
                });
                let before = cell.tier();
                cell.force_estimator(|| factory(flow)).record(item);
                stats.transition(before, Tier::Full);
            }
        }
    }

    /// Record a pre-computed hash under `flow`. The hash **must** come
    /// from the scheme of the estimator the factory builds for `flow`
    /// (the engine guarantees this by sharing one spec-derived scheme
    /// across all flows).
    #[inline]
    pub fn record_hash(&mut self, flow: u64, hash: ItemHash) {
        let tiered = self.scheme.is_some();
        let FlowTable {
            flows,
            factory,
            stats,
            ..
        } = self;
        if tiered {
            let cell = flows.get_or_insert_with(flow, |_| {
                stats.inc(Tier::Small);
                FlowCell::new()
            });
            let before = cell.tier();
            cell.record_hash(hash, || factory(flow));
            stats.transition(before, cell.tier());
        } else {
            let cell = flows.get_or_insert_with(flow, |f| {
                stats.inc(Tier::Full);
                FlowCell::from_estimator(factory(f))
            });
            let before = cell.tier();
            cell.force_estimator(|| factory(flow)).record_hash(hash);
            stats.transition(before, Tier::Full);
        }
    }

    /// Record a batch of pre-computed hashes under `flow` — one table
    /// lookup for the whole batch, and (once materialized) one call
    /// through the estimator's batched path.
    #[inline]
    pub fn record_hashes(&mut self, flow: u64, hashes: &[ItemHash]) {
        let tiered = self.scheme.is_some();
        let FlowTable {
            flows,
            factory,
            stats,
            ..
        } = self;
        if tiered {
            let cell = flows.get_or_insert_with(flow, |_| {
                stats.inc(Tier::Small);
                FlowCell::new()
            });
            let before = cell.tier();
            cell.record_hashes(hashes, || factory(flow));
            stats.transition(before, cell.tier());
        } else {
            let cell = flows.get_or_insert_with(flow, |f| {
                stats.inc(Tier::Full);
                FlowCell::from_estimator(factory(f))
            });
            let before = cell.tier();
            cell.force_estimator(|| factory(flow)).record_hashes(hashes);
            stats.transition(before, Tier::Full);
        }
    }

    /// Record a batch of interleaved `(flow, hash)` pairs in arrival
    /// order — the engine's per-batch path for traffic whose same-flow
    /// runs are too short for [`FlowTable::record_hashes`] grouping to
    /// amortise anything (≈1 item per run).
    ///
    /// Three passes over the batch:
    ///
    /// 1. **probe** — [`OpenTable::probe_batch`] resolves every flow's
    ///    slot with prefetch-pipelined lookups;
    /// 2. **insert** (first-sight flows only, usually skipped) — any
    ///    missed flow gets its empty cell inserted, then the batch is
    ///    re-probed: robin-hood insertion steals residents' slots, so
    ///    pre-insertion slot indices are never trusted afterwards;
    /// 3. **record** — one in-order pass writes each item into its
    ///    resolved cell. `Full` cells take one estimator call with no
    ///    tier bookkeeping (the run-length-1 survivor fast path);
    ///    `Small`/`Array` cells record inline — dedup against 1–16
    ///    resident hashes, no estimator resolution, no scratch entry.
    ///    Recording mutates cells strictly in place (promotion
    ///    replaces the cell *value*, never its slot), so every
    ///    resolved slot stays valid for the whole pass.
    ///
    /// Per-flow arrival order is exactly the batch order, so estimates
    /// and tier censuses are bit-identical to recording the batch one
    /// item at a time.
    pub fn record_batch(&mut self, batch: &[(u64, ItemHash)]) {
        // Bounded chunks keep the probe pass's prefetched cell lines
        // cache-resident until the record pass consumes them: at 256
        // in-flight slots the probe→record reuse distance stays inside
        // L1/L2 even for tables far larger than cache, where a
        // whole-batch pass would evict its own prefetches. Chunking
        // also makes the first-sight fallback adaptive per chunk while
        // a cold table fills.
        const RECORD_CHUNK: usize = 256;
        for chunk in batch.chunks(RECORD_CHUNK) {
            self.record_chunk(chunk);
        }
    }

    /// Per-item recording with a steady-state fast lane: resident
    /// [`FlowCell::Full`] cells take the estimator call directly — a
    /// Full→Full census transition is definitionally a no-op, so
    /// skipping the tier bookkeeping cannot change observable state.
    /// First-sight flows and inline-tier cells (which may promote) go
    /// through the full bookkeeping path, identical to
    /// [`FlowTable::record_hash`].
    fn record_per_item(&mut self, batch: &[(u64, ItemHash)]) {
        let tiered = self.scheme.is_some();
        let FlowTable {
            flows,
            factory,
            stats,
            ..
        } = self;
        for &(flow, hash) in batch {
            match flows.get_mut(flow) {
                Some(FlowCell::Full(est)) => est.record_hash(hash),
                Some(cell) => {
                    let before = cell.tier();
                    cell.record_hash(hash, || factory(flow));
                    stats.transition(before, cell.tier());
                }
                None if tiered => {
                    let cell = flows.get_or_insert_with(flow, |_| {
                        stats.inc(Tier::Small);
                        FlowCell::new()
                    });
                    let before = cell.tier();
                    cell.record_hash(hash, || factory(flow));
                    stats.transition(before, cell.tier());
                }
                None => {
                    let cell = flows.get_or_insert_with(flow, |f| {
                        stats.inc(Tier::Full);
                        FlowCell::from_estimator(factory(f))
                    });
                    cell.force_estimator(|| factory(flow)).record_hash(hash);
                }
            }
        }
    }

    /// One bounded probe → insert → record cycle of
    /// [`FlowTable::record_batch`].
    fn record_chunk(&mut self, batch: &[(u64, ItemHash)]) {
        if batch.is_empty() {
            return;
        }
        if !self.flows.prefetch_pays() {
            // Cache-resident table: every probe is already an L1/L2
            // hit, so the batched pipeline's second pass and slot
            // staging buy nothing — direct per-item recording (the
            // sequential reference itself) is strictly cheaper.
            self.record_per_item(batch);
            return;
        }
        let tiered = self.scheme.is_some();
        let mut slots = std::mem::take(&mut self.probe_slots);
        self.flows
            .probe_batch(batch.iter().map(|&(flow, _)| flow), &mut slots);
        let misses = slots.iter().filter(|&&s| s == PROBE_MISS).count();
        if misses * 4 > batch.len() {
            // First-sight-dominated batch (cold table, flow churn): the
            // batched path would pay an insert probe *plus* a full
            // re-probe pass per item, where per-item recording folds
            // lookup and insert into one probe. Fall back to the
            // sequential reference — it is the semantics being
            // reproduced, so equivalence is free.
            self.probe_slots = slots;
            self.record_per_item(batch);
            return;
        }
        if misses > 0 {
            {
                let FlowTable {
                    flows,
                    factory,
                    stats,
                    ..
                } = self;
                for (&(flow, _), &slot) in batch.iter().zip(&slots) {
                    if slot != PROBE_MISS {
                        continue;
                    }
                    // A flow repeated within the batch only inserts
                    // once; get_or_insert_with absorbs the rest.
                    if tiered {
                        flows.get_or_insert_with(flow, |_| {
                            stats.inc(Tier::Small);
                            FlowCell::new()
                        });
                    } else {
                        flows.get_or_insert_with(flow, |f| {
                            stats.inc(Tier::Full);
                            FlowCell::from_estimator(factory(f))
                        });
                    }
                }
            }
            self.flows
                .probe_batch(batch.iter().map(|&(flow, _)| flow), &mut slots);
        }
        let FlowTable {
            flows,
            factory,
            stats,
            ..
        } = self;
        // One lookahead stage ahead of the record on tables past cache
        // residency: the probe pass already pulled each chunk's cell
        // lines toward cache, so only the cells' boxed payloads (one
        // more dependent hop the probe cannot see) still need hinting,
        // a few items before their record consumes them. Cache-
        // resident tables skip the hints (see
        // `OpenTable::prefetch_pays`).
        const PAYLOAD_LOOKAHEAD: usize = 3;
        let hint = flows.prefetch_pays();
        for (i, (&(flow, hash), &slot)) in batch.iter().zip(&slots).enumerate() {
            if hint {
                if let Some(&ahead) = slots.get(i + PAYLOAD_LOOKAHEAD) {
                    flows.slot_get(ahead).prefetch_payload();
                }
            }
            let cell = flows.slot_mut(slot);
            if let FlowCell::Full(est) = cell {
                est.record_hash(hash);
            } else {
                let before = cell.tier();
                cell.record_hash(hash, || factory(flow));
                stats.transition(before, cell.tier());
            }
        }
        self.probe_slots = slots;
    }

    /// Mutably borrow `flow`'s estimator, creating it on first sight.
    ///
    /// This force-materializes the flow (replaying any tiered hashes
    /// exactly), which defeats the point of tiering for tiny flows —
    /// record through the table or the [`FlowStore`] seam instead.
    #[deprecated(
        note = "record through the table or the FlowStore trait; \
                direct estimator access force-materializes the flow"
    )]
    #[doc(hidden)]
    pub fn estimator_mut(&mut self, flow: u64) -> &mut E {
        let FlowTable {
            flows,
            factory,
            stats,
            ..
        } = self;
        let cell = flows.get_or_insert_with(flow, |f| {
            stats.inc(Tier::Full);
            FlowCell::from_estimator(factory(f))
        });
        let before = cell.tier();
        let est = cell.force_estimator(|| factory(flow));
        stats.transition(before, Tier::Full);
        est
    }

    /// Estimate the cardinality of `flow`; `None` if never seen.
    /// Bit-identical across modes: unmaterialized cells replay their
    /// stored hashes through a factory-built probe.
    pub fn estimate(&self, flow: u64) -> Option<f64> {
        self.flows
            .get(flow)
            .map(|cell| cell.estimate(|| (self.factory)(flow)))
    }

    /// Borrow a flow's **materialized** estimator. `None` when the
    /// flow is absent *or* still in an inline tier (eager tables
    /// materialize everything, so there `None` simply means absent).
    /// Use [`FlowTable::cell`] for a tier-aware view.
    pub fn get(&self, flow: u64) -> Option<&E> {
        self.flows.get(flow).and_then(FlowCell::estimator)
    }

    /// Borrow a flow's cell, whatever its tier.
    pub fn cell(&self, flow: u64) -> Option<&FlowCell<E>> {
        self.flows.get(flow)
    }

    /// Insert `flow`'s estimator directly, replacing and returning any
    /// previous one (materializing it if the flow was tiered). The
    /// engine's restore path places estimators rebuilt from a
    /// checkpoint with this instead of routing them through the
    /// factory (which only knows how to build *empty* estimators).
    pub fn insert(&mut self, flow: u64, estimator: E) -> Option<E> {
        let old = self.insert_cell(flow, FlowCell::from_estimator(estimator))?;
        Some(old.into_estimator(|| (self.factory)(flow)))
    }

    /// Place a cell directly at whatever tier it carries (checkpoint
    /// restore), replacing and returning any previous cell.
    pub fn insert_cell(&mut self, flow: u64, cell: FlowCell<E>) -> Option<FlowCell<E>> {
        self.stats.inc(cell.tier());
        let old = self.flows.insert(flow, cell);
        if let Some(old) = &old {
            self.stats.dec(old.tier());
        }
        old
    }

    /// Remove `flow` from the table, returning its estimator
    /// materialized (e.g. for eviction of idle flows). Backward-shift
    /// deletion: no tombstones are left to slow later probes.
    pub fn remove(&mut self, flow: u64) -> Option<E> {
        let cell = self.flows.remove(flow)?;
        self.stats.dec(cell.tier());
        Some(cell.into_estimator(|| (self.factory)(flow)))
    }

    /// Number of flows tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterate `(flow, cell)` pairs in unspecified order.
    pub fn cells(&self) -> impl Iterator<Item = (u64, &FlowCell<E>)> {
        self.flows.iter()
    }

    /// Iterate `(flow, estimator)` pairs for **materialized** flows
    /// only — inline-tier flows are skipped. Eager tables materialize
    /// everything, so there this is the old full view.
    #[deprecated(note = "use cells(); this view skips unmaterialized flows")]
    #[doc(hidden)]
    pub fn iter(&self) -> impl Iterator<Item = (u64, &E)> {
        self.flows
            .iter()
            .filter_map(|(flow, cell)| cell.estimator().map(|est| (flow, est)))
    }

    /// Remove and return every `(flow, cell)` pair, leaving the table
    /// empty but reusable (the factory is retained). Promotion
    /// counters survive; tier occupancy resets.
    pub fn drain_cells(&mut self) -> Vec<(u64, FlowCell<E>)> {
        let out: Vec<_> = self.flows.drain().collect();
        self.stats.reset_counts();
        out
    }

    /// Drain the table, materializing every flow's estimator on the
    /// way out.
    #[deprecated(
        note = "use drain_cells(); materializing every flow defeats tiering"
    )]
    #[doc(hidden)]
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, E)> + '_ {
        let cells = self.drain_cells();
        let factory = &self.factory;
        cells
            .into_iter()
            .map(move |(flow, cell)| (flow, cell.into_estimator(|| factory(flow))))
    }

    /// Iterate `(flow, estimate)` pairs. Estimates from inline tiers
    /// come from probe replay and are bit-identical to the eager mode.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.flows
            .iter()
            .map(move |(flow, cell)| (flow, cell.estimate(|| (self.factory)(flow))))
    }

    /// Flows whose estimate is at least `threshold` (the scan/DDoS
    /// report of the paper's introduction), largest first. The
    /// threshold filter runs before the sort, and the sort is an
    /// unstable pattern-defeating quicksort — no allocation beyond the
    /// surviving entries, no stable-merge scratch buffer.
    pub fn flows_over(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .estimates()
            .filter(|&(_, est)| est >= threshold)
            .collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("estimates are finite")
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Total logical memory across all flows, in bits: estimator
    /// accounting once materialized, 64 bits per stored hash before.
    pub fn total_memory_bits(&self) -> usize {
        self.flows.iter().map(|(_, cell)| cell.memory_bits()).sum()
    }

    /// Resident bytes: the open-addressed slot arrays (key + probe
    /// distance + cell, across the full capacity) plus every cell's
    /// heap state. This is what the "bytes per flow" bench gate
    /// measures.
    pub fn memory_bytes(&self) -> usize {
        let slot = std::mem::size_of::<u64>()
            + std::mem::size_of::<u8>()
            + std::mem::size_of::<Option<FlowCell<E>>>();
        std::mem::size_of::<Self>()
            + self.flows.capacity() * slot
            + self
                .flows
                .iter()
                .map(|(_, cell)| cell.memory_bytes())
                .sum::<usize>()
    }

    /// Tier occupancy and lifetime promotion counters.
    pub fn tier_stats(&self) -> TierStats {
        self.stats
    }

    /// Drop all flows. Promotion counters survive (they are lifetime
    /// telemetry); tier occupancy resets.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.stats.reset_counts();
    }
}

impl<E: CardinalityEstimator, F: Fn(u64) -> E> FlowStore for FlowTable<E, F> {
    type Estimator = E;

    fn reserve(&mut self, n: usize) {
        FlowTable::reserve(self, n);
    }

    fn record_hash(&mut self, flow: u64, hash: ItemHash) {
        FlowTable::record_hash(self, flow, hash);
    }

    fn record_hashes(&mut self, flow: u64, hashes: &[ItemHash]) {
        FlowTable::record_hashes(self, flow, hashes);
    }

    fn record_batch(&mut self, batch: &[(u64, ItemHash)]) {
        FlowTable::record_batch(self, batch);
    }

    fn insert_cell(&mut self, flow: u64, cell: FlowCell<E>) -> Option<FlowCell<E>> {
        FlowTable::insert_cell(self, flow, cell)
    }

    fn estimate(&self, flow: u64) -> Option<f64> {
        FlowTable::estimate(self, flow)
    }

    fn flow_count(&self) -> usize {
        self.len()
    }

    fn cells(&self) -> Box<dyn Iterator<Item = (u64, &FlowCell<E>)> + '_> {
        Box::new(FlowTable::cells(self))
    }

    fn drain_cells(&mut self) -> Vec<(u64, FlowCell<E>)> {
        FlowTable::drain_cells(self)
    }

    fn estimates_vec(&self) -> Vec<(u64, f64)> {
        self.estimates().collect()
    }

    fn flows_over(&self, threshold: f64) -> Vec<(u64, f64)> {
        FlowTable::flows_over(self, threshold)
    }

    fn memory_bytes(&self) -> usize {
        FlowTable::memory_bytes(self)
    }

    fn memory_bits(&self) -> usize {
        self.total_memory_bits()
    }

    fn tier_stats(&self) -> TierStats {
        FlowTable::tier_stats(self)
    }

    fn clear(&mut self) {
        FlowTable::clear(self);
    }

    #[cfg(feature = "snapshot")]
    fn snapshot_cells(&self) -> Vec<(u64, Option<smb_devtools::Json>)> {
        self.flows
            .iter()
            .map(|(flow, cell)| (flow, cell.snapshot_state()))
            .collect()
    }
}

impl<E: CardinalityEstimator, F> std::fmt::Debug for FlowTable<E, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("flows", &self.flows.len())
            .field("tiered", &self.scheme.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn table() -> FlowTable<Smb> {
        FlowTable::new(|flow| {
            Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).expect("valid params")
        })
    }

    fn tiered_table() -> FlowTable<Smb> {
        let scheme = HashScheme::with_seed(5);
        FlowTable::tiered(scheme, move |_| {
            Smb::with_scheme(2048, 128, scheme).expect("valid params")
        })
    }

    #[test]
    fn tracks_flows_independently() {
        let mut t = table();
        for i in 0..1000u32 {
            t.record(1, &i.to_le_bytes());
        }
        for i in 0..100u32 {
            t.record(2, &i.to_le_bytes());
        }
        assert_eq!(t.len(), 2);
        let e1 = t.estimate(1).expect("flow 1 exists");
        let e2 = t.estimate(2).expect("flow 2 exists");
        assert!((e1 - 1000.0).abs() / 1000.0 < 0.25, "{e1}");
        assert!((e2 - 100.0).abs() / 100.0 < 0.35, "{e2}");
        assert_eq!(t.estimate(3), None);
    }

    #[test]
    fn flows_over_ranks_descending() {
        let mut t = table();
        for (flow, n) in [(10u64, 2000u32), (20, 500), (30, 1500)] {
            for i in 0..n {
                t.record(flow, &i.to_le_bytes());
            }
        }
        let over = t.flows_over(1000.0);
        assert_eq!(over.len(), 2);
        assert_eq!(over[0].0, 10);
        assert_eq!(over[1].0, 30);
    }

    #[test]
    fn flows_over_descending_order_is_pinned() {
        // Many flows, including estimate ties (same item count, same
        // per-flow scheme derivation disabled by a shared scheme):
        // the result must be strictly sorted by (estimate desc, flow
        // asc) — fully deterministic.
        let scheme = HashScheme::with_seed(9);
        let mut t: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(4096, 256, scheme).unwrap());
        for flow in 0..40u64 {
            let n = 100 + (flow % 7) * 400;
            for i in 0..n {
                t.record(flow, &(i ^ (flow << 32)).to_le_bytes());
            }
        }
        let over = t.flows_over(150.0);
        assert!(!over.is_empty());
        for pair in over.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "order violated: {pair:?}"
            );
        }
        // Everything reported clears the threshold; nothing below it
        // leaks in.
        assert!(over.iter().all(|&(_, est)| est >= 150.0));
        let expected = t.estimates().filter(|&(_, e)| e >= 150.0).count();
        assert_eq!(over.len(), expected);
    }

    #[test]
    fn reserve_then_record_never_loses_flows() {
        let mut t = table();
        t.reserve(500);
        for flow in 0..500u64 {
            t.record(flow, b"x");
        }
        assert_eq!(t.len(), 500);
        for flow in 0..500u64 {
            assert!(t.estimate(flow).is_some(), "flow {flow}");
        }
    }

    #[test]
    fn insert_places_restored_estimator() {
        let scheme = HashScheme::with_seed(5);
        let mut t: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        // A "restored" estimator arrives pre-populated from elsewhere.
        let mut restored = Smb::with_scheme(2048, 128, scheme).unwrap();
        for i in 0..500u32 {
            restored.record(&i.to_le_bytes());
        }
        let expect = restored.estimate();
        assert!(t.insert(42, restored).is_none());
        assert_eq!(t.estimate(42), Some(expect));
        // Recording continues on the inserted instance, not a fresh one.
        t.record(42, &9_999u32.to_le_bytes());
        assert!(t.estimate(42).unwrap() >= expect);
        // Replacement hands back the resident estimator.
        let fresh = Smb::with_scheme(2048, 128, scheme).unwrap();
        let old = t.insert(42, fresh).expect("flow 42 was resident");
        assert!(old.estimate() >= expect);
        assert_eq!(t.estimate(42), Some(0.0));
    }

    #[test]
    fn remove_evicts_single_flow() {
        let mut t = table();
        for i in 0..100u32 {
            t.record(1, &i.to_le_bytes());
            t.record(2, &i.to_le_bytes());
        }
        let evicted = t.remove(1).expect("flow 1 resident");
        assert!(evicted.estimate() > 0.0);
        assert_eq!(t.remove(1).map(|e| e.estimate()), None);
        assert_eq!(t.estimate(1), None);
        assert!(t.estimate(2).is_some(), "unrelated flow survives");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn memory_accounting_sums_flows() {
        let mut t = table();
        t.record(1, b"a");
        t.record(2, b"b");
        assert_eq!(t.total_memory_bits(), 2 * 2048);
    }

    #[test]
    fn clear_empties() {
        let mut t = table();
        t.record(1, b"a");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.estimate(1), None);
    }

    #[test]
    fn record_hash_equals_record() {
        // One shared scheme across flows, as the engine configures it.
        let scheme = HashScheme::with_seed(5);
        let mut by_item: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        let mut by_hash: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        let mut hashes = Vec::new();
        for i in 0..2000u32 {
            let flow = (i % 3) as u64;
            let item = i.to_le_bytes();
            by_item.record(flow, &item);
            hashes.push((flow, scheme.item_hash(&item)));
        }
        for (flow, h) in &hashes {
            by_hash.record_hash(*flow, *h);
        }
        for flow in 0..3u64 {
            assert_eq!(by_item.estimate(flow), by_hash.estimate(flow), "flow {flow}");
        }
        // Batched per-flow path agrees too.
        let mut batched: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        for flow in 0..3u64 {
            let of_flow: Vec<_> = hashes
                .iter()
                .filter(|(f, _)| *f == flow)
                .map(|&(_, h)| h)
                .collect();
            batched.record_hashes(flow, &of_flow);
            assert_eq!(batched.estimate(flow), by_item.estimate(flow), "flow {flow}");
        }
    }

    #[test]
    fn tiered_estimates_match_eager_estimates() {
        let scheme = HashScheme::with_seed(5);
        let mut eager: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        let mut tiered = tiered_table();
        for i in 0..3000u32 {
            // Flow 0 stays inline (one distinct item), flow 1 promotes
            // to array, flow 2 materializes; repeats exercise dedup.
            let flow = (i % 3) as u64;
            let n = match flow {
                0 => 0,
                1 => i % 10,
                _ => i,
            };
            let item = n.to_le_bytes();
            eager.record(flow, &item);
            tiered.record(flow, &item);
        }
        assert_eq!(tiered.tier_stats().small, 1);
        assert_eq!(tiered.tier_stats().array, 1);
        assert_eq!(tiered.tier_stats().full, 1);
        for flow in 0..3u64 {
            assert_eq!(
                eager.estimate(flow).map(f64::to_bits),
                tiered.estimate(flow).map(f64::to_bits),
                "flow {flow}"
            );
        }
    }

    #[test]
    fn tier_stats_track_promotions_and_occupancy() {
        let mut t = tiered_table();
        let scheme = HashScheme::with_seed(5);
        // One flow all the way to full.
        for i in 0..100u32 {
            t.record_hash(1, scheme.item_hash(&i.to_le_bytes()));
        }
        // One flow to array, one left small.
        for i in 0..5u32 {
            t.record_hash(2, scheme.item_hash(&i.to_le_bytes()));
        }
        t.record_hash(3, scheme.item_hash(b"x"));
        let s = t.tier_stats();
        assert_eq!((s.small, s.array, s.full), (1, 1, 1));
        assert_eq!(s.promotions_to_array, 2);
        assert_eq!(s.promotions_to_full, 1);
        assert_eq!(s.flows(), t.len());
        // Removal and clear keep occupancy honest, counters monotone.
        t.remove(2);
        assert_eq!(t.tier_stats().array, 0);
        t.clear();
        let s = t.tier_stats();
        assert_eq!((s.small, s.array, s.full), (0, 0, 0));
        assert_eq!(s.promotions_to_array, 2);
        assert_eq!(s.promotions_to_full, 1);
    }

    #[test]
    fn tiered_memory_stays_small_for_tiny_flows() {
        let mut tiered = tiered_table();
        let scheme = HashScheme::with_seed(5);
        for flow in 0..1000u64 {
            tiered.record_hash(flow, scheme.item_hash(&flow.to_le_bytes()));
        }
        let bytes_per_flow = tiered.memory_bytes() / tiered.len();
        assert!(
            bytes_per_flow <= 64,
            "tiny flows cost {bytes_per_flow} bytes each"
        );
        // The same population materialized eagerly costs at least the
        // estimator state (2048 bits = 256 bytes) per flow.
        let mut eager: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        for flow in 0..1000u64 {
            eager.record_hash(flow, scheme.item_hash(&flow.to_le_bytes()));
        }
        assert!(eager.memory_bytes() / eager.len() >= 256);
    }

    #[test]
    fn flow_store_seam_covers_the_table() {
        fn exercise<S: FlowStore>(store: &mut S, scheme: HashScheme) {
            store.reserve(16);
            let hashes: Vec<_> = (0..40u32)
                .map(|i| scheme.item_hash(&i.to_le_bytes()))
                .collect();
            store.record_hash(7, hashes[0]);
            store.record_hashes(8, &hashes);
            assert_eq!(store.flow_count(), 2);
            assert!(store.estimate(7).is_some());
            assert!(store.estimate(9).is_none());
            assert_eq!(store.cells().count(), 2);
            assert!(store.memory_bytes() > 0);
            assert!(store.memory_bits() > 0);
            let over = store.flows_over(0.0);
            assert_eq!(over.len(), 2);
            assert_eq!(store.estimates_vec().len(), 2);
            assert_eq!(store.tier_stats().flows(), 2);
            let cells = store.drain_cells();
            assert_eq!(cells.len(), 2);
            assert_eq!(store.flow_count(), 0);
            for (flow, cell) in cells {
                assert!(store.insert_cell(flow, cell).is_none());
            }
            assert_eq!(store.flow_count(), 2);
            store.clear();
            assert_eq!(store.flow_count(), 0);
        }
        let scheme = HashScheme::with_seed(5);
        exercise(&mut tiered_table(), scheme);
        let mut eager: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        exercise(&mut eager, scheme);
    }

    #[test]
    fn non_send_factory_is_accepted() {
        // The factory captures an Rc, which is !Send — fine for a
        // thread-local table.
        let shared = std::rc::Rc::new(2048usize);
        let mut t = FlowTable::new(move |flow| {
            Smb::with_scheme(*shared, 128, HashScheme::with_seed(flow)).unwrap()
        });
        t.record(1, b"a");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concrete_factory_table_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let t = FlowTable::with_factory(|flow: u64| {
            Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).unwrap()
        });
        assert_send(&t);
        let scheme = HashScheme::with_seed(1);
        let t2 = FlowTable::with_factory_tiered(scheme, move |_: u64| {
            Smb::with_scheme(2048, 128, scheme).unwrap()
        });
        assert_send(&t2);
    }

    #[test]
    fn cells_and_drain_cells() {
        let mut t = table();
        t.record(7, b"a");
        t.record(8, b"b");
        let mut seen: Vec<u64> = t.cells().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![7, 8]);
        let drained = t.drain_cells();
        assert_eq!(drained.len(), 2);
        assert!(t.is_empty());
        // The factory survives a drain: the table is still usable.
        t.record(9, b"c");
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work_one_release() {
        // estimator_mut / iter / drain are shimmed for one release so
        // external callers migrate cleanly; pin their behavior.
        let mut t = tiered_table();
        let scheme = HashScheme::with_seed(5);
        t.record_hash(3, scheme.item_hash(b"x"));
        let before = t.estimate(3).unwrap();
        // Force-materialization must not change the estimate.
        let est = t.estimator_mut(3);
        assert_eq!(est.estimate(), before);
        assert_eq!(t.cell(3).unwrap().estimator().map(|e| e.estimate()), Some(before));
        assert_eq!(t.iter().count(), 1);
        let drained: Vec<(u64, Smb)> = t.drain().collect();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1.estimate(), before);
    }
}
