//! Per-flow estimator table: one estimator per stream key.
//!
//! This is the deployment model of the paper's CAIDA experiment ("each
//! data stream is allocated with a cardinality estimator") and of the
//! motivating router examples. Estimators are created lazily by a
//! factory closure on first packet of a flow; all estimators share a
//! hash scheme derived from the table seed so experiments are
//! reproducible.

use std::collections::HashMap;

use smb_core::CardinalityEstimator;

/// A map from flow key to its own estimator instance.
pub struct FlowTable<E: CardinalityEstimator> {
    flows: HashMap<u64, E>,
    factory: Box<dyn Fn(u64) -> E + Send>,
}

impl<E: CardinalityEstimator> FlowTable<E> {
    /// Create a table whose estimators are built by `factory`
    /// (receiving the flow key, e.g. to derive per-flow seeds).
    pub fn new(factory: impl Fn(u64) -> E + Send + 'static) -> Self {
        FlowTable {
            flows: HashMap::new(),
            factory: Box::new(factory),
        }
    }

    /// Record `item` under `flow`, creating the flow's estimator on
    /// first sight.
    #[inline]
    pub fn record(&mut self, flow: u64, item: &[u8]) {
        self.flows
            .entry(flow)
            .or_insert_with(|| (self.factory)(flow))
            .record(item);
    }

    /// Estimate the cardinality of `flow`; `None` if never seen.
    pub fn estimate(&self, flow: u64) -> Option<f64> {
        self.flows.get(&flow).map(|e| e.estimate())
    }

    /// Borrow a flow's estimator.
    pub fn get(&self, flow: u64) -> Option<&E> {
        self.flows.get(&flow)
    }

    /// Number of flows tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterate `(flow, estimate)` pairs.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.flows.iter().map(|(&k, e)| (k, e.estimate()))
    }

    /// Flows whose estimate is at least `threshold` (the scan/DDoS
    /// report of the paper's introduction).
    pub fn flows_over(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .estimates()
            .filter(|&(_, est)| est >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("estimates are finite"));
        out
    }

    /// Total memory across all per-flow estimators, in bits.
    pub fn total_memory_bits(&self) -> usize {
        self.flows.values().map(|e| e.memory_bits()).sum()
    }

    /// Drop all flows.
    pub fn clear(&mut self) {
        self.flows.clear();
    }
}

impl<E: CardinalityEstimator> std::fmt::Debug for FlowTable<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("flows", &self.flows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn table() -> FlowTable<Smb> {
        FlowTable::new(|flow| {
            Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).expect("valid params")
        })
    }

    #[test]
    fn tracks_flows_independently() {
        let mut t = table();
        for i in 0..1000u32 {
            t.record(1, &i.to_le_bytes());
        }
        for i in 0..100u32 {
            t.record(2, &i.to_le_bytes());
        }
        assert_eq!(t.len(), 2);
        let e1 = t.estimate(1).expect("flow 1 exists");
        let e2 = t.estimate(2).expect("flow 2 exists");
        assert!((e1 - 1000.0).abs() / 1000.0 < 0.25, "{e1}");
        assert!((e2 - 100.0).abs() / 100.0 < 0.35, "{e2}");
        assert_eq!(t.estimate(3), None);
    }

    #[test]
    fn flows_over_ranks_descending() {
        let mut t = table();
        for (flow, n) in [(10u64, 2000u32), (20, 500), (30, 1500)] {
            for i in 0..n {
                t.record(flow, &i.to_le_bytes());
            }
        }
        let over = t.flows_over(1000.0);
        assert_eq!(over.len(), 2);
        assert_eq!(over[0].0, 10);
        assert_eq!(over[1].0, 30);
    }

    #[test]
    fn memory_accounting_sums_flows() {
        let mut t = table();
        t.record(1, b"a");
        t.record(2, b"b");
        assert_eq!(t.total_memory_bits(), 2 * 2048);
    }

    #[test]
    fn clear_empties() {
        let mut t = table();
        t.record(1, b"a");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.estimate(1), None);
    }
}
