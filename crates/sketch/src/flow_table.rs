//! Per-flow estimator table: one estimator per stream key.
//!
//! This is the deployment model of the paper's CAIDA experiment ("each
//! data stream is allocated with a cardinality estimator") and of the
//! motivating router examples. Estimators are created lazily by a
//! factory closure on first packet of a flow; all estimators share a
//! hash scheme derived from the table seed so experiments are
//! reproducible.
//!
//! The table is generic over its factory type `F` (defaulting to a
//! boxed closure). Notably the factory carries **no `Send` bound**: a
//! table used on one thread may capture non-`Send` state. A table only
//! crosses threads when both `E` and `F` are `Send` — the sharded
//! engine (`smb-engine`) pins that requirement on its own shard type
//! rather than imposing it on every single-threaded caller.

use smb_core::CardinalityEstimator;
use smb_hash::ItemHash;

use crate::open_table::OpenTable;

/// The default factory representation: a boxed, thread-local closure.
pub type BoxedFactory<E> = Box<dyn Fn(u64) -> E>;

/// A map from flow key to its own estimator instance.
///
/// Storage is the in-tree open-addressed [`OpenTable`]: flow keys are
/// already uniform 64-bit hashes, so the record path pays one cheap
/// integer mix and a linear probe instead of a full SipHash pass per
/// lookup.
pub struct FlowTable<E: CardinalityEstimator, F = BoxedFactory<E>> {
    flows: OpenTable<E>,
    factory: F,
}

impl<E: CardinalityEstimator> FlowTable<E> {
    /// Create a table whose estimators are built by `factory`
    /// (receiving the flow key, e.g. to derive per-flow seeds). The
    /// closure is boxed; use [`FlowTable::with_factory`] to keep a
    /// concrete factory type (required for a `Send` table).
    pub fn new(factory: impl Fn(u64) -> E + 'static) -> Self {
        FlowTable {
            flows: OpenTable::new(),
            factory: Box::new(factory),
        }
    }
}

impl<E: CardinalityEstimator, F: Fn(u64) -> E> FlowTable<E, F> {
    /// Create a table with a concrete factory type. The table is
    /// `Send` exactly when `E` and `F` are, so multi-threaded owners
    /// (the engine's shards) get the bound they need without it
    /// leaking into single-threaded use.
    pub fn with_factory(factory: F) -> Self {
        FlowTable {
            flows: OpenTable::new(),
            factory,
        }
    }

    /// Pre-size the table for `n` flows, so steady-state ingest never
    /// rehashes mid-stream. The engine calls this per shard from its
    /// `expected_flows` option.
    pub fn reserve(&mut self, n: usize) {
        self.flows.reserve(n);
    }

    /// Record `item` under `flow`, creating the flow's estimator on
    /// first sight.
    #[inline]
    pub fn record(&mut self, flow: u64, item: &[u8]) {
        self.flows
            .get_or_insert_with(flow, &self.factory)
            .record(item);
    }

    /// Record a pre-computed hash under `flow`. The hash **must** come
    /// from the scheme of the estimator the factory builds for `flow`
    /// (the engine guarantees this by sharing one spec-derived scheme
    /// across all flows).
    #[inline]
    pub fn record_hash(&mut self, flow: u64, hash: ItemHash) {
        self.flows
            .get_or_insert_with(flow, &self.factory)
            .record_hash(hash);
    }

    /// Record a batch of pre-computed hashes under `flow` through the
    /// estimator's batched path — one table lookup for the whole
    /// batch instead of one per item.
    #[inline]
    pub fn record_hashes(&mut self, flow: u64, hashes: &[ItemHash]) {
        self.flows
            .get_or_insert_with(flow, &self.factory)
            .record_hashes(hashes);
    }

    /// Mutably borrow `flow`'s estimator, creating it on first sight —
    /// lets a grouped caller resolve the estimator once and record a
    /// whole run of items against it.
    #[inline]
    pub fn estimator_mut(&mut self, flow: u64) -> &mut E {
        self.flows.get_or_insert_with(flow, &self.factory)
    }

    /// Estimate the cardinality of `flow`; `None` if never seen.
    pub fn estimate(&self, flow: u64) -> Option<f64> {
        self.flows.get(flow).map(|e| e.estimate())
    }

    /// Borrow a flow's estimator.
    pub fn get(&self, flow: u64) -> Option<&E> {
        self.flows.get(flow)
    }

    /// Insert `flow`'s estimator directly, replacing and returning any
    /// previous one. The engine's restore path places estimators
    /// rebuilt from a checkpoint with this instead of routing them
    /// through the factory (which only knows how to build *empty*
    /// estimators).
    pub fn insert(&mut self, flow: u64, estimator: E) -> Option<E> {
        self.flows.insert(flow, estimator)
    }

    /// Remove `flow` from the table, returning its estimator (e.g. for
    /// eviction of idle flows). Backward-shift deletion: no tombstones
    /// are left to slow later probes.
    pub fn remove(&mut self, flow: u64) -> Option<E> {
        self.flows.remove(flow)
    }

    /// Number of flows tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterate `(flow, estimator)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &E)> {
        self.flows.iter()
    }

    /// Drain the table: remove and yield every `(flow, estimator)`
    /// pair, leaving the table empty (the factory is retained). The
    /// engine uses this to hand shard results back to the caller
    /// without cloning estimators.
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, E)> + '_ {
        self.flows.drain()
    }

    /// Iterate `(flow, estimate)` pairs.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.flows.iter().map(|(k, e)| (k, e.estimate()))
    }

    /// Flows whose estimate is at least `threshold` (the scan/DDoS
    /// report of the paper's introduction), largest first. The
    /// threshold filter runs before the sort, and the sort is an
    /// unstable pattern-defeating quicksort — no allocation beyond the
    /// surviving entries, no stable-merge scratch buffer.
    pub fn flows_over(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .estimates()
            .filter(|&(_, est)| est >= threshold)
            .collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("estimates are finite")
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Total memory across all per-flow estimators, in bits.
    pub fn total_memory_bits(&self) -> usize {
        self.flows.iter().map(|(_, e)| e.memory_bits()).sum()
    }

    /// Drop all flows.
    pub fn clear(&mut self) {
        self.flows.clear();
    }
}

impl<E: CardinalityEstimator, F> std::fmt::Debug for FlowTable<E, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("flows", &self.flows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smb_core::Smb;
    use smb_hash::HashScheme;

    fn table() -> FlowTable<Smb> {
        FlowTable::new(|flow| {
            Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).expect("valid params")
        })
    }

    #[test]
    fn tracks_flows_independently() {
        let mut t = table();
        for i in 0..1000u32 {
            t.record(1, &i.to_le_bytes());
        }
        for i in 0..100u32 {
            t.record(2, &i.to_le_bytes());
        }
        assert_eq!(t.len(), 2);
        let e1 = t.estimate(1).expect("flow 1 exists");
        let e2 = t.estimate(2).expect("flow 2 exists");
        assert!((e1 - 1000.0).abs() / 1000.0 < 0.25, "{e1}");
        assert!((e2 - 100.0).abs() / 100.0 < 0.35, "{e2}");
        assert_eq!(t.estimate(3), None);
    }

    #[test]
    fn flows_over_ranks_descending() {
        let mut t = table();
        for (flow, n) in [(10u64, 2000u32), (20, 500), (30, 1500)] {
            for i in 0..n {
                t.record(flow, &i.to_le_bytes());
            }
        }
        let over = t.flows_over(1000.0);
        assert_eq!(over.len(), 2);
        assert_eq!(over[0].0, 10);
        assert_eq!(over[1].0, 30);
    }

    #[test]
    fn flows_over_descending_order_is_pinned() {
        // Many flows, including estimate ties (same item count, same
        // per-flow scheme derivation disabled by a shared scheme):
        // the result must be strictly sorted by (estimate desc, flow
        // asc) — fully deterministic.
        let scheme = HashScheme::with_seed(9);
        let mut t: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(4096, 256, scheme).unwrap());
        for flow in 0..40u64 {
            let n = 100 + (flow % 7) * 400;
            for i in 0..n {
                t.record(flow, &(i ^ (flow << 32)).to_le_bytes());
            }
        }
        let over = t.flows_over(150.0);
        assert!(!over.is_empty());
        for pair in over.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "order violated: {pair:?}"
            );
        }
        // Everything reported clears the threshold; nothing below it
        // leaks in.
        assert!(over.iter().all(|&(_, est)| est >= 150.0));
        let expected = t.estimates().filter(|&(_, e)| e >= 150.0).count();
        assert_eq!(over.len(), expected);
    }

    #[test]
    fn reserve_then_record_never_loses_flows() {
        let mut t = table();
        t.reserve(500);
        for flow in 0..500u64 {
            t.record(flow, b"x");
        }
        assert_eq!(t.len(), 500);
        for flow in 0..500u64 {
            assert!(t.estimate(flow).is_some(), "flow {flow}");
        }
    }

    #[test]
    fn insert_places_restored_estimator() {
        let scheme = HashScheme::with_seed(5);
        let mut t: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        // A "restored" estimator arrives pre-populated from elsewhere.
        let mut restored = Smb::with_scheme(2048, 128, scheme).unwrap();
        for i in 0..500u32 {
            restored.record(&i.to_le_bytes());
        }
        let expect = restored.estimate();
        assert!(t.insert(42, restored).is_none());
        assert_eq!(t.estimate(42), Some(expect));
        // Recording continues on the inserted instance, not a fresh one.
        t.record(42, &9_999u32.to_le_bytes());
        assert!(t.estimate(42).unwrap() >= expect);
        // Replacement hands back the resident estimator.
        let fresh = Smb::with_scheme(2048, 128, scheme).unwrap();
        let old = t.insert(42, fresh).expect("flow 42 was resident");
        assert!(old.estimate() >= expect);
        assert_eq!(t.estimate(42), Some(0.0));
    }

    #[test]
    fn remove_evicts_single_flow() {
        let mut t = table();
        for i in 0..100u32 {
            t.record(1, &i.to_le_bytes());
            t.record(2, &i.to_le_bytes());
        }
        let evicted = t.remove(1).expect("flow 1 resident");
        assert!(evicted.estimate() > 0.0);
        assert_eq!(t.remove(1).map(|e| e.estimate()), None);
        assert_eq!(t.estimate(1), None);
        assert!(t.estimate(2).is_some(), "unrelated flow survives");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn memory_accounting_sums_flows() {
        let mut t = table();
        t.record(1, b"a");
        t.record(2, b"b");
        assert_eq!(t.total_memory_bits(), 2 * 2048);
    }

    #[test]
    fn clear_empties() {
        let mut t = table();
        t.record(1, b"a");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.estimate(1), None);
    }

    #[test]
    fn record_hash_equals_record() {
        // One shared scheme across flows, as the engine configures it.
        let scheme = HashScheme::with_seed(5);
        let mut by_item: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        let mut by_hash: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        let mut hashes = Vec::new();
        for i in 0..2000u32 {
            let flow = (i % 3) as u64;
            let item = i.to_le_bytes();
            by_item.record(flow, &item);
            hashes.push((flow, scheme.item_hash(&item)));
        }
        for (flow, h) in &hashes {
            by_hash.record_hash(*flow, *h);
        }
        for flow in 0..3u64 {
            assert_eq!(by_item.estimate(flow), by_hash.estimate(flow), "flow {flow}");
        }
        // Batched per-flow path agrees too.
        let mut batched: FlowTable<Smb> =
            FlowTable::new(move |_| Smb::with_scheme(2048, 128, scheme).unwrap());
        for flow in 0..3u64 {
            let of_flow: Vec<_> = hashes
                .iter()
                .filter(|(f, _)| *f == flow)
                .map(|&(_, h)| h)
                .collect();
            batched.record_hashes(flow, &of_flow);
            assert_eq!(batched.estimate(flow), by_item.estimate(flow), "flow {flow}");
        }
    }

    #[test]
    fn non_send_factory_is_accepted() {
        // The factory captures an Rc, which is !Send — fine for a
        // thread-local table.
        let shared = std::rc::Rc::new(2048usize);
        let mut t = FlowTable::new(move |flow| {
            Smb::with_scheme(*shared, 128, HashScheme::with_seed(flow)).unwrap()
        });
        t.record(1, b"a");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concrete_factory_table_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let t = FlowTable::with_factory(|flow: u64| {
            Smb::with_scheme(2048, 128, HashScheme::with_seed(flow)).unwrap()
        });
        assert_send(&t);
    }

    #[test]
    fn iter_and_drain() {
        let mut t = table();
        t.record(7, b"a");
        t.record(8, b"b");
        let mut seen: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![7, 8]);
        let drained: Vec<(u64, Smb)> = t.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(t.is_empty());
        // The factory survives a drain: the table is still usable.
        t.record(9, b"c");
        assert_eq!(t.len(), 1);
    }
}
