//! Open-addressed hash table keyed by pre-hashed 64-bit flow ids.
//!
//! The flow keys reaching [`crate::FlowTable`] are already uniform
//! 64-bit values (the engine's producers hash packet headers before
//! dispatch), so paying SipHash through `std::collections::HashMap`
//! on every record is pure overhead. This table replaces it with the
//! layout the hot ingest path wants:
//!
//! * **Cheap mixing.** A key's home slot is `moremur(key) & (cap − 1)`
//!   — one multiply-xor finalizer instead of a full keyed hash. The
//!   finalizer gives full avalanche, so even adversarially patterned
//!   flow ids (sequential integers, aligned addresses) spread evenly.
//! * **Split arrays.** Probe metadata (one byte per slot: probe
//!   distance + 1, 0 = empty), keys, and values live in three parallel
//!   arrays. A probe touches the byte array (a few KB — effectively
//!   always cache-resident) and the key array; values are only loaded
//!   on a hit. Storing each resident's distance also means the
//!   robin-hood early-exit never re-mixes resident keys mid-probe.
//! * **Linear probing, power-of-two capacity.** Probes walk
//!   consecutive slots, so a lookup touches one or two cache lines
//!   instead of chasing bucket pointers.
//! * **Robin-hood insertion.** An inserting entry steals the slot of
//!   any resident entry closer to its own home ("richer"), bounding
//!   the variance of probe lengths; lookups can stop as soon as they
//!   reach an entry richer than the probe distance, so *misses* are as
//!   cheap as hits even near the load limit.
//! * **Tombstone-free deletion.** [`OpenTable::remove`] backward-shifts
//!   the following cluster instead of leaving tombstones, so probe
//!   sequences never degrade under churn.
//! * **Amortised growth.** The table doubles when occupancy crosses
//!   7/8 of capacity; [`OpenTable::reserve`] pre-sizes it so a
//!   steady-state ingest never rehashes mid-stream.

use smb_hash::mix::moremur;

use crate::prefetch::prefetch_read;

/// Occupancy limit: grow when `len` would exceed `cap − cap/8`
/// (a 7/8 = 87.5% load factor — robin-hood keeps probe lengths short
/// even this full).
fn max_len_for(cap: usize) -> usize {
    cap - cap / 8
}

/// Smallest power-of-two capacity that can hold `n` entries without
/// crossing the load limit: round `n` up against the 7/8 load factor
/// *first* (`⌈8n/7⌉ = n + ⌈n/7⌉`), then to the next power of two.
/// The order matters — rounding to a power of two before applying the
/// load factor can land one growth step short (e.g. presizing for
/// 1793 flows must yield 4096 slots, since 2048 slots only admit
/// 1792 entries), and a short reserve means the engine's
/// `expected_flows` contract of "no mid-stream rehash" breaks.
fn capacity_for(n: usize) -> usize {
    let loaded = n + n.div_ceil(7);
    loaded.next_power_of_two().max(8)
}

/// Largest probe distance the one-byte metadata can record. With
/// moremur-mixed keys and the 7/8 load cap, real probe sequences stay
/// under a few dozen; hitting this bound forces a growth instead of
/// corrupting the metadata.
const MAX_DIST: usize = 254;

/// Miss sentinel in [`OpenTable::probe_batch`] output: the key is not
/// resident. (Slot indices fit in `u32` because per-flow tables stay
/// far below 2³² slots; the table debug-asserts this.)
pub const PROBE_MISS: u32 = u32::MAX;

/// Keys staged per prefetch pass of [`OpenTable::probe_batch`] — the
/// pipeline depth. Each staged key issues its home-slot prefetches
/// before any key in the chunk starts probing, so up to this many
/// slot loads are in flight at once. 16 is deep enough to cover DRAM
/// latency (~16 independent line fills saturate a core's miss
/// buffers) while keeping the stage buffers two cache lines of stack.
const PROBE_PIPELINE: usize = 16;

/// An open-addressed map from pre-hashed `u64` keys to values.
///
/// Not a general-purpose map: keys are assumed to already be uniform
/// 64-bit hashes (flow ids), there is no entry API beyond
/// [`OpenTable::get_or_insert_with`], and iteration order is the slot
/// order (deterministic for a given insertion/removal sequence).
#[derive(Clone)]
pub struct OpenTable<V> {
    /// Per-slot probe distance + 1; 0 = empty. Capacity is zero (no
    /// allocation) until the first insert or reserve.
    dists: Vec<u8>,
    keys: Vec<u64>,
    vals: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for OpenTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> OpenTable<V> {
    /// An empty table. Allocates nothing until the first insert.
    pub fn new() -> Self {
        OpenTable {
            dists: Vec::new(),
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
        }
    }

    /// An empty table pre-sized for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        let mut t = Self::new();
        t.reserve(n);
        t
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (power of two, or 0 before first use).
    /// Exposed so tests can pin "reserve means no mid-stream rehash".
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Ensure the table can hold `n` entries total without growing.
    pub fn reserve(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let needed = capacity_for(n.max(self.len));
        if needed > self.keys.len() {
            self.rehash(needed);
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Power-of-two capacity: mask the mixed key.
        (moremur(key) as usize) & (self.keys.len() - 1)
    }

    /// Slot of `key`, or `None`. A single comparison per step covers
    /// both exits: stored distance 0 is an empty slot, and a stored
    /// distance ≤ the running probe distance is an entry richer than
    /// `key` could be (the robin-hood invariant guarantees `key`
    /// cannot sit further from home than any resident it probes past).
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let home = (moremur(key) as usize) & (self.keys.len() - 1);
        self.probe_from(key, home)
    }

    /// The probe walk of [`OpenTable::find`] from a pre-computed home
    /// slot — shared with [`OpenTable::probe_batch`], whose pass one
    /// computes (and prefetches) homes ahead of this walk.
    #[inline]
    fn probe_from(&self, key: u64, home: usize) -> Option<usize> {
        // Equal-length local slices + masked indices let the compiler
        // drop the per-step bounds checks from the probe loop.
        let n = self.keys.len();
        let keys = &self.keys[..n];
        let dists = &self.dists[..n];
        let mask = n - 1;
        let mut pos = home;
        let mut dist = 0usize;
        loop {
            let d = dists[pos] as usize;
            if d <= dist {
                return None;
            }
            if keys[pos] == key {
                return Some(pos);
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
    }

    /// Resolve the slot of every key in `keys` into `out` (cleared
    /// first): the slot index, or [`PROBE_MISS`] for keys not
    /// resident. This is the batched form of the internal `find`,
    /// pipelined in chunks of `PROBE_PIPELINE` (16): pass one mixes each
    /// key to its home slot and issues software prefetches for the
    /// slot's metadata and key lines ([`crate::prefetch`]), pass two
    /// walks the probe sequences — by which point the lines are in
    /// flight or resident, so the walk is issue-bound instead of
    /// load-latency-bound.
    ///
    /// Returned slots stay valid across reads and in-place value
    /// mutation ([`OpenTable::slot_get`] / [`OpenTable::slot_mut`])
    /// but **not** across insertion, removal or growth: robin-hood
    /// insertion steals residents' slots and backward-shift deletion
    /// moves them. Callers insert first, then re-probe (see
    /// `FlowTable::record_batch`).
    pub fn probe_batch(&self, keys: impl IntoIterator<Item = u64>, out: &mut Vec<u32>) {
        out.clear();
        let mut it = keys.into_iter();
        if self.len == 0 {
            out.extend(it.map(|_| PROBE_MISS));
            return;
        }
        debug_assert!(
            self.keys.len() - 1 < PROBE_MISS as usize,
            "slot indices must fit below the miss sentinel"
        );
        // Two independent gates: home-slot hints only pay once the
        // probe arrays themselves (9 bytes/slot) outrun the private
        // caches, while value hints pay as soon as the whole table
        // (values included) does — values are wider and their heap
        // payloads larger still, so they fall out of cache first.
        let hint_home = self.keys.len() * 9 > 512 * 1024;
        let hint_val = self.prefetch_pays();
        let mask = self.keys.len() - 1;
        let mut staged_keys = [0u64; PROBE_PIPELINE];
        let mut staged_homes = [0usize; PROBE_PIPELINE];
        loop {
            let mut staged = 0;
            while staged < PROBE_PIPELINE {
                let Some(key) = it.next() else { break };
                let home = (moremur(key) as usize) & mask;
                if hint_home {
                    prefetch_read(&self.dists[home]);
                    prefetch_read(&self.keys[home]);
                }
                staged_keys[staged] = key;
                staged_homes[staged] = home;
                staged += 1;
            }
            for i in 0..staged {
                out.push(match self.probe_from(staged_keys[i], staged_homes[i]) {
                    Some(pos) => {
                        // Start the value line toward cache now: the
                        // record pass that consumes these slots runs
                        // within the same chunk, close enough that the
                        // line is still at least L2-resident.
                        if hint_val {
                            prefetch_read(&self.vals[pos]);
                        }
                        pos as u32
                    }
                    None => PROBE_MISS,
                });
            }
            if staged < PROBE_PIPELINE {
                break;
            }
        }
    }

    /// Whether value-side prefetch hints pay for themselves on this
    /// table: only once the slot arrays outgrow the capacity a core's
    /// private caches keep resident. Hinting a line that is already in
    /// L1/L2 costs an issue slot per hint and saves nothing —
    /// measurably so on the hot record loop — so small tables skip the
    /// hints and rely on the caches they fit inside.
    #[inline]
    pub fn prefetch_pays(&self) -> bool {
        const CACHE_RESIDENT_BYTES: usize = 192 * 1024;
        let slot = std::mem::size_of::<u64>() + 1 + std::mem::size_of::<Option<V>>();
        self.keys.len() * slot > CACHE_RESIDENT_BYTES
    }

    /// Borrow the value at a slot resolved by
    /// [`OpenTable::probe_batch`]. Panics on an empty slot — callers
    /// only pass resolved (non-[`PROBE_MISS`]) slots.
    #[inline]
    pub fn slot_get(&self, slot: u32) -> &V {
        self.vals[slot as usize]
            .as_ref()
            .expect("resolved slot is occupied")
    }

    /// Hint the value at a resolved slot into cache ahead of a
    /// [`OpenTable::slot_mut`] access — the record loop's lookahead.
    /// Purely advisory, like all prefetches.
    #[inline]
    pub fn prefetch_slot_value(&self, slot: u32) {
        prefetch_read(&self.vals[slot as usize]);
    }

    /// Mutably borrow the value at a slot resolved by
    /// [`OpenTable::probe_batch`] — the batched record loop's access
    /// path. In-place mutation (including replacing the value) never
    /// moves entries, so other resolved slots stay valid. Panics on
    /// an empty slot.
    #[inline]
    pub fn slot_mut(&mut self, slot: u32) -> &mut V {
        self.vals[slot as usize]
            .as_mut()
            .expect("resolved slot is occupied")
    }

    /// Robin-hood placement of a key known absent: the carried entry
    /// steals the slot of any richer resident, which then carries on
    /// probing (our key stays put once parked). `Err` returns the
    /// entry left in hand if a probe distance would overflow the
    /// metadata byte — the caller grows the table and retries.
    fn try_insert(&mut self, key: u64, value: V) -> Result<usize, (u64, V)> {
        let mask = self.keys.len() - 1;
        let mut pos = self.home(key);
        let mut dist = 0usize;
        let mut ckey = key;
        let mut cval = value;
        let mut landed: Option<usize> = None;
        let mut original_carried = true;
        loop {
            if dist > MAX_DIST {
                return Err((ckey, cval));
            }
            let d = self.dists[pos] as usize;
            if d == 0 {
                self.dists[pos] = (dist + 1) as u8;
                self.keys[pos] = ckey;
                self.vals[pos] = Some(cval);
                self.len += 1;
                return Ok(landed.unwrap_or(pos));
            }
            if d - 1 < dist {
                std::mem::swap(&mut self.keys[pos], &mut ckey);
                cval = self.vals[pos].replace(cval).expect("slot is occupied");
                self.dists[pos] = (dist + 1) as u8;
                if original_carried {
                    landed = Some(pos);
                    original_carried = false;
                }
                dist = d - 1;
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
    }

    /// Insert `key` (known absent, capacity pre-checked), returning the
    /// slot where *this* key came to rest.
    fn insert_new(&mut self, key: u64, value: V) -> usize {
        debug_assert!(self.len < max_len_for(self.keys.len()));
        match self.try_insert(key, value) {
            Ok(pos) => pos,
            Err(carried) => {
                // A probe ran past the metadata range (statistically
                // unreachable with mixed keys): grow until the carried
                // entry places, then re-locate the original key — its
                // slot moved with the rehash.
                let mut pending = Some(carried);
                while let Some((k, v)) = pending.take() {
                    let cap = (self.keys.len() * 2).max(8);
                    self.rehash(cap);
                    if let Err(again) = self.try_insert(k, v) {
                        pending = Some(again);
                    }
                }
                self.find(key).expect("inserted key is resident")
            }
        }
    }

    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old_dists = std::mem::replace(&mut self.dists, vec![0; new_cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let mut new_vals = Vec::with_capacity(new_cap);
        new_vals.resize_with(new_cap, || None);
        let old_vals = std::mem::replace(&mut self.vals, new_vals);
        self.len = 0;
        for ((d, k), v) in old_dists.into_iter().zip(old_keys).zip(old_vals) {
            if d != 0 {
                self.insert_new(k, v.expect("slot is occupied"));
            }
        }
    }

    /// Borrow `key`'s value.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .map(|pos| self.vals[pos].as_ref().expect("found slot is occupied"))
    }

    /// Mutably borrow `key`'s value.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key)
            .map(|pos| self.vals[pos].as_mut().expect("found slot is occupied"))
    }

    /// Borrow `key`'s value, inserting `make(key)` first if absent —
    /// the one lookup the record path performs.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce(u64) -> V) -> &mut V {
        let pos = match self.find(key) {
            Some(pos) => pos,
            None => {
                if self.keys.is_empty() || self.len + 1 > max_len_for(self.keys.len()) {
                    let cap = (self.keys.len() * 2).max(8);
                    self.rehash(cap);
                }
                let value = make(key);
                self.insert_new(key, value)
            }
        };
        self.vals[pos].as_mut().expect("found slot is occupied")
    }

    /// Insert `key` with `value`, replacing and returning any previous
    /// value. The restore path's entry point: values rebuilt from a
    /// checkpoint are placed directly instead of coming out of the
    /// [`OpenTable::get_or_insert_with`] factory closure.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let Some(pos) = self.find(key) {
            return self.vals[pos].replace(value);
        }
        if self.keys.is_empty() || self.len + 1 > max_len_for(self.keys.len()) {
            let cap = (self.keys.len() * 2).max(8);
            self.rehash(cap);
        }
        self.insert_new(key, value);
        None
    }

    /// Remove `key`, returning its value. Backward-shifts the
    /// following probe cluster so no tombstone is left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let pos = self.find(key)?;
        let value = self.vals[pos].take().expect("found slot is occupied");
        self.dists[pos] = 0;
        self.len -= 1;
        let mask = self.keys.len() - 1;
        let mut hole = pos;
        loop {
            let next = (hole + 1) & mask;
            let d = self.dists[next];
            // Stop at an empty slot (0) or an entry already at home (1).
            if d <= 1 {
                break;
            }
            self.keys[hole] = self.keys[next];
            self.vals[hole] = self.vals[next].take();
            self.dists[hole] = d - 1;
            self.dists[next] = 0;
            hole = next;
        }
        Some(value)
    }

    /// Iterate `(key, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.dists
            .iter()
            .zip(&self.keys)
            .zip(&self.vals)
            .filter(|((&d, _), _)| d != 0)
            .map(|((_, &k), v)| (k, v.as_ref().expect("slot is occupied")))
    }

    /// Remove and yield every entry, leaving the table empty with its
    /// capacity intact. Entries not consumed by the iterator are still
    /// removed when it drops (matching `HashMap::drain`).
    pub fn drain(&mut self) -> Drain<'_, V> {
        self.len = 0;
        Drain {
            slots: self.dists.iter_mut().zip(self.keys.iter().zip(self.vals.iter_mut())),
        }
    }

    /// Remove every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.dists.fill(0);
        for v in &mut self.vals {
            *v = None;
        }
        self.len = 0;
    }

    /// Stored probe distance of the entry at `pos`, if any — test-only
    /// visibility into the robin-hood invariant.
    #[cfg(test)]
    fn stored_dist(&self, pos: usize) -> Option<usize> {
        match self.dists[pos] {
            0 => None,
            d => Some(d as usize - 1),
        }
    }
}

/// Draining iterator over an [`OpenTable`]; see [`OpenTable::drain`].
pub struct Drain<'a, V> {
    #[allow(clippy::type_complexity)]
    slots: std::iter::Zip<
        std::slice::IterMut<'a, u8>,
        std::iter::Zip<std::slice::Iter<'a, u64>, std::slice::IterMut<'a, Option<V>>>,
    >,
}

impl<V> Iterator for Drain<'_, V> {
    type Item = (u64, V);

    fn next(&mut self) -> Option<(u64, V)> {
        for (d, (&k, v)) in self.slots.by_ref() {
            if *d != 0 {
                *d = 0;
                return Some((k, v.take().expect("slot is occupied")));
            }
        }
        None
    }
}

impl<V> Drop for Drain<'_, V> {
    fn drop(&mut self) {
        for (d, (_, v)) in self.slots.by_ref() {
            *d = 0;
            *v = None;
        }
    }
}

impl<V> std::fmt::Debug for OpenTable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenTable")
            .field("len", &self.len)
            .field("capacity", &self.keys.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_allocates_nothing() {
        let t: OpenTable<u32> = OpenTable::new();
        assert_eq!(t.capacity(), 0);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
    }

    #[test]
    fn insert_get_roundtrip_including_key_zero() {
        let mut t = OpenTable::new();
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            *t.get_or_insert_with(key, |k| k as u32) = (key as u32).wrapping_add(1);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0), Some(&1));
        assert_eq!(t.get(u64::MAX), Some(&(u64::MAX as u32).wrapping_add(1)));
        assert_eq!(t.get(2), None);
        // Second lookup finds, not re-inserts.
        *t.get_or_insert_with(0, |_| 999) += 1;
        assert_eq!(t.get(0), Some(&2));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = OpenTable::new();
        for key in 0..10_000u64 {
            t.get_or_insert_with(key, |k| k * 3);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.capacity().is_power_of_two());
        for key in 0..10_000u64 {
            assert_eq!(t.get(key), Some(&(key * 3)), "key {key}");
        }
        // Load factor invariant held throughout.
        assert!(t.len() <= max_len_for(t.capacity()));
    }

    #[test]
    fn reserve_prevents_mid_stream_rehash() {
        let mut t: OpenTable<u64> = OpenTable::new();
        t.reserve(5_000);
        let cap = t.capacity();
        assert!(cap.is_power_of_two());
        assert!(max_len_for(cap) >= 5_000);
        for key in 0..5_000u64 {
            t.get_or_insert_with(key, |k| k);
        }
        assert_eq!(t.capacity(), cap, "no rehash while under the reserved size");
        // Reserving less than what's resident is a no-op.
        t.reserve(10);
        assert_eq!(t.capacity(), cap);
    }

    #[test]
    fn capacity_rounds_against_load_factor_before_pow2() {
        // The exact boundary, at every size the engine presizes in
        // practice: a request of exactly `max_len_for(cap)` entries
        // must yield `cap` slots, and one more entry must take the
        // next growth step — never land one short.
        for cap in [8usize, 16, 256, 1024, 2048, 4096, 1 << 20] {
            let limit = max_len_for(cap);
            assert_eq!(capacity_for(limit), cap, "capacity_for({limit})");
            assert_eq!(capacity_for(limit + 1), cap * 2, "capacity_for({})", limit + 1);
        }
        assert_eq!(capacity_for(1), 8, "minimum capacity");
        // The contract `reserve` + `get_or_insert_with` relies on:
        // filling a reserved table up to the requested count never
        // rehashes, and the next insert doubles.
        let mut t: OpenTable<u64> = OpenTable::new();
        t.reserve(1792); // == max_len_for(2048), the exact boundary
        assert_eq!(t.capacity(), 2048);
        for key in 0..1792u64 {
            t.get_or_insert_with(key, |k| k);
        }
        assert_eq!(t.capacity(), 2048, "reserve landed a growth step short");
        t.get_or_insert_with(1792, |k| k);
        assert_eq!(t.capacity(), 4096);
    }

    #[test]
    fn probe_batch_matches_find_on_hits_misses_and_empty() {
        let mut t: OpenTable<u64> = OpenTable::new();
        let mut slots = Vec::new();
        // Empty table (no allocation yet): everything misses.
        t.probe_batch([1u64, 2, 3].into_iter(), &mut slots);
        assert_eq!(slots, vec![PROBE_MISS; 3]);
        for key in 0..5_000u64 {
            t.get_or_insert_with(key, |k| k * 3);
        }
        // A query mix longer than the pipeline depth, interleaving
        // hits and misses, duplicates included.
        let queries: Vec<u64> = (0..2 * 5_000u64).map(|i| i / 2 + (i % 2) * 5_000).collect();
        t.probe_batch(queries.iter().copied(), &mut slots);
        assert_eq!(slots.len(), queries.len());
        for (&key, &slot) in queries.iter().zip(&slots) {
            if key < 5_000 {
                assert_ne!(slot, PROBE_MISS, "key {key} resident but missed");
                assert_eq!(*t.slot_get(slot), key * 3, "key {key} wrong slot");
                assert_eq!(t.get(key), Some(t.slot_get(slot)), "key {key}");
            } else {
                assert_eq!(slot, PROBE_MISS, "key {key} absent but resolved");
            }
        }
        // Slot-indexed mutation lands where get() sees it.
        t.probe_batch(std::iter::once(7u64), &mut slots);
        *t.slot_mut(slots[0]) = 999;
        assert_eq!(t.get(7), Some(&999));
        // Short tails (under one pipeline chunk) resolve too.
        t.probe_batch(std::iter::once(4_999u64), &mut slots);
        assert_eq!(slots.len(), 1);
        assert_ne!(slots[0], PROBE_MISS);
    }

    #[test]
    fn probe_batch_slots_survive_removal_era_only() {
        // Pin the documented invalidation contract: slots resolved
        // before a remove may dangle (backward shift moves entries),
        // but re-probing after mutation is always consistent.
        let mut t: OpenTable<u64> = OpenTable::new();
        for key in 0..500u64 {
            t.get_or_insert_with(key, |k| k);
        }
        let mut slots = Vec::new();
        for key in (0..500u64).step_by(2) {
            t.remove(key);
        }
        let queries: Vec<u64> = (0..500).collect();
        t.probe_batch(queries.iter().copied(), &mut slots);
        for (&key, &slot) in queries.iter().zip(&slots) {
            if key % 2 == 0 {
                assert_eq!(slot, PROBE_MISS, "removed key {key} resolved");
            } else {
                assert_eq!(*t.slot_get(slot), key, "survivor {key}");
            }
        }
    }

    #[test]
    fn insert_places_and_replaces() {
        let mut t = OpenTable::new();
        assert_eq!(t.insert(5, 50u64), None);
        assert_eq!(t.insert(5, 51), Some(50), "replace returns the old value");
        assert_eq!(t.get(5), Some(&51));
        assert_eq!(t.len(), 1);
        // Direct inserts interleave cleanly with the factory path and
        // survive growth.
        for key in 0..5_000u64 {
            assert_eq!(t.insert(key, key * 2), if key == 5 { Some(51) } else { None });
        }
        for key in 0..5_000u64 {
            assert_eq!(t.get(key), Some(&(key * 2)), "key {key}");
        }
        *t.get_or_insert_with(9, |_| unreachable!("9 is resident")) += 1;
        assert_eq!(t.get(9), Some(&19));
    }

    #[test]
    fn remove_backward_shift_keeps_probes_intact() {
        // Insert enough keys that probe clusters form, then remove in a
        // pattern that would strand tombstone-based probing.
        let mut t = OpenTable::new();
        let n = 2_000u64;
        for key in 0..n {
            t.get_or_insert_with(key, |k| k);
        }
        for key in (0..n).step_by(3) {
            assert_eq!(t.remove(key), Some(key), "key {key}");
            assert_eq!(t.remove(key), None, "double remove of {key}");
        }
        for key in 0..n {
            if key % 3 == 0 {
                assert_eq!(t.get(key), None, "removed key {key} resurfaced");
            } else {
                assert_eq!(t.get(key), Some(&key), "survivor {key} lost");
            }
        }
        assert_eq!(t.len() as u64, n - n.div_ceil(3));
    }

    #[test]
    fn robin_hood_invariant_holds() {
        // Every resident entry must sit at most as far from home as any
        // entry that probed past its slot — equivalently, walking any
        // cluster, probe distances may drop by at most 1 per step.
        let mut t = OpenTable::new();
        for key in 0..5_000u64 {
            t.get_or_insert_with(key.wrapping_mul(0x9E37_79B9_7F4A_7C15), |_| ());
        }
        for key in (0..5_000u64).step_by(7) {
            t.remove(key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let cap = t.capacity();
        for pos in 0..cap {
            let Some(dist) = t.stored_dist(pos) else { continue };
            let prev = (pos + cap - 1) & (cap - 1);
            match t.stored_dist(prev) {
                None => assert_eq!(dist, 0, "entry at {pos} probes across an empty slot"),
                Some(prev_dist) => {
                    assert!(
                        dist <= prev_dist + 1,
                        "robin-hood violated at slot {pos}: dist {dist} after {prev_dist}"
                    );
                }
            }
        }
        // The stored distance must also be the true distance from home.
        for pos in 0..cap {
            if t.stored_dist(pos).is_some() {
                let key = t.keys[pos];
                let true_dist = (pos.wrapping_sub(t.home(key))) & (cap - 1);
                assert_eq!(
                    t.stored_dist(pos),
                    Some(true_dist),
                    "stale distance metadata at slot {pos}"
                );
            }
        }
    }

    #[test]
    fn iter_and_drain_yield_everything() {
        let mut t = OpenTable::new();
        for key in 0..100u64 {
            t.get_or_insert_with(key, |k| k + 1);
        }
        let mut seen: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        let cap = t.capacity();
        let mut drained: Vec<(u64, u64)> = t.drain().collect();
        drained.sort_unstable();
        assert_eq!(drained.len(), 100);
        assert!(drained.iter().all(|&(k, v)| v == k + 1));
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap, "drain keeps the allocation");
        // Still usable after drain.
        t.get_or_insert_with(7, |_| 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn partially_consumed_drain_still_empties() {
        let mut t = OpenTable::new();
        for key in 0..50u64 {
            t.get_or_insert_with(key, |k| k);
        }
        {
            let mut d = t.drain();
            let _ = d.next();
            let _ = d.next();
        } // dropped with 48 entries unconsumed
        assert!(t.is_empty());
        assert_eq!(t.get(40), None);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t = OpenTable::new();
        for key in 0..1000u64 {
            t.get_or_insert_with(key, |k| k);
        }
        let cap = t.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = OpenTable::new();
        t.get_or_insert_with(9, |_| vec![1u8]);
        t.get_mut(9).unwrap().push(2);
        assert_eq!(t.get(9), Some(&vec![1, 2]));
        assert_eq!(t.get_mut(10), None);
    }

    #[test]
    fn churn_against_hashmap_model() {
        use std::collections::HashMap;
        let mut table: OpenTable<u64> = OpenTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x5EED_u64;
        for step in 0..50_000u64 {
            state = smb_hash::splitmix::splitmix64_mix(state.wrapping_add(step));
            let key = state % 700; // enough collisions on 700 hot keys
            match state >> 61 {
                0 | 1 | 2 | 3 | 4 => {
                    *table.get_or_insert_with(key, |_| 0) += 1;
                    *model.entry(key).or_insert(0) += 1;
                }
                5 | 6 => {
                    assert_eq!(table.remove(key), model.remove(&key), "step {step}");
                }
                _ => {
                    assert_eq!(table.get(key), model.get(&key), "step {step}");
                }
            }
            assert_eq!(table.len(), model.len(), "step {step}");
        }
        let mut got: Vec<(u64, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
