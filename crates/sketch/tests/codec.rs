//! Property suites for the compressed cell-state / flow-block codec.
//!
//! The codec's contract is *unconditional losslessness*: for every
//! JSON state — canonical tier wrappers, canonical estimator states,
//! or arbitrary objects that fall back to the JSON frame —
//! `decode(encode(state)) == state` bit-for-bit, and no input bytes,
//! however hostile, make the decoder panic or allocate unboundedly.
//! Each suite drives the codec with randomized states and adversarial
//! byte-level corruptions of their encodings.
//!
//! Reproduce a failure with `SMB_PROP_SEED=<seed printed on failure>`.

use smb_devtools::prop::gens;
use smb_devtools::{forall, prop_assert, prop_assert_eq, Json};
use smb_sketch::codec::{
    decode_cell_state, decode_flow_block, encode_cell_state, encode_flow_block, read_varint,
    write_varint, zigzag_decode, zigzag_encode,
};

/// Build a canonical hash scheme object (`{"algorithm", "seed"}`).
fn scheme_json(alg: u8, seed: u64) -> Json {
    let name = match alg % 3 {
        0 => "xxh64",
        1 => "murmur3_128_low",
        _ => "fnv1a_mixed",
    };
    Json::Obj(vec![
        ("algorithm".into(), Json::str(name)),
        ("seed".into(), Json::Int(seed as i128)),
    ])
}

/// Build a canonical tier wrapper from raw draws: dedups and truncates
/// to the tier's capacity so the shape is exactly what
/// `FlowCell::snapshot_state` emits.
fn tier_json(small: bool, raw: &[u64]) -> Json {
    let cap = if small { 1 } else { 16 };
    let mut hashes: Vec<u64> = Vec::new();
    for &h in raw {
        if hashes.len() == cap {
            break;
        }
        if !hashes.contains(&h) {
            hashes.push(h);
        }
    }
    Json::Obj(vec![
        (
            "tier".into(),
            Json::str(if small { "small" } else { "array" }),
        ),
        (
            "hashes".into(),
            Json::Arr(hashes.iter().map(|&h| Json::Int(h as i128)).collect()),
        ),
    ])
}

/// Build a canonical SMB state from raw draws: `ones` become a sorted,
/// deduplicated, in-range ascending index list as `BitVec::to_json`
/// would emit.
fn smb_json(alg: u8, seed: u64, m: usize, t: u64, r: u64, v: u64, raw_ones: &[u64]) -> Json {
    let mut ones: Vec<usize> = raw_ones.iter().map(|&o| (o as usize) % m.max(1)).collect();
    ones.sort_unstable();
    ones.dedup();
    Json::Obj(vec![
        ("scheme".into(), scheme_json(alg, seed)),
        ("m".into(), Json::Int(m as i128)),
        ("t".into(), Json::Int(t as i128)),
        ("r".into(), Json::Int(r as i128)),
        ("v".into(), Json::Int(v as i128)),
        (
            "bits".into(),
            Json::Obj(vec![
                ("len".into(), Json::Int(m as i128)),
                (
                    "ones".into(),
                    Json::Arr(ones.iter().map(|&i| Json::Int(i as i128)).collect()),
                ),
            ]),
        ),
    ])
}

/// A non-canonical state: field order / names the strict readers must
/// refuse, forcing the JSON fallback frame.
fn oddball_json(tag: u64, payload: u64) -> Json {
    match tag % 4 {
        0 => Json::Obj(vec![
            // tier wrapper fields in the wrong order
            ("hashes".into(), Json::Arr(vec![Json::Int(payload as i128)])),
            ("tier".into(), Json::str("small")),
        ]),
        1 => Json::Obj(vec![
            ("tier".into(), Json::str("giant")), // unknown tier name
            ("hashes".into(), Json::Arr(vec![])),
        ]),
        2 => Json::Obj(vec![
            ("estimate".into(), Json::Float(payload as f64 * 0.5)),
            ("note".into(), Json::str("free-form estimator state")),
        ]),
        _ => Json::Arr(vec![Json::Int(payload as i128), Json::Null, Json::Bool(true)]),
    }
}

#[test]
fn varint_and_zigzag_round_trip() {
    forall!(cases = 256, (value in gens::u64s(0..u64::MAX)) => {
        let mut buf = Vec::new();
        write_varint(&mut buf, value);
        prop_assert!(buf.len() <= 10, "varint never exceeds 10 bytes");
        let mut pos = 0;
        let back = match read_varint(&buf, &mut pos) {
            Ok(v) => v,
            Err(e) => return Err(smb_devtools::prop::PropError::fail(format!("{e}"))),
        };
        prop_assert_eq!(back, value);
        prop_assert_eq!(pos, buf.len(), "read consumes exactly what write produced");

        let signed = value as i64;
        prop_assert_eq!(zigzag_decode(zigzag_encode(signed)), signed);
    });
}

#[test]
fn cell_states_round_trip_across_all_tiers() {
    forall!(cases = 128, (kind in gens::u8s(0..5),
                          raw in gens::vecs(gens::u64s(0..u64::MAX), 0..24),
                          alg in gens::u8s(0..3),
                          seed in gens::u64s(0..u64::MAX),
                          ) => {
        let m = 64 + (seed % 4096) as usize;
        let t = 1 + seed % 1024;
        let state = match kind {
            0 => tier_json(true, &raw),
            1 => tier_json(false, &raw),
            2 => smb_json(alg, seed, m, t, seed % 32, seed % t, &raw),
            3 => Json::Obj(vec![
                ("scheme".into(), scheme_json(alg, seed)),
                ("bits".into(), Json::Obj(vec![
                    ("len".into(), Json::Int(m as i128)),
                    ("ones".into(), Json::Arr(
                        raw.iter().map(|&o| (o as usize) % m).collect::<std::collections::BTreeSet<_>>()
                            .into_iter().map(|i| Json::Int(i as i128)).collect(),
                    )),
                ])),
            ]),
            _ => oddball_json(seed, raw.first().copied().unwrap_or(0)),
        };
        let bytes = encode_cell_state(&state);
        let back = match decode_cell_state(&bytes) {
            Ok(j) => j,
            Err(e) => return Err(smb_devtools::prop::PropError::fail(format!("decode: {e}"))),
        };
        prop_assert_eq!(back, state, "decode(encode(state)) must be identity");
    });
}

#[test]
fn canonical_states_compress_against_their_json_text() {
    // Representative of real workloads: a dense SMB register state
    // must encode far below its JSON text; the 0.5x checkpoint gate in
    // verify.sh rests on this holding per-cell.
    forall!(cases = 64, (seed in gens::u64s(0..u64::MAX),
                         raw in gens::vecs(gens::u64s(0..u64::MAX), 64..256)) => {
        let m = 1024usize;
        let state = smb_json(0, seed, m, 600, 3, 17, &raw);
        let bytes = encode_cell_state(&state);
        let json_len = state.to_string().len();
        prop_assert!(
            bytes.len() * 2 <= json_len,
            "binary {} bytes vs JSON {} bytes",
            bytes.len(),
            json_len
        );
    });
}

#[test]
fn flow_blocks_round_trip() {
    forall!(cases = 96, (keys in gens::vecs(gens::u64s(0..u64::MAX), 0..40),
                         kinds in gens::vecs(gens::u8s(0..5), 40..41),
                         seed in gens::u64s(0..u64::MAX)) => {
        let mut sorted: Vec<u64> = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let flows: Vec<(u64, Json)> = sorted
            .iter()
            .enumerate()
            .map(|(i, &flow)| {
                let state = match kinds[i % kinds.len()] {
                    0 => tier_json(true, &[flow]),
                    1 => tier_json(false, &[flow, seed, seed ^ flow]),
                    2 => smb_json(0, seed, 128, 40, 1, 7, &[flow % 128, seed % 128]),
                    _ => oddball_json(seed.wrapping_add(flow), flow),
                };
                (flow, state)
            })
            .collect();
        let block = match encode_flow_block(&flows) {
            Ok(b) => b,
            Err(e) => return Err(smb_devtools::prop::PropError::fail(format!("encode: {e}"))),
        };
        prop_assert!(block[..4] == *b"SMB2", "flow blocks start with the magic");
        let back = match decode_flow_block(&block) {
            Ok(f) => f,
            Err(e) => return Err(smb_devtools::prop::PropError::fail(format!("decode: {e}"))),
        };
        prop_assert_eq!(back, flows);
    });
}

#[test]
fn truncated_encodings_error_instead_of_panicking() {
    forall!(cases = 96, (kind in gens::u8s(0..5),
                         raw in gens::vecs(gens::u64s(0..u64::MAX), 1..24),
                         seed in gens::u64s(0..u64::MAX),
                         cut in gens::usizes(0..10_000)) => {
        let state = match kind {
            0 => tier_json(true, &raw),
            1 => tier_json(false, &raw),
            2 => smb_json(kind, seed, 256, 80, 2, 11, &raw),
            _ => oddball_json(seed, raw[0]),
        };
        let bytes = encode_cell_state(&state);
        // Every proper prefix must fail cleanly: the decoder demands
        // exact consumption and validates every length field it reads.
        let len = cut % bytes.len();
        prop_assert!(
            decode_cell_state(&bytes[..len]).is_err(),
            "prefix of {} / {} bytes decoded",
            len,
            bytes.len()
        );

        // Same for a flow block wrapping the state.
        let block = encode_flow_block(&[(seed, state)]).expect("encode is total");
        let len = cut % block.len();
        prop_assert!(decode_flow_block(&block[..len]).is_err());
    });
}

#[test]
fn corrupted_and_random_bytes_never_panic() {
    forall!(cases = 256, (garbage in gens::bytes(0..300),
                          raw in gens::vecs(gens::u64s(0..u64::MAX), 1..20),
                          seed in gens::u64s(0..u64::MAX),
                          flips in gens::vecs(gens::usizes(0..10_000), 1..8)) => {
        // Pure random bytes: must return, never panic or hang.
        let _ = decode_cell_state(&garbage);
        let _ = decode_flow_block(&garbage);

        // Targeted corruption of a valid encoding: flip a few bytes
        // and decode. Any Ok result must itself round-trip (a decoded
        // state is always canonical enough to re-encode losslessly).
        let state = tier_json(false, &raw);
        let mut bytes = encode_cell_state(&state);
        for &flip in &flips {
            let idx = flip % bytes.len();
            bytes[idx] ^= (1 << (flip % 8)) as u8;
        }
        if let Ok(back) = decode_cell_state(&bytes) {
            let again = decode_cell_state(&encode_cell_state(&back)).ok();
            prop_assert_eq!(again, Some(back));
        }

        let mut block = encode_flow_block(&[(seed % 1024, state)]).expect("encode is total");
        for &flip in &flips {
            let idx = flip % block.len();
            block[idx] ^= (1 << (flip % 8)) as u8;
        }
        if let Ok(back) = decode_flow_block(&block) {
            for (_, cell) in &back {
                let again = decode_cell_state(&encode_cell_state(cell)).ok();
                prop_assert_eq!(again, Some(cell.clone()));
            }
        }
    });
}

#[test]
fn flow_block_rejects_unsorted_and_duplicate_keys() {
    let state = tier_json(true, &[42]);
    // encode_flow_block demands strictly ascending keys.
    assert!(encode_flow_block(&[(5, state.clone()), (5, state.clone())]).is_err());
    assert!(encode_flow_block(&[(9, state.clone()), (3, state.clone())]).is_err());
    assert!(encode_flow_block(&[(3, state.clone()), (9, state)]).is_ok());
}
