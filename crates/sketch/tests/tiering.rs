//! Differential property suites for the tiered [`FlowCell`] path.
//!
//! The tier ladder (inline small set → heap hash array → materialized
//! estimator) is a pure storage optimisation: a tiered `FlowTable`
//! must be observationally identical — estimates bit-for-bit — to an
//! eager table that materializes every flow up front, at every point
//! in every flow's life, including the exact promotion boundaries and
//! under duplicate-heavy streams where the tiers dedup and the
//! estimator does not. Each suite drives both implementations with
//! the same inputs and compares after every step.
//!
//! Reproduce a failure with `SMB_PROP_SEED=<seed printed on failure>`.

use smb_core::{CardinalityEstimator, Smb};
use smb_devtools::prop::gens;
use smb_devtools::{forall, prop_assert, prop_assert_eq};
use smb_hash::{HashScheme, ItemHash};
use smb_sketch::{FlowTable, Tier, ARRAY_CAP, SMALL_CAP};

/// One shared scheme for the table and every estimator — the engine's
/// deployment shape, and the precondition for tiered bit-identity
/// (stored raw hashes replay through the same hash mapping).
fn scheme() -> HashScheme {
    HashScheme::with_seed(0x7153)
}

/// A deliberately tiny SMB (m=256, T=32) so streams of a few hundred
/// items cross morph boundaries after materialization. T > ARRAY_CAP
/// holds, as it must: no morph can fire while a cell is still tiered.
fn make() -> Smb {
    Smb::with_scheme(256, 32, scheme()).expect("valid params")
}

fn tiered() -> FlowTable<Smb> {
    FlowTable::tiered(scheme(), |_| make())
}

/// The tier a cell must occupy after seeing `distinct` distinct hashes.
fn expected_tier(distinct: usize) -> Tier {
    if distinct <= SMALL_CAP {
        Tier::Small
    } else if distinct <= ARRAY_CAP {
        Tier::Array
    } else {
        Tier::Full
    }
}

/// Exact physical equality of two SMB estimators: bitmap, round,
/// fresh counter, and morph-attribution counter.
fn smb_state_eq(a: &Smb, b: &Smb) -> bool {
    a.as_bits() == b.as_bits()
        && a.round() == b.round()
        && a.fresh_ones() == b.fresh_ones()
        && a.items_since_last_morph() == b.items_since_last_morph()
        && a.estimate().to_bits() == b.estimate().to_bits()
}

/// The tier ladder, one item at a time: after every single record the
/// tiered estimate matches an eager estimator bit-for-bit, the cell
/// sits on exactly the tier its distinct count dictates, and once
/// materialized the full physical state (not just the estimate) is
/// identical — promotion replayed the stream exactly.
#[test]
fn tier_ladder_is_bit_identical_to_eager_at_every_step() {
    let sch = scheme();
    let mut table = tiered();
    let mut eager = make();
    let total = 3 * ARRAY_CAP as u64;
    for i in 0..total {
        let h = sch.item_hash(&i.to_le_bytes());
        table.record_hash(7, h);
        eager.record_hash(h);
        let distinct = (i + 1) as usize;
        let cell = table.cell(7).expect("flow exists");
        assert_eq!(cell.tier(), expected_tier(distinct), "after {distinct} items");
        assert_eq!(
            table.estimate(7).map(f64::to_bits),
            Some(eager.estimate().to_bits()),
            "estimate after {distinct} items"
        );
    }
    let materialized = table.cell(7).unwrap().estimator().expect("past ARRAY_CAP");
    assert!(
        smb_state_eq(materialized, &eager),
        "materialized state must be the eager state, bit for bit"
    );
}

/// Random batch chunkings slice the stream arbitrarily across both
/// promotion boundaries (…|1→2|… and …|16→17|…); the batched tiered
/// path must track a sequential eager estimator bit-for-bit after
/// every chunk.
#[test]
fn random_chunkings_cross_promotions_bit_identically() {
    forall!(cases = 48, (chunks in gens::vecs(gens::u64s(1..24), 1..24)) => {
        let sch = scheme();
        let mut table = tiered();
        let mut eager = make();
        let mut next = 0u64;
        for (i, &n) in chunks.iter().enumerate() {
            let hashes: Vec<ItemHash> = (0..n)
                .map(|_| {
                    next += 1;
                    sch.item_hash(&next.to_le_bytes())
                })
                .collect();
            table.record_hashes(9, &hashes);
            // The reference records one item at a time: this also pins
            // batched == sequential through the tier ladder.
            for &h in &hashes {
                eager.record_hash(h);
            }
            prop_assert_eq!(
                table.estimate(9).map(f64::to_bits),
                Some(eager.estimate().to_bits()),
                "after chunk {} ({} items total)", i, next
            );
            prop_assert_eq!(
                table.cell(9).unwrap().tier(),
                expected_tier(next as usize),
                "tier after {} distinct items", next
            );
        }
    });
}

/// Duplicate-heavy streams: the small and array tiers store *distinct*
/// hashes and silently drop repeats, while an eager estimator records
/// every repeat. That dedup must be estimate-invisible — a repeated
/// hash before any morph sets an already-set bit and never advances
/// the fresh-bit trigger — and the tier must be decided by the
/// distinct count, not the op count.
#[test]
fn duplicate_heavy_streams_estimate_identically() {
    forall!(cases = 32, (items in gens::vecs(gens::u64s(0..40), 1..200)) => {
        let sch = scheme();
        let mut table = tiered();
        let mut eager = make();
        for (i, &item) in items.iter().enumerate() {
            let h = sch.item_hash(&item.to_le_bytes());
            table.record_hash(11, h);
            eager.record_hash(h);
            prop_assert_eq!(
                table.estimate(11).map(f64::to_bits),
                Some(eager.estimate().to_bits()),
                "estimate after op {}", i
            );
        }
        let distinct: std::collections::HashSet<u64> = items.iter().copied().collect();
        prop_assert_eq!(
            table.cell(11).unwrap().tier(),
            expected_tier(distinct.len()),
            "{} ops over {} distinct items", items.len(), distinct.len()
        );
    });
}

/// Whole-table differential: a tiered table and an eager table driven
/// by the same random multi-flow op sequence (batch record / estimate
/// sweep / remove / clear) agree on every observable after every op.
#[test]
fn tiered_table_matches_eager_table_under_random_sequences() {
    // Op codes: 0-5 record a batch, 6 compare all estimates,
    // 7 remove, 8 clear. Recording dominates so flows actually climb
    // the ladder.
    forall!(cases = 24, (ops in gens::vecs(
        (gens::u8s(0..9), gens::u64s(0..6), gens::u64s(1..24)),
        1..80,
    )) => {
        let sch = scheme();
        let mut tiered_table = tiered();
        let mut eager_table: FlowTable<Smb> = FlowTable::new(|_| make());
        let mut next = 0u64;
        for (i, &(op, flow, count)) in ops.iter().enumerate() {
            match op {
                0..=5 => {
                    let hashes: Vec<ItemHash> = (0..count)
                        .map(|_| {
                            next += 1;
                            sch.item_hash(&next.to_le_bytes())
                        })
                        .collect();
                    tiered_table.record_hashes(flow, &hashes);
                    eager_table.record_hashes(flow, &hashes);
                }
                6 => {
                    let mut a: Vec<(u64, u64)> = tiered_table
                        .estimates()
                        .map(|(f, e)| (f, e.to_bits()))
                        .collect();
                    let mut b: Vec<(u64, u64)> = eager_table
                        .estimates()
                        .map(|(f, e)| (f, e.to_bits()))
                        .collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    prop_assert_eq!(a, b, "estimate sweep at op {}", i);
                }
                7 => {
                    let a = tiered_table.remove(flow);
                    let b = eager_table.remove(flow);
                    prop_assert_eq!(a.is_some(), b.is_some(), "remove at op {}", i);
                    if let (Some(a), Some(b)) = (a, b) {
                        // Removal materializes by replay; the stream
                        // was duplicate-free, so the physical state
                        // must match, not just the estimate.
                        prop_assert!(
                            smb_state_eq(&a, &b),
                            "removed flow {} diverged at op {}", flow, i
                        );
                    }
                }
                _ => {
                    tiered_table.clear();
                    eager_table.clear();
                }
            }
            prop_assert_eq!(tiered_table.len(), eager_table.len(), "len after op {}", i);
        }
        let finals: Vec<(u64, f64)> = eager_table.estimates().collect();
        for (flow, est) in finals {
            prop_assert_eq!(
                tiered_table.estimate(flow).map(f64::to_bits),
                Some(est.to_bits()),
                "final estimate of flow {}", flow
            );
        }
    });
}

/// Every tier round-trips through its checkpoint state: small and
/// array cells come back *on their tier* with the same pending hashes,
/// materialized cells restore from the estimator's own (pre-tier,
/// wrapper-free) state — and all of them estimate bit-identically.
#[cfg(feature = "snapshot")]
#[test]
fn every_tier_round_trips_through_its_snapshot_state() {
    use smb_devtools::Snapshot;
    use smb_sketch::FlowCell;

    let sch = scheme();
    for n in [0usize, 1, 2, 9, ARRAY_CAP, ARRAY_CAP + 1, 100] {
        let mut cell: FlowCell<Smb> = FlowCell::new();
        for i in 0..n {
            cell.record_hash(sch.item_hash(&(i as u64).to_le_bytes()), make);
        }
        assert_eq!(cell.tier(), expected_tier(n), "{n} items");
        let state = cell.snapshot_state().expect("SMB supports snapshots");
        let restored = match FlowCell::<Smb>::from_tier_json(&state).expect("valid state") {
            Some(tiered_cell) => tiered_cell,
            // No tier wrapper: a materialized cell's state is the bare
            // estimator state (byte-identical to pre-tier checkpoints).
            None => FlowCell::from_estimator(Smb::from_json(&state).expect("estimator state")),
        };
        assert_eq!(restored.tier(), cell.tier(), "{n} items: tier must survive");
        assert_eq!(
            restored.pending_hashes(),
            cell.pending_hashes(),
            "{n} items: pending hashes must survive in arrival order"
        );
        assert_eq!(
            restored.estimate(make).to_bits(),
            cell.estimate(make).to_bits(),
            "{n} items: restored estimate must be bit-identical"
        );
    }
}
