//! Differential property suites for the open-addressed flow table.
//!
//! The open-addressing rewrite (`OpenTable`) must be observationally
//! identical to the `std::collections::HashMap` it replaced, and the
//! `FlowTable` built on it must produce bit-identical per-flow
//! estimator states under arbitrary interleavings of record /
//! estimate / remove / drain / clear. Each property here drives both
//! implementations with the same random operation sequence and
//! compares every observable after every step.
//!
//! Reproduce a failure with `SMB_PROP_SEED=<seed printed on failure>`.

use std::collections::HashMap;

use smb_core::{CardinalityEstimator, Smb};
use smb_devtools::prop::gens;
use smb_devtools::{forall, prop_assert, prop_assert_eq};
use smb_hash::{splitmix::splitmix64_mix, HashScheme};
use smb_sketch::{FlowTable, OpenTable, PROBE_MISS};

/// Keys drawn from a small space (forcing collisions, re-insertion
/// after removal, and cluster shifts) but spread over u64 so the
/// table's mixer sees realistic inputs.
fn key_for(slot: u64) -> u64 {
    splitmix64_mix(slot % 48)
}

#[test]
fn open_table_matches_hashmap_under_random_op_sequences() {
    // Op codes: 0-3 upsert, 4 get, 5 remove, 6 reserve, 7 drain,
    // 8 clear. Upsert dominates so tables actually fill up and grow.
    forall!(cases = 48, (ops in gens::vecs((gens::u8s(0..9), gens::u64s(0..u64::MAX)), 1..400)) => {
        let mut table: OpenTable<u64> = OpenTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, &(op, arg)) in ops.iter().enumerate() {
            let key = key_for(arg);
            match op {
                0..=3 => {
                    let slot = table.get_or_insert_with(key, |_| 0);
                    *slot = slot.wrapping_add(arg);
                    let entry = model.entry(key).or_insert(0);
                    *entry = entry.wrapping_add(arg);
                }
                4 => {
                    prop_assert_eq!(table.get(key), model.get(&key), "get at op {}", i);
                }
                5 => {
                    prop_assert_eq!(table.remove(key), model.remove(&key), "remove at op {}", i);
                }
                6 => {
                    table.reserve((arg % 256) as usize);
                }
                7 => {
                    let mut drained: Vec<(u64, u64)> = table.drain().collect();
                    let mut expected: Vec<(u64, u64)> = model.drain().collect();
                    drained.sort_unstable();
                    expected.sort_unstable();
                    prop_assert_eq!(drained, expected, "drain at op {}", i);
                }
                _ => {
                    table.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(table.len(), model.len(), "len after op {}", i);
            prop_assert_eq!(table.is_empty(), model.is_empty());
        }
        // Final sweep: every surviving entry agrees, both directions.
        for (&key, &val) in &model {
            prop_assert_eq!(table.get(key), Some(&val), "model key {:#x} missing", key);
        }
        let mut entries: Vec<(u64, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
        let mut expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(entries, expected);
    });
}

/// Exact physical equality of two SMB estimators: bitmap, round,
/// fresh counter, and morph-attribution counter.
fn smb_state_eq(a: &Smb, b: &Smb) -> bool {
    a.as_bits() == b.as_bits()
        && a.round() == b.round()
        && a.fresh_ones() == b.fresh_ones()
        && a.items_since_last_morph() == b.items_since_last_morph()
        && a.estimate().to_bits() == b.estimate().to_bits()
}

#[test]
fn flow_table_matches_hashmap_backed_reference_under_random_sequences() {
    // A deliberately tiny SMB (m=256, T=32) so random sequences cross
    // morph boundaries; per-flow seeds make flows distinguishable.
    let factory = |flow: u64| {
        Smb::with_scheme(256, 32, HashScheme::with_seed(flow)).expect("valid params")
    };
    // Op codes: 0-4 record a batch, 5 record one item, 6 estimate,
    // 7 remove, 8 clear, 9 drain.
    forall!(cases = 24, (ops in gens::vecs(
        (gens::u8s(0..10), gens::u64s(0..16), gens::u64s(1..200)),
        1..120,
    )) => {
        let mut table: FlowTable<Smb> = FlowTable::new(factory);
        let mut reference: HashMap<u64, Smb> = HashMap::new();
        let mut next_item = 0u64;
        for (i, &(op, flow, count)) in ops.iter().enumerate() {
            match op {
                0..=4 => {
                    let scheme = HashScheme::with_seed(flow);
                    let hashes: Vec<_> = (0..count)
                        .map(|_| {
                            next_item += 1;
                            scheme.item_hash(&next_item.to_le_bytes())
                        })
                        .collect();
                    table.record_hashes(flow, &hashes);
                    // The reference records the same batch one item at
                    // a time: this also pins batched == sequential at
                    // the flow-table level, morphs included.
                    let est = reference.entry(flow).or_insert_with(|| factory(flow));
                    for &h in &hashes {
                        est.record_hash(h);
                    }
                }
                5 => {
                    next_item += 1;
                    let item = next_item.to_le_bytes();
                    table.record(flow, &item);
                    reference
                        .entry(flow)
                        .or_insert_with(|| factory(flow))
                        .record(&item);
                }
                6 => {
                    prop_assert_eq!(
                        table.estimate(flow).map(f64::to_bits),
                        reference.get(&flow).map(|e| e.estimate().to_bits()),
                        "estimate of flow {} at op {}", flow, i
                    );
                }
                7 => {
                    let removed = table.remove(flow);
                    let expected = reference.remove(&flow);
                    prop_assert_eq!(removed.is_some(), expected.is_some(), "remove at op {}", i);
                    if let (Some(a), Some(b)) = (removed, expected) {
                        prop_assert!(smb_state_eq(&a, &b), "removed estimator diverged at op {}", i);
                    }
                }
                8 => {
                    table.clear();
                    reference.clear();
                }
                _ => {
                    let mut drained: Vec<(u64, Smb)> = table
                        .drain_cells()
                        .into_iter()
                        .map(|(flow, cell)| (flow, cell.into_estimator(|| factory(flow))))
                        .collect();
                    drained.sort_unstable_by_key(|&(flow, _)| flow);
                    let mut expected: Vec<(u64, Smb)> =
                        reference.drain().collect();
                    expected.sort_unstable_by_key(|&(flow, _)| flow);
                    prop_assert_eq!(drained.len(), expected.len(), "drain at op {}", i);
                    for ((fa, a), (fb, b)) in drained.iter().zip(expected.iter()) {
                        prop_assert_eq!(fa, fb);
                        prop_assert!(smb_state_eq(a, b), "drained flow {} diverged", fa);
                    }
                }
            }
            prop_assert_eq!(table.len(), reference.len(), "flow count after op {}", i);
        }
        for (&flow, est) in &reference {
            let got = table.get(flow);
            prop_assert!(got.is_some(), "flow {} missing from table", flow);
            prop_assert!(
                smb_state_eq(got.unwrap(), est),
                "final state of flow {} diverged", flow
            );
        }
    });
}

/// Morph-boundary regression gate: a batch sized to land exactly on,
/// just before, and just past the v == T trigger must leave the
/// estimator bit-identical to sequential recording. (The in-crate
/// smb-core suite covers random chunkings; this pins the adversarial
/// boundary alignments from outside the crate.)
#[test]
fn batched_recording_is_exact_at_morph_boundaries() {
    let scheme = HashScheme::with_seed(99);
    for lead_in in [0usize, 31, 32, 33, 100] {
        let mut batched = FlowTable::new(|_| {
            Smb::with_scheme(256, 32, HashScheme::with_seed(99)).unwrap()
        });
        let mut sequential =
            Smb::with_scheme(256, 32, HashScheme::with_seed(99)).unwrap();
        let hashes: Vec<_> = (0..5000u64)
            .map(|i| scheme.item_hash(&i.to_le_bytes()))
            .collect();
        // One batch up to the lead-in, then the rest in a single call
        // spanning however many morphs remain.
        batched.record_hashes(7, &hashes[..lead_in]);
        batched.record_hashes(7, &hashes[lead_in..]);
        for &h in &hashes {
            sequential.record_hash(h);
        }
        assert!(
            smb_state_eq(batched.get(7).unwrap(), &sequential),
            "lead-in {lead_in} diverged"
        );
    }
}

/// The batched probe must agree with sequential `get` on every query
/// — hit or miss — under arbitrary insert/remove/reserve churn, and
/// each resolved slot must read back the same value. This is the
/// contract the batched ingest pipeline leans on: `probe_batch` is a
/// pure lookup accelerator, never a semantic fork.
#[test]
fn probe_batch_matches_sequential_gets_under_churn() {
    // Op codes: 0-4 upsert, 5 remove, 6 reserve. After every
    // mutation we fire a 48-wide batched probe over a mixed
    // hit/miss query stream and cross-check each lane.
    forall!(cases = 48, (ops in gens::vecs((gens::u8s(0..7), gens::u64s(0..u64::MAX)), 1..250)) => {
        let mut table: OpenTable<u64> = OpenTable::new();
        let mut slots: Vec<u32> = Vec::new();
        for &(op, arg) in ops.iter() {
            let key = key_for(arg);
            match op {
                0..=4 => {
                    *table.get_or_insert_with(key, |_| 0) = arg;
                }
                5 => {
                    table.remove(key);
                }
                _ => {
                    table.reserve((arg % 4096) as usize);
                }
            }
            // Queries straddle the live key space: some present,
            // some never inserted, some just removed.
            let queries: Vec<u64> =
                (0..96).map(|q| key_for(arg.wrapping_add(q))).collect();
            table.probe_batch(queries.iter().copied(), &mut slots);
            prop_assert_eq!(slots.len(), queries.len());
            for (&q, &slot) in queries.iter().zip(&slots) {
                match table.get(q) {
                    Some(v) => {
                        prop_assert!(
                            slot != PROBE_MISS,
                            "probe_batch missed resident key {}", q
                        );
                        prop_assert_eq!(
                            *table.slot_get(slot), *v,
                            "slot for key {} reads back wrong value", q
                        );
                    }
                    None => prop_assert_eq!(
                        slot, PROBE_MISS,
                        "probe_batch resolved absent key {}", q
                    ),
                }
            }
        }
    });
}

/// `record_batch` must be a bit-exact replacement for per-item
/// `record_hash` across every regime the batched kernel dispatches
/// on: run-length-1 interleaves, duplicate-heavy streams, wide flow
/// churn (probe misses on every batch), and single-hot-flow runs.
/// Half the cases pre-reserve past the prefetch footprint threshold
/// so the pipelined probe + payload-lookahead path runs; the rest
/// start empty and exercise the cache-resident short circuit and the
/// miss-heavy per-item fallback. Tiny SMB geometry (m=256, T=32)
/// forces morph boundaries inside batches; tier censuses are
/// compared so inline-tier recording cannot silently re-attribute
/// promotions.
#[test]
fn record_batch_matches_sequential_model_across_regimes() {
    let factory = |flow: u64| {
        Smb::with_scheme(256, 32, HashScheme::with_seed(flow)).expect("valid geometry")
    };
    forall!(cases = 24, (chunks in gens::vecs(
        (gens::u8s(0..4), gens::u64s(0..u64::MAX), gens::usizes(1..400)),
        1..12,
    )) => {
        let scheme = HashScheme::with_seed(7);
        let mut batched_tiered = FlowTable::tiered(scheme.clone(), factory);
        let mut itemwise_tiered = FlowTable::tiered(scheme.clone(), factory);
        let mut batched_full: FlowTable<Smb> = FlowTable::new(factory);
        let mut itemwise_full: FlowTable<Smb> = FlowTable::new(factory);
        if chunks[0].1 % 2 == 0 {
            // Past the prefetch-pays footprint threshold: the batched
            // pipeline proper (staged probe, payload lookahead), not
            // the cache-resident per-item short circuit.
            batched_tiered.reserve(12_000);
            batched_full.reserve(12_000);
        }
        let mut next_item = 0u64;
        let mut flows_seen: Vec<u64> = Vec::new();
        for &(regime, seed, len) in chunks.iter() {
            let batch: Vec<(u64, _)> = (0..len as u64)
                .map(|j| {
                    let flow = match regime {
                        // Run-length-1 interleave over a mid-size set.
                        0 => splitmix64_mix(seed.wrapping_add(j)) % 40,
                        // Duplicate-heavy: few flows, tiny item space.
                        1 => splitmix64_mix(j) % 8,
                        // Wide churn: most probes miss, inserts dominate.
                        2 => splitmix64_mix(seed.wrapping_add(j)) % 5000,
                        // One hot flow: maximal run length.
                        _ => seed % 16,
                    };
                    let item = if regime == 1 {
                        splitmix64_mix(seed.wrapping_add(j % 25))
                    } else {
                        next_item += 1;
                        next_item
                    };
                    (flow, scheme.item_hash(&item.to_le_bytes()))
                })
                .collect();
            flows_seen.extend(batch.iter().map(|&(f, _)| f));
            batched_tiered.record_batch(&batch);
            batched_full.record_batch(&batch);
            for &(flow, hash) in &batch {
                itemwise_tiered.record_hash(flow, hash);
                itemwise_full.record_hash(flow, hash);
            }
        }
        prop_assert_eq!(batched_tiered.len(), itemwise_tiered.len());
        prop_assert_eq!(batched_full.len(), itemwise_full.len());
        prop_assert_eq!(
            batched_tiered.tier_stats(), itemwise_tiered.tier_stats(),
            "tier census diverged between batched and per-item recording"
        );
        flows_seen.sort_unstable();
        flows_seen.dedup();
        for &flow in &flows_seen {
            prop_assert_eq!(
                batched_tiered.estimate(flow).map(f64::to_bits),
                itemwise_tiered.estimate(flow).map(f64::to_bits),
                "tiered estimate of flow {} diverged", flow
            );
            let a = batched_full.get(flow).expect("flow resident in batched table");
            let b = itemwise_full.get(flow).expect("flow resident in itemwise table");
            prop_assert!(
                smb_state_eq(a, b),
                "full estimator state of flow {} diverged", flow
            );
        }
    });
}
